"""Static cost prophet: predicted vs. actual makespan, per workload.

The DY6xx cost model (:mod:`repro.lint.cost`) prices a workflow before
it runs — from contracts, the calibrated device models, and a cluster
spec alone.  This experiment puts that prediction on trial across every
bundled workload:

- **predicted_s** — the static cost report's makespan, zero traces;
- **actual_s** — the simulated makespan of one real run at the same
  scale and node count;
- **DY60x** — pre-run performance findings (only the seeded
  ``perf-hazards`` fixture may carry any; everything else must be
  clean — the CI ``cost-smoke`` gate);
- **DY65x** — prediction-drift findings from joining the traced run
  back against the prediction (the cost mirror of DY45x).

:func:`run_plan_validation` closes the loop on the paper's fig11: the
greedy solver's plan (``dayu-plan``) is *executed* via the pinned
scheduler + path resolver, and its measured makespan must beat the
naive round-robin placement's.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.configs import cluster_spec
from repro.experiments.common import ResultTable, fresh_env
from repro.lint import LintConfig
from repro.lint.cost import build_cost_context
from repro.lint.engine import cost_findings
from repro.workloads.registry import WORKLOADS, build_workload

__all__ = ["run_workload_cost", "run_static_cost", "run_plan_validation"]


def run_workload_cost(name: str, scale: float = 0.5, n_nodes: int = 2
                      ) -> Dict[str, float]:
    """Predict one workload, run it once, and join the two."""
    workflow, prepare = build_workload(name, scale)
    spec = cluster_spec("gpu", n_nodes)
    cctx = build_cost_context(workflow, spec)

    env = fresh_env(n_nodes=n_nodes)
    if prepare is not None:
        prepare(env.cluster)
    result = env.runner.run(workflow)
    profiles = sorted(env.mapper.profiles.values(),
                      key=lambda p: p.span.start)

    config = LintConfig(enable=("DY6*",))
    findings = cost_findings(cctx, config, profiles)
    return {
        "predicted_s": cctx.report.makespan_seconds,
        "actual_s": result.wall_time,
        "critical_path_s": cctx.report.critical_path_seconds,
        "dy60x": sum(1 for f in findings if f.code.startswith("DY60")),
        "dy65x": sum(1 for f in findings if f.code.startswith("DY65")),
    }


def run_static_cost(scale: float = 0.5) -> ResultTable:
    """The predicted-vs-actual makespan table, all bundled workloads."""
    table = ResultTable(
        title="Static cost prophet — predicted vs. actual makespan",
        columns=["workload", "predicted_s", "actual_s", "ratio",
                 "dy60x_findings", "dy65x_findings"],
    )
    names = [n for n in WORKLOADS if n != "corner"]  # corner ⊂ corner-hazards
    for name in names:
        row = run_workload_cost(name, scale)
        table.add(
            workload=name,
            predicted_s=round(row["predicted_s"], 3),
            actual_s=round(row["actual_s"], 3),
            ratio=round(row["predicted_s"] / max(row["actual_s"], 1e-9), 2),
            dy60x_findings=row["dy60x"],
            dy65x_findings=row["dy65x"],
        )
    table.notes.append(
        "predicted_s is computed before anything runs — contracts + "
        "device cost models + cluster spec, zero traces.  Only the "
        "seeded perf-hazards fixture may carry DY60x findings; DY65x "
        "counts prediction-drift findings against the traced run "
        "(AST-extracted contracts with unknown volumes drift, declared "
        "ones should not).")
    return table


def _naive_run(name: str, scale: float, n_nodes: int) -> float:
    workflow, prepare = build_workload(name, scale)
    env = fresh_env(n_nodes=n_nodes)
    if prepare is not None:
        prepare(env.cluster)
    return env.runner.run(workflow).wall_time


def _planned_run(name: str, scale: float, n_nodes: int
                 ) -> Tuple[float, float, object]:
    from repro.optimizer import solve_placement
    from repro.workflow.plan import (
        plan_path_resolver,
        plan_scheduler,
        stage_in_plan,
    )

    workflow, prepare = build_workload(name, scale)
    spec = cluster_spec("gpu", n_nodes)
    plan = solve_placement(workflow, spec, workload=name, scale=scale)
    env = fresh_env(n_nodes=n_nodes, scheduler=plan_scheduler(plan))
    env.runner.path_resolver = plan_path_resolver(plan)
    if prepare is not None:
        prepare(env.cluster)
    staged = stage_in_plan(env.cluster, plan)
    wall = env.runner.run(workflow).wall_time
    return wall, staged, plan


def run_plan_validation(names: Tuple[str, ...] = ("perf-hazards",
                                                  "pyflextrkr"),
                        scale: float = 0.5,
                        n_nodes: int = 2) -> ResultTable:
    """Execute the solver's plan and race it against round-robin."""
    table = ResultTable(
        title="Executed placement plans — naive vs. dayu-plan",
        columns=["workload", "naive_s", "planned_s", "stage_in_s",
                 "speedup", "pins", "localized_files",
                 "predicted_planned_s"],
    )
    for name in names:
        naive = _naive_run(name, scale, n_nodes)
        planned, staged, plan = _planned_run(name, scale, n_nodes)
        table.add(
            workload=name,
            naive_s=round(naive, 3),
            planned_s=round(planned + staged, 3),
            stage_in_s=round(staged, 3),
            speedup=round(naive / max(planned + staged, 1e-9), 2),
            pins=len(plan.tasks),
            localized_files=len(plan.files),
            predicted_planned_s=round(
                plan.predicted["planned_makespan_seconds"], 3),
        )
    table.notes.append(
        "The fig11 experiment, automated: the greedy solver derives the "
        "placement pre-run from the static cost model, dayu-run --plan "
        "executes it (pinned scheduler + strict path localization + "
        "stage-in on the simulated clock), and the measured makespan "
        "must beat the naive round-robin run — the CI cost-smoke gate.")
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_static_cost().to_markdown())
    print()
    print(run_plan_validation().to_markdown())
