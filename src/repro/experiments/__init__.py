"""Experiment harnesses: one module per table/figure of the paper's
evaluation.

Each module exposes a ``run_*`` function returning a structured result
(rows of the same series the paper plots) plus a ``to_markdown`` rendering
used to regenerate ``EXPERIMENTS.md``.  The benchmark suite under
``benchmarks/`` is a thin pytest-benchmark wrapper over these functions.

Index (paper → module):

- Figure 3 / 4 / 5 / 6 / 7 / 8 (FTG/SDG renderings) →
  :mod:`repro.experiments.graphs`
- Figure 9a-d (Data Semantic Mapper overhead) →
  :mod:`repro.experiments.fig9_overhead`
- Figure 10a-b (component breakdown) →
  :mod:`repro.experiments.fig10_breakdown`
- Figure 11 (PyFLEXTRKR stages 3-5 placement) →
  :mod:`repro.experiments.fig11_placement`
- Figure 12 (DDMD placement, 5 iterations) →
  :mod:`repro.experiments.fig12_ddmd`
- Figure 13a (consolidation) → :mod:`repro.experiments.fig13a_consolidation`
- Figure 13b (chunked vs contiguous) → :mod:`repro.experiments.fig13b_layout`
- Figure 13c (ARLDM VL layout) → :mod:`repro.experiments.fig13c_arldm`
- §VII-B Analyzer scalability → :mod:`repro.experiments.analyzer_scale`
- Table III → :mod:`repro.cluster.configs`

Beyond the paper, :mod:`repro.experiments.fault_resilience` characterizes
the fault-injection plane: chaos-workload makespan vs. fault rate, with
and without retries.
"""

__all__ = [
    "fig9_overhead",
    "fig10_breakdown",
    "fig11_placement",
    "fig12_ddmd",
    "fig13a_consolidation",
    "fig13b_layout",
    "fig13c_arldm",
    "analyzer_scale",
    "fault_resilience",
    "graphs",
]
