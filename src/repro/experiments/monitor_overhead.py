"""Live-monitor overhead (real wall clock).

The monitor rides the tracers' event stream, so its cost is the one DaYu
number that is *not* simulated: every published event runs subscriber
code in-process.  Two measurements:

- **Throughput** — raw events/second through a fully-subscribed
  :class:`~repro.monitor.monitor.WorkflowMonitor` (aggregator +
  streaming lint + metrics).
- **Workflow overhead** — a ~1k-SDG-node synthetic workflow with the
  full monitor attached.  The acceptance number is directly attributed
  (seconds inside monitor code vs. the rest of the same run); the
  monitored-vs-unmonitored wall-time difference is reported alongside as
  corroboration.  Bar: <=10% added wall time, with the live snapshot
  still byte-identical to the post-hoc graphs.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.analyzer.graphs import build_ftg, build_sdg
from repro.analyzer.serialize import graph_to_json
from repro.experiments.common import Env, ResultTable, fresh_env
from repro.simclock import SimClock
from repro.vfd.base import IoClass
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = [
    "build_monitor_bench_workflow",
    "run_monitor_throughput",
    "run_monitor_overhead",
    "run_ddmd_dynamics",
]

#: 60 writer tasks x (1 file + 15 datasets + File-Metadata) ~= 1020 SDG
#: nodes — the paper's "1k-node graph" scale, but *runnable* (the
#: synthetic profiles in :mod:`repro.experiments.analyzer_scale` are
#: offline-only and never pass through the tracers).
N_TASKS = 60
DATASETS_PER_TASK = 15
#: 512 KiB per dataset: realistic-volume writes, so baseline per-op work
#: (data generation + copy + simulated transfer) is representative.  At
#: toy sizes the ~10 us/event monitor cost would dominate a baseline
#: that does almost nothing per event.
ELEMS_PER_DATASET = 131_072


def build_monitor_bench_workflow(n_tasks: int = N_TASKS,
                                 datasets_per_task: int = DATASETS_PER_TASK,
                                 ) -> Workflow:
    def writer(proc: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(proc)
            f = rt.open(f"/beegfs/monbench/part_{proc:04d}.h5", "w")
            for d in range(datasets_per_task):
                f.create_dataset(
                    f"d_{d:03d}", shape=(ELEMS_PER_DATASET,), dtype="f4",
                    data=rng.random(ELEMS_PER_DATASET, dtype=np.float32),
                )
            f.close()
        return fn

    return Workflow("monitor_bench", [
        Stage("write", [
            Task(f"monbench_{i:04d}", writer(i)) for i in range(n_tasks)
        ])
    ])


def run_monitor_throughput(n_events: int = 20_000) -> dict:
    """Events/second through a fully-subscribed monitor."""
    from repro.monitor import VfdOp, WorkflowMonitor

    monitor = WorkflowMonitor(SimClock())
    events = [
        VfdOp(time=float(i) * 1e-3, task="bench", file="/beegfs/bench.h5",
              op="write", offset=i * 64, nbytes=64, start=float(i) * 1e-3,
              duration=1e-4, io_class=IoClass.RAW, data_object="/d",
              recorded=True)
        for i in range(n_events)
    ]
    t0 = time.perf_counter()
    for event in events:
        monitor.publish(event)
    monitor.finish()
    wall = time.perf_counter() - t0
    assert monitor.reconciles()
    return {
        "events": n_events,
        "wall_seconds": wall,
        "events_per_second": n_events / wall if wall else float("inf"),
    }


def _timed_run(monitored: bool) -> Tuple[Env, float, float]:
    """One run; returns (env, wall seconds, seconds inside monitor code).

    Monitor time is attributed directly by timing every
    :meth:`~repro.monitor.monitor.WorkflowMonitor.publish` call (the
    tracers/runner enter all monitor work through it) plus the final
    ``finish()`` drain.  The two extra ``perf_counter`` calls per event
    cost ~0.1 us against a ~10 us publish; event construction at the
    emit sites (~1 us) stays on the application side of the boundary.
    """
    env = fresh_env(monitor=monitored)
    workflow = build_monitor_bench_workflow()
    in_monitor = 0.0
    if monitored:
        real_publish = env.monitor.publish

        def timed_publish(event):
            nonlocal in_monitor
            t = time.perf_counter()
            real_publish(event)
            in_monitor += time.perf_counter() - t

        env.monitor.publish = timed_publish  # type: ignore[method-assign]
    t0 = time.perf_counter()
    env.runner.run(workflow)
    if env.monitor is not None:
        t = time.perf_counter()
        env.monitor.finish()
        in_monitor += time.perf_counter() - t
    return env, time.perf_counter() - t0, in_monitor


def run_monitor_overhead(rounds: int = 2) -> dict:
    """Monitor cost on the ~1k-node workflow.

    The acceptance number (``overhead_percent``) is *directly
    attributed*: seconds inside monitor code vs. the rest of the same
    monitored run.  Differencing monitored against unmonitored wall time
    is also reported (best-of-``rounds``, interleaved) but only as
    corroboration — on a busy CI box, identical runs vary by more than
    the effect being measured, so a gate on the difference would flake.
    """
    _timed_run(True)  # warm one-time imports out of the timed region
    base_wall = float("inf")
    mon_wall = float("inf")
    overhead = float("inf")
    env = None
    for _ in range(rounds):
        base_wall = min(base_wall, _timed_run(False)[1])
        mon_env, wall, in_monitor = _timed_run(True)
        mon_wall = min(mon_wall, wall)
        attributed = in_monitor / (wall - in_monitor)
        if attributed < overhead:
            env, overhead = mon_env, attributed

    profiles = list(env.mapper.profiles.values())
    ftg_live = graph_to_json(env.monitor.snapshot_ftg())
    sdg_live = graph_to_json(env.monitor.snapshot_sdg())
    sdg = env.monitor.snapshot_sdg()
    identical = (ftg_live == graph_to_json(build_ftg(profiles))
                 and sdg_live == graph_to_json(build_sdg(profiles)))
    return {
        "tasks": len(profiles),
        "sdg_nodes": sdg.number_of_nodes(),
        "sdg_edges": sdg.number_of_edges(),
        "events_published": env.monitor.bus.total_published,
        "baseline_seconds": base_wall,
        "monitored_seconds": mon_wall,
        "overhead_percent": 100.0 * overhead,
        "identical_graphs": identical,
        "reconciles": env.monitor.reconciles(),
        "monitor_account_seconds": env.clock.account(
            "dayu.monitor.subscriber"),
    }


MIB = 1 << 20


def run_ddmd_dynamics(scale: float = 0.2, window_seconds: float = 0.5,
                      top: int = 8) -> ResultTable:
    """Windowed I/O dynamics of a monitored DDMD run.

    What the post-hoc profiles cannot show: *when* each dataset's bytes
    moved.  The live monitor's sliding windows resolve the per-(task,
    dataset) byte flow over simulated time; the busiest keys make the
    workflow's phase structure (simulate -> aggregate -> train -> infer)
    directly readable off the intervals.
    """
    from repro.monitor import MonitorConfig
    from repro.workloads.registry import build_workload

    env = fresh_env(monitor_config=MonitorConfig(
        window_seconds=window_seconds))
    workflow, prepare = build_workload("ddmd", scale)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    env.monitor.finish()
    dyn = env.monitor.dynamics

    ranked = []
    for key in dyn.keys():
        series = dyn.series_for(*key)
        if not series:
            continue
        totals = dyn.totals_for(*key)
        peak = max(s.bytes for _, s in series)
        ranked.append((totals.bytes, key, series, peak))
    ranked.sort(key=lambda r: (-r[0], r[1]))

    table = ResultTable(
        title="DDMD windowed I/O dynamics (live monitor, busiest datasets)",
        columns=["task", "file", "dataset", "windows", "first_s", "last_s",
                 "total_mib", "peak_window_mib"],
        notes=[f"{window_seconds:.1f} s windows over simulated time; "
               f"scale {scale}; top {top} of {len(ranked)} "
               "(task, file, dataset) keys by total bytes.  Produced by "
               "the repro.monitor live aggregator, not post-hoc analysis."],
    )
    for total, (task, file, obj), series, peak in ranked[:top]:
        table.add(
            task=task, file=file.rsplit("/", 1)[-1], dataset=obj,
            windows=len(series),
            first_s=series[0][0] * window_seconds,
            last_s=(series[-1][0] + 1) * window_seconds,
            total_mib=total / MIB, peak_window_mib=peak / MIB,
        )
    return table
