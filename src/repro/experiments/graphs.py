"""Graph-figure regeneration: the paper's Figures 3, 4, 5, 6, 7, 8.

Runs each case-study workflow under DaYu and emits the corresponding FTG /
SDG as interactive HTML plus Graphviz DOT.  Artifacts land in a real
directory on the host filesystem (default ``./artifacts``); the returned
mapping lists what was written where, together with assertions-worth
summary facts (e.g. "training's contact_map edge is metadata-only").
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro.analyzer import (
    build_ftg,
    build_sdg,
    condense_regions,
    dataset_node,
    to_dot,
    to_html,
)
from repro.experiments.common import fresh_env
from repro.workloads.arldm import ArldmParams, build_arldm
from repro.workloads.ddmd import DdmdParams, build_ddmd
from repro.workloads.pyflextrkr import (
    PyflextrkrParams,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)

__all__ = ["generate_all_graphs"]


def _write(out_dir: Path, name: str, graph, title: str) -> Dict[str, str]:
    out_dir.mkdir(parents=True, exist_ok=True)
    html_path = out_dir / f"{name}.html"
    dot_path = out_dir / f"{name}.dot"
    html_path.write_text(to_html(graph, title=title))
    dot_path.write_text(to_dot(graph, title=title))
    return {"html": str(html_path), "dot": str(dot_path)}


def generate_all_graphs(out_dir: str = "artifacts") -> Dict[str, Dict[str, str]]:
    """Regenerate every graph figure; returns {figure: {html, dot}}."""
    out = Path(out_dir)
    artifacts: Dict[str, Dict[str, str]] = {}

    # ---------------- PyFLEXTRKR: Figures 4 and 5 ---------------------
    env = fresh_env(n_nodes=2)
    flex = PyflextrkrParams(data_dir="/beegfs/flex", n_files=6, grid=2048,
                            n_parallel=3, small_datasets=32, speed_reads=5)
    prepare_pyflextrkr_inputs(env.cluster, flex)
    env.runner.run(build_pyflextrkr(flex))
    profiles = list(env.mapper.profiles.values())
    artifacts["fig4_pyflextrkr_ftg"] = _write(
        out, "fig4_pyflextrkr_ftg", build_ftg(profiles),
        "Figure 4 — PyFLEXTRKR Workflow FTG")
    stage9 = [p for p in profiles if p.task.startswith("run_speed")]
    artifacts["fig5_stage9_sdg"] = _write(
        out, "fig5_stage9_sdg", build_sdg(stage9),
        "Figure 5 — PyFLEXTRKR Stage-9 SDG")

    # ---------------- DDMD: Figures 6 and 7 ---------------------------
    env = fresh_env(n_nodes=2)
    ddmd = DdmdParams(data_dir="/beegfs/ddmd", n_sim_tasks=12, frames=128,
                      epochs=10, chunk_elems=128)
    env.runner.run(build_ddmd(ddmd))
    profiles = list(env.mapper.profiles.values())
    artifacts["fig6_ddmd_ftg"] = _write(
        out, "fig6_ddmd_ftg", build_ftg(profiles),
        "Figure 6 — DeepDriveMD Workflow FTG")
    agg_train = [p for p in profiles
                 if p.task.startswith(("aggregate", "training"))]
    sdg = build_sdg(agg_train)
    artifacts["fig7_ddmd_sdg"] = _write(
        out, "fig7_ddmd_sdg", sdg,
        "Figure 7 — DDMD aggregate/training SDG")
    # The Figure 7 pop-up fact: training touches the aggregated
    # contact_map's metadata only.
    cm = dataset_node(ddmd.aggregated(0), "/contact_map")
    edge = sdg.get_edge_data(cm, "task:training_0000")
    if edge is not None and edge.get("data_ops", 0) == 0:
        artifacts["fig7_ddmd_sdg"]["metadata_only_contact_map"] = "confirmed"

    # ---------------- ARLDM: Figures 3 and 8 --------------------------
    for label, layout in (("a_contiguous", "contiguous"), ("b_chunked", "chunked")):
        env = fresh_env(n_nodes=1)
        arldm = ArldmParams(data_dir="/beegfs/arldm", items=20,
                            avg_image_bytes=8192, layout=layout, chunks=5)
        env.runner.run(build_arldm(arldm))
        save = [env.mapper.profiles["arldm_saveh5"]]
        sdg = build_sdg(save, with_regions=True, region_bytes=65536)
        artifacts[f"fig8{label}_arldm_sdg"] = _write(
            out, f"fig8{label}_arldm_sdg", sdg,
            f"Figure 8{label[0]} — ARLDM arldm_saveh5 SDG ({layout})")
    # Figure 3's "example SDG" is the contiguous ARLDM one condensed.
    artifacts["fig3_example_sdg"] = _write(
        out, "fig3_example_sdg", condense_regions(sdg),
        "Figure 3 — Example SDG (condensed regions)")
    return artifacts
