"""Fault resilience: makespan vs. fault rate, with and without retries.

Beyond the paper's figures, this experiment characterizes the simulator's
fault plane (:mod:`repro.faults`): the chaos map/reduce workload
(:mod:`repro.workloads.chaos`) runs under transient write faults on its
partition directory at increasing rates, in three variants per rate:

- **fault-free** — the reference makespan;
- **no retries** — failed partition tasks are dropped (the stage is
  best-effort) and the merge pays the recompute premium for each lost
  partition;
- **retries** — a :class:`~repro.workflow.runner.RetryPolicy` re-attempts
  failed tasks with exponential backoff.

The headline relation, asserted by the test suite for a representative
rate, is ``makespan(no-retry) > makespan(retry)`` — retries trade a small
backoff wait for avoiding the merge's expensive recompute path — with
``makespan(retry)`` close to fault-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ResultTable, fresh_env
from repro.faults import FaultInjector
from repro.workflow.runner import RetryPolicy, WorkflowResult
from repro.workloads.chaos import ChaosParams, build_chaos, chaos_fault_spec

__all__ = ["ResilienceRun", "run_chaos_once", "run_fault_resilience"]


@dataclass
class ResilienceRun:
    """One chaos run and the fault-plane telemetry around it."""

    result: WorkflowResult
    injected: dict
    lost_tasks: int

    @property
    def makespan(self) -> float:
        return self.result.wall_time


def run_chaos_once(
    rate: float,
    retries: int = 0,
    seed: int = 7,
    n_nodes: int = 2,
    params: Optional[ChaosParams] = None,
) -> ResilienceRun:
    """One chaos run at a fault rate; ``retries`` extra attempts per task."""
    p = params or ChaosParams()
    env = fresh_env(n_nodes=n_nodes)
    injector = None
    if rate > 0:
        spec = chaos_fault_spec(p, rate=rate, seed=seed)
        injector = FaultInjector(spec, env.cluster).arm()
        env.runner.faults = injector
    if retries > 0:
        env.runner.retry_policy = RetryPolicy(max_attempts=retries + 1)
    result = env.runner.run(build_chaos(p))
    if injector is not None:
        injector.disarm()
    return ResilienceRun(
        result=result,
        injected=injector.stats() if injector else {},
        lost_tasks=len(result.failures),
    )


def run_fault_resilience(
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    retries: int = 2,
    seed: int = 7,
) -> ResultTable:
    """Sweep fault rates; compare no-retry vs. retry makespans."""
    table = ResultTable(
        title="Fault resilience — chaos workload makespan vs. fault rate",
        columns=["rate", "variant", "makespan_s", "lost_tasks",
                 "task_retries", "injected_errors"],
    )
    baseline = None
    for rate in rates:
        variants = [("no retries", 0)]
        if rate > 0:
            variants.append((f"retries x{retries}", retries))
        for label, n_retries in variants:
            run = run_chaos_once(rate, retries=n_retries, seed=seed)
            if rate == 0:
                baseline = run
                label = "fault-free"
            table.add(
                rate=rate,
                variant=label,
                makespan_s=run.makespan,
                lost_tasks=run.lost_tasks,
                task_retries=run.result.retries,
                injected_errors=sum(run.injected.values()),
            )
    if baseline is not None:
        table.notes.append(
            f"fault-free reference makespan: {baseline.makespan:.3f} s; "
            "retries should track it closely while no-retry pays the "
            "merge's recompute premium per lost partition")
    return table
