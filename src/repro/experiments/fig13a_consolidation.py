"""Figure 13a: scattered small datasets vs. consolidation (PyFLEXTRKR).

The paper simulates stage 9's access pattern: a file holding 32 small
datasets, each accessed 23 times, under 1-16 concurrent processes, against
node-local NVMe.  Consolidating the datasets into one large dataset (with
an offset index) removes the per-dataset metadata walk from every access.

Each access round opens the file fresh — matching the workflow's behaviour
where every stage-9 task re-opens its input and pays the metadata reads
again (no warm cache across rounds).

Measured metric: the sum of POSIX operation costs (exactly the paper's
"measured I/O times (sum of POSIX operations)").  Paper headline: 1.7x to
3.7x reduction, biggest for small datasets and low process counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.common import Env, ResultTable, fresh_env
from repro.hdf5 import H5File
from repro.middleware.consolidate import consolidate_datasets, read_consolidated
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime
from repro.workflow.scheduler import PinnedScheduler

__all__ = ["Fig13aParams", "run_fig13a"]


@dataclass(frozen=True)
class Fig13aParams:
    """Experiment scale (paper: 32 datasets x 23 accesses on NVMe)."""

    n_datasets: int = 32
    accesses: int = 23
    dataset_bytes: tuple = (1024, 2048, 4096, 8192)
    process_counts: tuple = (1, 2, 4, 8, 16)


def _prepare(env: Env, nbytes: int) -> tuple:
    """Create the scattered and consolidated variants on node-local SSD."""
    node = env.cluster.node_names()[0]
    local = env.cluster.local_prefix(node, "ssd")
    scattered = f"{local}/scattered_{nbytes}.h5"
    consolidated = f"{local}/consolidated_{nbytes}.h5"
    rng = np.random.default_rng(nbytes)
    with H5File(env.cluster.fs, scattered, "w") as f:
        for d in range(32):
            f.create_dataset(
                f"speed_{d:03d}", shape=(nbytes,), dtype="i1",
                data=rng.integers(-100, 100, nbytes).astype(np.int8),
            )
    consolidate_datasets(env.cluster.fs, scattered, consolidated)
    return node, scattered, consolidated


def _measure(env: Env, node: str, path: str, consolidated: bool,
             n_procs: int, p: Fig13aParams) -> float:
    """Sum of POSIX op costs for ``n_procs`` readers doing the access storm."""

    def reader(worker: int):
        def fn(rt: TaskRuntime) -> None:
            for _ in range(p.accesses):
                # Fresh open per round: metadata is re-read every time.
                f = rt.open(path, "r")
                if consolidated:
                    big = f["consolidated"]
                    for d in range(p.n_datasets):
                        read_consolidated(big, f"speed_{d:03d}")
                else:
                    for d in range(p.n_datasets):
                        f[f"speed_{d:03d}"].read()
                f.close()
        return fn

    label = "cons" if consolidated else "scat"
    wf = Workflow(f"fig13a_{label}_{n_procs}", [
        Stage("access", [
            Task(f"{label}_p{n_procs}_w{k}", reader(k)) for k in range(n_procs)
        ])
    ])
    env.runner.scheduler = PinnedScheduler(
        {t.name: node for t in wf.all_tasks()}
    )
    fs = env.cluster.fs
    before = fs.io_time()
    env.runner.run(wf)
    return fs.io_time() - before


def run_fig13a(params: Fig13aParams = Fig13aParams()) -> ResultTable:
    """Sweep dataset size x process count for both variants."""
    table = ResultTable(
        title="Figure 13a — PyFLEXTRKR stage-9: scattered vs. consolidated",
        columns=["dataset_bytes", "processes", "baseline_ms",
                 "consolidated_ms", "reduction"],
        notes=["I/O time = sum of POSIX operation costs; node-local SSD; "
               "32 datasets, each accessed 23 times per process."],
    )
    reductions = []
    for nbytes in params.dataset_bytes:
        for procs in params.process_counts:
            env = fresh_env(n_nodes=1)
            node, scattered, consolidated = _prepare(env, nbytes)
            base = _measure(env, node, scattered, False, procs, params)
            # Fresh environment so device/sequence state cannot leak.
            env2 = fresh_env(n_nodes=1)
            node2, _, consolidated2 = _prepare(env2, nbytes)
            cons = _measure(env2, node2, consolidated2, True, procs, params)
            reduction = base / cons if cons > 0 else float("inf")
            reductions.append(reduction)
            table.add(
                dataset_bytes=nbytes, processes=procs,
                baseline_ms=base * 1e3, consolidated_ms=cons * 1e3,
                reduction=reduction,
            )
    table.notes.append(
        f"Reduction range {min(reductions):.2f}x - {max(reductions):.2f}x "
        "(paper: 1.7x - 3.7x)."
    )
    return table
