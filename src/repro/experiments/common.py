"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.configs import gpu_cluster
from repro.mapper.config import DaYuConfig
from repro.mapper.mapper import DataSemanticMapper
from repro.simclock import SimClock
from repro.workflow.runner import WorkflowRunner
from repro.workflow.scheduler import Scheduler

__all__ = ["Env", "fresh_env", "ResultTable"]


@dataclass
class Env:
    """One isolated simulation environment."""

    clock: SimClock
    cluster: Cluster
    mapper: DataSemanticMapper
    runner: WorkflowRunner
    #: The attached :class:`repro.monitor.monitor.WorkflowMonitor`, if any.
    monitor: Optional[object] = None


def fresh_env(
    n_nodes: int = 2,
    scheduler: Optional[Scheduler] = None,
    config: Optional[DaYuConfig] = None,
    monitor_config: Optional[object] = None,
    monitor: bool = False,
    on_alert=None,
) -> Env:
    """A fresh GPU-cluster environment (BeeGFS shared + node-local SSD).

    Pass ``monitor=True`` (or a ``monitor_config``) to attach a live
    :class:`~repro.monitor.monitor.WorkflowMonitor` to the mapper.
    """
    clock = SimClock()
    cluster = gpu_cluster(clock, n_nodes=n_nodes)
    mon = None
    if monitor or monitor_config is not None:
        from repro.monitor.monitor import WorkflowMonitor

        mon = WorkflowMonitor(clock, config=monitor_config, on_alert=on_alert)
    mapper = DataSemanticMapper(clock, config or DaYuConfig(), monitor=mon)
    runner = WorkflowRunner(cluster, mapper, scheduler)
    return Env(clock=clock, cluster=cluster, mapper=mapper, runner=runner,
               monitor=mon)


@dataclass
class ResultTable:
    """A labelled table of experiment rows, renderable as Markdown."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **values: object) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns: {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [r[name] for r in self.rows]

    def to_markdown(self) -> str:
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(row[c]) for c in self.columns) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)
