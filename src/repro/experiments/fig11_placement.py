"""Figure 11: PyFLEXTRKR stages 3-5 — baseline vs. DaYu-guided placement.

DaYu's analysis of the full pipeline (its Figure 4) shows that stage 3
(run_gettracks) is parallelizable with an all-to-all access pattern over
the stage-1/2 outputs, stage 4 (run_trackstats) is a serial fan-in over the
same inputs plus stage 3's single output, and stage 5 (run_identifymcs)
consumes stage 4's output one-to-one.  That knowledge enables co-scheduling
stages 3-5 on one node with the inputs staged onto node-local SSD.

Two configurations, scaled ~10x down in data and 8x in process count:

- **C1** — paper: 170 MB input, 48 processes, 2 nodes →
  here: 17 MB, 6 stage-3 tasks, 2 nodes.
- **C2** — paper: 1.2 GB input, 240 processes, 8 nodes →
  here: 120 MB, 12 stage-3 tasks, 8 nodes.

Reported bars match the paper's: Stage-In, Stage 3, Stage 4, Stage 5,
Stage-Out, for baseline (BeeGFS) and optimized (node-local SSD).
Paper headline: 1.6x overall, 2.6x on stage 3 in C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.common import Env, ResultTable, fresh_env
from repro.hdf5 import H5File
from repro.middleware.stager import stage_in, stage_out
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime, WorkflowResult
from repro.workflow.scheduler import CoLocateScheduler

__all__ = ["Fig11Config", "C1", "C2", "run_fig11", "PlacementRun"]

MIB = 1 << 20


@dataclass(frozen=True)
class Fig11Config:
    """One Figure 11 experiment configuration."""

    label: str
    total_input_bytes: int
    n_files: int
    n_parallel: int
    n_nodes: int
    #: Modeled compute per task (the tracking algorithms are not free);
    #: calibrated so the I/O share of stage time is comparable to the
    #: paper's runs.
    stage3_compute: float = 0.05
    stage4_compute: float = 0.03
    stage5_compute: float = 0.01

    @property
    def elems_per_file(self) -> int:
        return max(self.total_input_bytes // (4 * self.n_files), 1)


#: Scaled versions of the paper's C1 / C2.
C1 = Fig11Config("C1", total_input_bytes=17 * MIB, n_files=12,
                 n_parallel=6, n_nodes=2)
C2 = Fig11Config("C2", total_input_bytes=120 * MIB, n_files=24,
                 n_parallel=12, n_nodes=8,
                 stage3_compute=0.4, stage4_compute=0.2, stage5_compute=0.05)

_PHASES = ("Stage-In", "Stage 3", "Stage 4", "Stage 5", "Stage-Out")


def _prepare_inputs(env: Env, cfg: Fig11Config, src_dir: str) -> List[str]:
    """Create the stage-1/2 outputs (track files) on the shared FS."""
    rng = np.random.default_rng(3)
    paths = []
    for i in range(cfg.n_files):
        path = f"{src_dir}/track_{i:03d}.h5"
        with H5File(env.cluster.fs, path, "w") as f:
            f.create_dataset(
                "links", shape=(cfg.elems_per_file,), dtype="f4",
                data=rng.random(cfg.elems_per_file, dtype=np.float32),
            )
        paths.append(path)
    return paths


def _stages_3_to_5(cfg: Fig11Config, data_dir: str, out_dir: str) -> List[Stage]:
    """Stages 3-5 reading inputs from ``data_dir``, writing to ``out_dir``."""

    def gettracks(worker: int):
        def fn(rt: TaskRuntime) -> None:
            # All-to-all: every stage-3 task reads every input file.
            total = None
            for i in range(cfg.n_files):
                f = rt.open(f"{data_dir}/track_{i:03d}.h5", "r")
                links = f["links"].read()
                f.close()
                total = links if total is None else total + links
            if worker == 0:
                out = rt.open(f"{out_dir}/tracks_all.h5", "w")
                out.create_dataset("tracks", shape=(cfg.elems_per_file,),
                                   dtype="f4", data=total)
                out.close()
        return fn

    def trackstats(rt: TaskRuntime) -> None:
        # Fan-in: same inputs as stage 3, plus stage 3's output.
        for i in range(cfg.n_files):
            f = rt.open(f"{data_dir}/track_{i:03d}.h5", "r")
            f["links"].read()
            f.close()
        f = rt.open(f"{out_dir}/tracks_all.h5", "r")
        tracks = f["tracks"].read()
        f.close()
        out = rt.open(f"{out_dir}/trackstats.h5", "w")
        out.create_dataset("stats", shape=(tracks.size,), dtype="f4",
                           data=np.sort(tracks))
        out.close()

    def identifymcs(rt: TaskRuntime) -> None:
        f = rt.open(f"{out_dir}/trackstats.h5", "r")
        stats = f["stats"].read()
        f.close()
        out = rt.open(f"{out_dir}/mcs.h5", "w")
        out.create_dataset("mcs", shape=(stats.size,), dtype="i4",
                           data=(stats > 0.5).astype(np.int32))
        out.close()

    return [
        Stage("stage3", [Task(f"run_gettracks_{k}", gettracks(k),
                              compute_seconds=cfg.stage3_compute)
                         for k in range(cfg.n_parallel)]),
        Stage("stage4", [Task("run_trackstats", trackstats,
                              compute_seconds=cfg.stage4_compute)],
              parallel=False),
        Stage("stage5", [Task("run_identifymcs", identifymcs,
                              compute_seconds=cfg.stage5_compute)],
              parallel=False),
    ]


@dataclass
class PlacementRun:
    """Per-phase wall times of one variant."""

    label: str
    phase_seconds: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.phase_seconds.values())


def _run_baseline(cfg: Fig11Config) -> PlacementRun:
    env = fresh_env(n_nodes=cfg.n_nodes)
    src = f"/beegfs/flex/{cfg.label}"
    _prepare_inputs(env, cfg, src)
    wf = Workflow("fig11_baseline", _stages_3_to_5(cfg, src, src))
    result = env.runner.run(wf)
    phases = {"Stage-In": 0.0, "Stage-Out": 0.0}
    phases["Stage 3"] = result.stage("stage3").wall_time
    phases["Stage 4"] = result.stage("stage4").wall_time
    phases["Stage 5"] = result.stage("stage5").wall_time
    return PlacementRun("baseline (BeeGFS)", phases)


def _run_optimized(cfg: Fig11Config) -> PlacementRun:
    env = fresh_env(n_nodes=cfg.n_nodes)
    src = f"/beegfs/flex/{cfg.label}"
    paths = _prepare_inputs(env, cfg, src)
    node = env.cluster.node_names()[0]
    local = env.cluster.local_prefix(node, "ssd")
    fs = env.cluster.fs

    # Stage-in: copy all inputs to the co-scheduled node's SSD.
    t0 = env.clock.now
    for path in paths:
        stage_in(fs, path, f"{local}/{path.rsplit('/', 1)[-1]}")
    stage_in_time = env.clock.now - t0

    wf = Workflow("fig11_optimized", _stages_3_to_5(cfg, local, local))
    env.runner.scheduler = CoLocateScheduler(
        ["stage3", "stage4", "stage5"], node=node
    )
    result = env.runner.run(wf)

    # Stage-out: final output back to the shared filesystem.
    t0 = env.clock.now
    stage_out(fs, f"{local}/mcs.h5", f"{src}/mcs.h5", remove_src=False)
    stage_out_time = env.clock.now - t0

    phases = {
        "Stage-In": stage_in_time,
        "Stage 3": result.stage("stage3").wall_time,
        "Stage 4": result.stage("stage4").wall_time,
        "Stage 5": result.stage("stage5").wall_time,
        "Stage-Out": stage_out_time,
    }
    return PlacementRun("DaYu (SSD, co-scheduled)", phases)


def run_fig11(configs: List[Fig11Config] = (C1, C2)) -> ResultTable:
    """Run both variants for each configuration; report phase times and
    speedups (paper: 1.6x overall; 2.6x stage 3 in C1)."""
    table = ResultTable(
        title="Figure 11 — PyFLEXTRKR stages 3-5, baseline vs. DaYu placement",
        columns=["config", "variant"] + list(_PHASES) + ["total_s"],
    )
    for cfg in configs:
        baseline = _run_baseline(cfg)
        optimized = _run_optimized(cfg)
        for run in (baseline, optimized):
            table.add(
                config=cfg.label,
                variant=run.label,
                **{ph: run.phase_seconds[ph] for ph in _PHASES},
                total_s=run.total,
            )
        overall = baseline.total / optimized.total
        stage3 = (baseline.phase_seconds["Stage 3"]
                  / optimized.phase_seconds["Stage 3"])
        table.notes.append(
            f"{cfg.label}: overall speedup {overall:.2f}x "
            f"(paper ~1.6x); stage-3 speedup {stage3:.2f}x"
            + (" (paper ~2.6x)" if cfg.label == "C1" else "")
        )
    return table
