"""Figure 10: breakdown of DaYu's own execution time by component.

Two scenarios:

- **10a** — h5bench at the sweep's largest configuration: DaYu costs a few
  tens of milliseconds (a vanishing fraction of the run), dominated by the
  Characteristic Mapper.
- **10b** — the corner-case benchmark: total overhead of a few percent,
  dominated by the Access Tracker (VFD share > VOL share), exactly the
  regime the paper attributes to frequent object open/close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import ResultTable, fresh_env
from repro.mapper.config import DaYuConfig
from repro.mapper.overhead import OverheadReport, overhead_report
from repro.workloads.corner_case import CornerCaseParams, build_corner_case
from repro.workloads.h5bench import H5benchParams, build_h5bench_write

__all__ = ["run_fig10a_h5bench", "run_fig10b_corner_case", "BreakdownResult"]

MIB = 1 << 20


@dataclass
class BreakdownResult:
    """Component shares plus headline numbers for one scenario."""

    scenario: str
    report: OverheadReport

    @property
    def shares(self) -> Dict[str, float]:
        return self.report.component_shares()

    @property
    def dayu_ms(self) -> float:
        return self.report.dayu_time * 1e3

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=f"Figure 10 — DaYu time breakdown ({self.scenario})",
            columns=["component", "share_percent"],
            notes=[
                f"DaYu total: {self.dayu_ms:.2f} ms "
                f"({self.report.total_percent:.3f}% of execution); "
                f"VFD {self.report.vfd_percent:.3f}% / "
                f"VOL {self.report.vol_percent:.3f}%."
            ],
        )
        for component, share in self.shares.items():
            table.add(component=component, share_percent=100.0 * share)
        return table


def run_fig10a_h5bench(
    total_mib: int = 80, n_procs: int = 8
) -> BreakdownResult:
    """H5bench breakdown (paper: 80 GB, 64 processes → 38.83 ms, 0.008%,
    Characteristic-Mapper-dominated)."""
    env = fresh_env(n_nodes=2, config=DaYuConfig.parse({}, clock=None))
    # Charge the Input Parser explicitly (one config parse per run).
    DaYuConfig.parse({}, env.clock)
    params = H5benchParams(
        data_dir="/beegfs/h5bench",
        n_procs=n_procs,
        bytes_per_proc=max(total_mib * MIB // n_procs, 1 << 12),
        ops_per_proc=8,
    )
    env.runner.run(build_h5bench_write(params))
    return BreakdownResult("h5bench", overhead_report(env.clock))


def run_fig10b_corner_case(
    file_mib: int = 50, read_repeats: int = 40
) -> BreakdownResult:
    """Corner-case breakdown (paper: 813.74 ms, ~4% total = 2.97% VFD +
    1.0% VOL, Access-Tracker-dominated)."""
    env = fresh_env(n_nodes=1)
    DaYuConfig.parse({}, env.clock)
    params = CornerCaseParams(
        data_dir="/beegfs/corner",
        n_datasets=200,
        file_bytes=file_mib * MIB,
        read_repeats=read_repeats,
    )
    env.runner.run(build_corner_case(params))
    return BreakdownResult("corner-case", overhead_report(env.clock))
