"""Figure 13c: ARLDM variable-length data — contiguous vs. chunked layout.

The paper measures ``arldm_saveh5``'s execution time (the write of the
whole output file) with the default contiguous layout and with chunked
layouts of 5 and 10 chunks, at dataset scales of 5/10/20 GB (here scaled
to 5/10/20 MB, element sizes growing with total size exactly as
flintstones' fixed story count does).

Mechanism reproduced: contiguous VL storage writes every element into the
global heap individually — and once elements outgrow a heap collection,
each costs a dedicated collection (data write + directory metadata write).
Chunked VL batches a chunk's elements into one collection: one data write
plus one directory per chunk, cutting POSIX writes by ~2x.  Paper
headlines: up to 1.4x faster writes, ~2x fewer I/O operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ResultTable, fresh_env
from repro.workflow.scheduler import PinnedScheduler
from repro.workloads.arldm import ArldmParams, build_arldm

__all__ = ["Fig13cParams", "run_fig13c"]

MIB = 1 << 20


@dataclass(frozen=True)
class Fig13cParams:
    """Experiment scale.

    Attributes:
        total_mib: Output-file scales (paper: 5/10/20 GB → 5/10/20 MiB).
        items: Variable-length elements per dataset (fixed — the dataset's
            story count doesn't change with image resolution).
        chunk_counts: Chunked variants (paper: 5 and 10 chunks).
        heap_capacity: Global-heap collection size; elements beyond it get
            dedicated collections.
    """

    total_mib: tuple = (5, 10, 20)
    items: int = 20
    chunk_counts: tuple = (5, 10)
    heap_capacity: int = 131072


def _variant(p: Fig13cParams, total_mib: int, layout: str, chunks: int) -> float:
    """Wall time of the arldm_saveh5 stage for one variant."""
    avg_bytes = total_mib * MIB // (p.items * 6)  # 5 image datasets + text
    params = ArldmParams(
        data_dir="/beegfs/arldm13c",
        items=p.items,
        avg_image_bytes=avg_bytes,
        avg_text_bytes=max(avg_bytes // 16, 16),
        layout=layout,
        chunks=chunks,
        heap_data_capacity=p.heap_capacity,
        compute_seconds=0.0,
    )
    env = fresh_env(n_nodes=1)
    result = env.runner.run(build_arldm(params))
    save_profile = env.mapper.profiles["arldm_saveh5"]
    write_ops = sum(s.writes for s in save_profile.dataset_stats)
    return result.stage("arldm_prepare").wall_time, write_ops


def run_fig13c(params: Fig13cParams = Fig13cParams()) -> ResultTable:
    """Sweep total size for contiguous vs. 5-chunk vs. 10-chunk layouts."""
    table = ResultTable(
        title="Figure 13c — ARLDM arldm_saveh5: contiguous vs. chunked VL",
        columns=["total_mib", "variant", "write_seconds", "write_ops",
                 "speedup_vs_contig"],
        notes=["Scales reduced 1024x from the paper's 5/10/20 GB; element "
               "sizes grow with total size (fixed story count)."],
    )
    for total in params.total_mib:
        contig_time, contig_ops = _variant(params, total, "contiguous", 0)
        table.add(total_mib=total, variant="contiguous (baseline)",
                  write_seconds=contig_time, write_ops=contig_ops,
                  speedup_vs_contig=1.0)
        for n_chunks in params.chunk_counts:
            t, ops = _variant(params, total, "chunked", n_chunks)
            table.add(total_mib=total, variant=f"{n_chunks} chunks",
                      write_seconds=t, write_ops=ops,
                      speedup_vs_contig=contig_time / t if t > 0 else float("inf"))
    return table
