"""Figure 13b: DDMD datasets — chunked (baseline) vs. contiguous layout.

The paper simulates the I/O of DDMD's OpenMM and Aggregate tasks with both
layouts, sweeping dataset size (100-800 KB) and process count.  DDMD's
files are small, so chunking only adds index metadata and extra operations;
contiguous consistently wins, up to ~1.9x in the high-concurrency OpenMM
regime.

Each simulated process writes a file with DDMD's four datasets and reads
it back; the metric is the sum of POSIX operation costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Env, ResultTable, fresh_env
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["Fig13bParams", "run_fig13b"]

KIB = 1024


@dataclass(frozen=True)
class Fig13bParams:
    """Experiment scale (paper: 100-800 KB datasets, process sweep)."""

    dataset_kib: tuple = (100, 200, 400, 800)
    process_counts: tuple = (1, 2, 4, 8)
    chunks_per_dataset: int = 2  # DDMD's per-frame-block chunking


def _measure(env: Env, layout: str, nbytes: int, n_procs: int,
             chunks_per_dataset: int) -> float:
    elems = max(nbytes // 4, 1)
    datasets = {
        "contact_map": elems,
        "point_cloud": max(elems // 4, 1),
        "fnc": max(elems // 64, 1),
        "rmsd": max(elems // 64, 1),
    }

    def proc(worker: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(worker)
            path = f"/beegfs/fig13b/{layout}_{nbytes}_{worker}.h5"
            f = rt.open(path, "w")
            for name, n in datasets.items():
                kwargs = (
                    {"layout": "chunked",
                     "chunks": (max(n // chunks_per_dataset, 1),)}
                    if layout == "chunked" else {"layout": "contiguous"}
                )
                f.create_dataset(name, shape=(n,), dtype="f4",
                                 data=rng.random(n, dtype=np.float32), **kwargs)
            f.close()
            # The Aggregate side: read everything back.
            f = rt.open(path, "r")
            for name in datasets:
                f[name].read()
            f.close()
        return fn

    wf = Workflow(f"fig13b_{layout}_{nbytes}_{n_procs}", [
        Stage("io", [Task(f"{layout}_{nbytes}_p{k}", proc(k))
                     for k in range(n_procs)])
    ])
    fs = env.cluster.fs
    before = fs.io_time()
    env.runner.run(wf)
    return fs.io_time() - before


def run_fig13b(params: Fig13bParams = Fig13bParams()) -> ResultTable:
    """Sweep size x process count for chunked (baseline) vs. contiguous."""
    table = ResultTable(
        title="Figure 13b — DDMD layout: chunked (baseline) vs. contiguous",
        columns=["dataset_kib", "processes", "chunked_ms", "contiguous_ms",
                 "speedup"],
        notes=["I/O time = sum of POSIX operation costs on the shared "
               "BeeGFS mount; four DDMD datasets per process."],
    )
    speedups = []
    for kib in params.dataset_kib:
        for procs in params.process_counts:
            env = fresh_env(n_nodes=2)
            chunked = _measure(env, "chunked", kib * KIB, procs,
                               params.chunks_per_dataset)
            env2 = fresh_env(n_nodes=2)
            contig = _measure(env2, "contiguous", kib * KIB, procs,
                              params.chunks_per_dataset)
            speedup = chunked / contig if contig > 0 else float("inf")
            speedups.append(speedup)
            table.add(dataset_kib=kib, processes=procs,
                      chunked_ms=chunked * 1e3, contiguous_ms=contig * 1e3,
                      speedup=speedup)
    table.notes.append(
        f"Contiguous speedup range {min(speedups):.2f}x - "
        f"{max(speedups):.2f}x (paper: up to 1.9x)."
    )
    return table
