"""Figure 9: Data Semantic Mapper overhead scaling.

Four panels, reproduced with sizes scaled ~1000× down from the paper's
(GB → MB); the swept axes and the *shapes* are the paper's:

- **9a** — h5bench, total file size sweep: VFD/VOL execution overhead %
  stays tiny and *decreases* as file size grows.
- **9b** — h5bench, process-count sweep at fixed volume per process:
  overhead % decreases with parallelism.
- **9c** — corner-case Python benchmark, dataset-I/O-operation sweep at
  fixed file size: runtime overhead *increases* with operation count
  (toward a few %, VFD > VOL).
- **9d** — corner-case storage overhead: VOL trace size is flat (profiles
  are per-object, not per-op); VFD trace grows linearly with operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import ResultTable, fresh_env
from repro.mapper.overhead import overhead_report
from repro.workloads.corner_case import CornerCaseParams, build_corner_case
from repro.workloads.h5bench import H5benchParams, build_h5bench_write

__all__ = [
    "run_fig9a_filesize",
    "run_fig9b_processes",
    "run_fig9c_read_scaling",
    "run_fig9d_storage",
]

MIB = 1 << 20


def _h5bench_overhead(n_procs: int, total_bytes: int) -> dict:
    env = fresh_env(n_nodes=2)
    params = H5benchParams(
        data_dir="/beegfs/h5bench",
        n_procs=n_procs,
        bytes_per_proc=max(total_bytes // n_procs, 1 << 12),
        ops_per_proc=8,
    )
    env.runner.run(build_h5bench_write(params))
    report = overhead_report(
        env.clock,
        trace_storage_bytes=env.mapper.storage_bytes,
        data_volume_bytes=env.mapper.data_volume(),
    )
    # Figure 9 isolates pure tracing overhead: with no monitor attached,
    # the live-monitoring account must not have accrued a single tick.
    assert report.monitor == 0.0, "unmonitored run charged monitor time"
    return {
        "vfd_percent": report.vfd_percent,
        "vol_percent": report.vol_percent,
        "storage_percent": report.storage_percent,
    }


def run_fig9a_filesize(sizes_mib: List[int] = (10, 20, 40, 80)) -> ResultTable:
    """H5bench data-size scaling (paper Figure 9a).

    Paper: VFD 0.02-0.14%, VOL below it, both decreasing with file size.
    """
    table = ResultTable(
        title="Figure 9a — h5bench overhead vs. total file size",
        columns=["file_size_mib", "vfd_percent", "vol_percent"],
        notes=["Sizes scaled ~1000x down from the paper's 10-80 GB; "
               "fixed 4 processes."],
    )
    for size in sizes_mib:
        r = _h5bench_overhead(n_procs=4, total_bytes=size * MIB)
        table.add(file_size_mib=size,
                  vfd_percent=r["vfd_percent"], vol_percent=r["vol_percent"])
    return table


def run_fig9b_processes(procs: List[int] = (8, 16, 32, 64)) -> ResultTable:
    """H5bench process scaling at fixed volume per process (Figure 9b).

    Paper: 1 GB per process, 16-64 processes, overhead decreasing.
    """
    table = ResultTable(
        title="Figure 9b — h5bench overhead vs. process count",
        columns=["processes", "vfd_percent", "vol_percent"],
        notes=["Fixed 1 MiB per process (paper: 1 GB per process)."],
    )
    for n in procs:
        r = _h5bench_overhead(n_procs=n, total_bytes=n * MIB)
        table.add(processes=n,
                  vfd_percent=r["vfd_percent"], vol_percent=r["vol_percent"])
    return table


def _corner_case(read_repeats: int, file_bytes: int) -> tuple:
    env = fresh_env(n_nodes=1)
    params = CornerCaseParams(
        data_dir="/beegfs/corner",
        n_datasets=200,
        file_bytes=file_bytes,
        read_repeats=read_repeats,
    )
    env.runner.run(build_corner_case(params))
    profile = env.mapper.profiles["corner_case"]
    report = overhead_report(
        env.clock,
        trace_storage_bytes=env.mapper.storage_bytes,
        data_volume_bytes=file_bytes,  # the program's required storage
    )
    assert report.monitor == 0.0, "unmonitored run charged monitor time"
    return params, profile, report


def run_fig9c_read_scaling(
    repeats: List[int] = (0, 10, 20, 30, 40),
    file_bytes: int = 50 * MIB,
) -> ResultTable:
    """Corner-case runtime overhead vs. dataset I/O operations (Figure 9c).

    Paper: 200 datasets in a 200 MB file; overhead climbs toward ~3% VFD /
    ~1% VOL as dataset I/O operations approach 8000.
    """
    table = ResultTable(
        title="Figure 9c — corner-case runtime overhead vs. dataset I/O count",
        columns=["dataset_io_operations", "vfd_percent", "vol_percent"],
        notes=["200 datasets; file size scaled to "
               f"{file_bytes // MIB} MiB (paper: 200 MB)."],
    )
    for r in repeats:
        params, profile, report = _corner_case(r, file_bytes)
        table.add(
            dataset_io_operations=params.dataset_io_operations,
            vfd_percent=report.vfd_percent,
            vol_percent=report.vol_percent,
        )
    return table


def run_fig9d_storage(
    repeats: List[int] = (0, 10, 20, 30, 40),
    file_bytes: int = 200 * MIB,
) -> ResultTable:
    """Corner-case storage overhead vs. I/O operations (Figure 9d).

    Paper: VOL trace flat (~0.2% of program storage); VFD linear in ops
    (~0.35% at 8000 ops).  Measured with DaYu's compact binary trace
    format; the JSON interchange form is ~3x larger.
    """
    table = ResultTable(
        title="Figure 9d — trace storage overhead vs. I/O operations",
        columns=["io_operations", "vfd_storage_percent", "vol_storage_percent"],
        notes=["Denominator: the program's required storage "
               f"({file_bytes // MIB} MiB); compact binary trace format."],
    )
    for r in repeats:
        env = fresh_env(n_nodes=1)
        params = CornerCaseParams(
            data_dir="/beegfs/corner", n_datasets=200,
            file_bytes=file_bytes, read_repeats=r,
        )
        env.runner.run(build_corner_case(params))
        profile = env.mapper.profiles["corner_case"]
        table.add(
            io_operations=len(profile.io_records),
            vfd_storage_percent=100.0 * profile.vfd_binary_bytes / file_bytes,
            vol_storage_percent=100.0 * profile.vol_binary_bytes / file_bytes,
        )
    return table
