"""Event-scheduler placement study: round-robin vs locality vs co-locate.

Two parts:

- :func:`run_locality_fixture` — the controlled fixture behind the
  locality gate: one producer writes a shared file, a fan of consumers
  read it through a :class:`~repro.optimizer.transparent
  .TransparentCache`.  Locality placement clusters the consumers onto
  one node, so the file is replicated onto node-local SSD **once** and
  every other consumer hits the replica; round-robin spreads the
  consumers and pays one replication miss per node.  That is the
  concrete mechanism by which the paper's fig11 co-scheduling wins, and
  the property ``BENCH_scheduler.json`` gates on.
- :func:`run_scheduler_comparison` — the bundled workloads executed
  under the event scheduler with each placement policy (plus the
  stage-at-a-time baseline), reporting makespans and steal counts for
  the ``EXPERIMENTS.md`` table.

Synthetic DAGs for the decision-overhead benchmark are built by
:func:`build_synthetic_dag` — deterministic layered graphs with fan-in
edges and weighted volumes, no RNG, so benchmark runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import ResultTable, fresh_env
from repro.optimizer.transparent import TransparentCache
from repro.workflow.contracts import TaskContract, creates, reads
from repro.workflow.dscheduler import DataflowRunner, TaskGraph
from repro.workflow.model import Stage, Task, Workflow

__all__ = [
    "LocalityRun",
    "run_locality_fixture",
    "build_synthetic_dag",
    "run_scheduler_comparison",
]


# ----------------------------------------------------------------------
# The locality fixture
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocalityRun:
    """Outcome of one locality-fixture run."""

    placement: str
    wall_time: float
    serial_time: float
    cache_hits: int
    cache_misses: int
    #: Distinct nodes the consumer stage landed on.
    consumer_nodes: int


def _locality_workflow(n_consumers: int, elems: int) -> Workflow:
    path = "/beegfs/locality/shared.h5"

    def produce(rt) -> None:
        f = rt.open(path, "w")
        f.create_dataset("data", shape=(elems,), dtype="f4",
                         data=np.zeros(elems, dtype=np.float32))
        f.close()

    producer = Task("produce", produce, contract=TaskContract.declare(
        creates(path, "/data", shape=(elems,), dtype="f4", elements=elems)))

    def consume(rt) -> None:
        f = rt.open(path, "r")
        f["data"][...]
        f.close()

    consumers = [
        Task(f"consume_{i:02d}", consume, contract=TaskContract.declare(
            reads(path, "/data", elements=elems, dtype="f4")))
        for i in range(n_consumers)
    ]
    return Workflow("locality-fixture", [
        Stage("produce", [producer]),
        Stage("consume", consumers),
    ])


def run_locality_fixture(
    placement: str = "locality",
    n_nodes: int = 3,
    n_consumers: int = 6,
    elems: int = 1 << 18,
) -> LocalityRun:
    """Run the producer/fan-of-consumers fixture under a cache.

    The consumers' aggregate read volume is what locality placement keys
    on (contract-predicted SDG edge volumes); the transparent cache is
    what converts clustered placement into fewer shared-filesystem
    replications and therefore a shorter makespan.
    """
    env = fresh_env(n_nodes=n_nodes)
    cache = TransparentCache(env.cluster, tier="ssd", min_bytes=1)
    runner = DataflowRunner(
        env.cluster, env.mapper,
        placement=placement, dependency_mode="dataflow",
        path_resolver=cache)
    result = runner.run(_locality_workflow(n_consumers, elems))
    consume = result.stage("consume")
    return LocalityRun(
        placement=placement,
        wall_time=result.wall_time,
        serial_time=result.serial_time,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        consumer_nodes=len(set(consume.placement.values())),
    )


# ----------------------------------------------------------------------
# Synthetic DAGs (decision-overhead benchmark)
# ----------------------------------------------------------------------
def build_synthetic_dag(
    n_tasks: int,
    width: int = 64,
    fan_in: int = 3,
) -> TaskGraph:
    """A deterministic layered DAG of ``n_tasks`` tasks.

    Tasks are laid out in layers of ``width``; each task depends on up to
    ``fan_in`` tasks of the previous layer (a strided pick, so edges are
    irregular but reproducible), with byte volumes varying by index.  No
    randomness: the same arguments always build the identical graph.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    graph = TaskGraph()
    for i in range(n_tasks):
        graph.add_task(f"t{i}", stage=f"layer{i // width}")
    for i in range(width, n_tasks):
        layer_start = (i // width - 1) * width
        prev_width = min(width, n_tasks - layer_start)
        for k in range(fan_in):
            j = layer_start + (i * (k + 1) + k) % prev_width
            graph.add_edge(f"t{j}", f"t{i}",
                           volume=((i + k) % 7 + 1) * 4096)
    return graph


# ----------------------------------------------------------------------
# The placement-policy comparison table
# ----------------------------------------------------------------------
_POLICIES = ("round_robin", "locality", "co_locate")


def _run_workload(name: str, scale: float, n_nodes: int,
                  placement: Optional[str]) -> Dict[str, float]:
    """One workload run; ``placement=None`` is the stage-at-a-time
    baseline runner."""
    from repro.workloads.registry import build_workload

    workflow, prepare = build_workload(name, scale)
    env = fresh_env(n_nodes=n_nodes)
    if prepare is not None:
        prepare(env.cluster)
    if placement is None:
        result = env.runner.run(workflow)
        steals = 0
    else:
        runner = DataflowRunner(env.cluster, env.mapper,
                                placement=placement,
                                dependency_mode="stage")
        result = runner.run(workflow)
        steals = runner.last_engine.steals
    return {"wall_time": result.wall_time, "steals": steals}


def run_scheduler_comparison(
    workloads: Optional[List[str]] = None,
    scale: float = 0.25,
    n_nodes: int = 3,
) -> ResultTable:
    """Makespan per bundled workload under each placement policy.

    The bundled workloads keep their data on the shared mount, so the
    policies differ mainly in how well they pack the virtual timeline
    (and how often work stealing rescues a busy node); the locality
    fixture row at the bottom adds the cache-replication effect the
    locality gate is built on.
    """
    names = workloads if workloads is not None else [
        "pyflextrkr", "ddmd", "arldm", "chaos"]
    table = ResultTable(
        title="Event-scheduler placement policies (makespan, simulated s)",
        columns=["workload", "stage_runner", *_POLICIES, "steals"],
    )
    for name in names:
        row: Dict[str, object] = {"workload": name}
        base = _run_workload(name, scale, n_nodes, None)
        row["stage_runner"] = base["wall_time"]
        steals = 0
        for policy in _POLICIES:
            out = _run_workload(name, scale, n_nodes, policy)
            row[policy] = out["wall_time"]
            steals = max(steals, int(out["steals"]))
        row["steals"] = steals
        table.add(**row)
    fixture: Dict[str, object] = {"workload": "locality-fixture",
                                  "stage_runner": float("nan"), "steals": 0}
    for policy in _POLICIES:
        run = run_locality_fixture(placement=policy, n_nodes=n_nodes)
        fixture[policy] = run.wall_time
    table.add(**fixture)
    table.notes.append(
        "locality-fixture: one producer, six consumers reading its "
        "shared file through a transparent node-local cache — locality "
        "clusters the consumers onto one replica, round-robin pays one "
        "replication per node.")
    return table
