"""Figure 12: DDMD execution, baseline vs. DaYu-optimized, over 5 iterations.

The baseline runs the 12-task DDMD pipeline entirely against the shared
BeeGFS mount.  The optimized variant applies the paper's four moves:

1. **Eliminate unused data access** — aggregate no longer copies the
   ``contact_map`` dataset training never reads (the Figure 7 insight).
2. **Co-locate aggregate and inference** on one node, reading simulation
   outputs staged onto its local SSD.
3. **Pipeline training and inference** — inference uses the previous
   iteration's model, so the two run concurrently (iteration 0 uses a
   pre-trained model).
4. (Asynchronous stage-out is subsumed by the stage-in accounting.)

Paper headline: 1.15x per pipeline iteration, 1.2x across 5 iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.common import Env, ResultTable, fresh_env
from repro.hdf5 import H5File
from repro.middleware.stager import stage_in
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime
from repro.workflow.scheduler import PinnedScheduler
from repro.workloads.ddmd import DdmdParams, build_ddmd, _DATASETS, _layout_kwargs, _sizes

__all__ = ["Fig12Params", "run_fig12"]


@dataclass(frozen=True)
class Fig12Params:
    """Experiment scale (paper: 12 tasks, 5 iterations on the GPU cluster).

    Compute times are calibrated so I/O is a minority share of iteration
    time, as in the compute-heavy real DDMD (MD simulation + ML training).
    """

    n_sim_tasks: int = 12
    frames: int = 2048
    iterations: int = 5
    epochs: int = 10
    openmm_compute: float = 1.5
    aggregate_compute: float = 0.4
    training_compute: float = 5.2
    inference_compute: float = 0.5


def _ddmd_params(p: Fig12Params, data_dir: str) -> DdmdParams:
    return DdmdParams(
        data_dir=data_dir,
        n_sim_tasks=p.n_sim_tasks,
        frames=p.frames,
        iterations=p.iterations,
        epochs=p.epochs,
        # Chunk length scales with the data so contact_map tiles into ~64
        # chunks (DDMD's real chunking is per-frame-block, not per-element).
        chunk_elems=p.frames,
        compute_seconds=0.0,  # compute is added per-stage below
    )


def _iteration_walls(result, iterations: int, stages_per_iter: int) -> List[float]:
    walls = []
    for i in range(iterations):
        chunk = result.stage_results[i * stages_per_iter:(i + 1) * stages_per_iter]
        walls.append(sum(s.wall_time for s in chunk))
    return walls


def _run_baseline(p: Fig12Params) -> List[float]:
    env = fresh_env(n_nodes=2)
    params = _ddmd_params(p, "/beegfs/ddmd")
    wf = build_ddmd(params)
    # Inject the calibrated compute times into the generated tasks.
    for stage in wf.stages:
        for task in stage.tasks:
            if task.name.startswith("openmm"):
                task.compute_seconds = p.openmm_compute
            elif task.name.startswith("aggregate"):
                task.compute_seconds = p.aggregate_compute
            elif task.name.startswith("training"):
                task.compute_seconds = p.training_compute
            elif task.name.startswith("inference"):
                task.compute_seconds = p.inference_compute
    result = env.runner.run(wf)
    return _iteration_walls(result, p.iterations, stages_per_iter=4)


def _build_optimized(p: Fig12Params, env: Env) -> Workflow:
    dd = _ddmd_params(p, "/beegfs/ddmd")
    node = env.cluster.node_names()[0]
    local = env.cluster.local_prefix(node, "ssd")
    fs = env.cluster.fs

    # Pre-trained model lets iteration 0's inference run alongside training.
    with H5File(fs, f"{dd.data_dir}/model_pretrained.h5", "w") as f:
        f.create_dataset("weights", shape=(dd.frames,), dtype="f4",
                         data=np.zeros(dd.frames, dtype=np.float32))

    def local_sim(iteration: int, i: int) -> str:
        return f"{local}/stage{iteration:04d}_task{i:04d}.h5"

    wf = Workflow("ddmd_optimized")
    base = build_ddmd(dd)  # reuse the openmm stages verbatim
    for iteration in range(p.iterations):
        openmm_stage = base.stages[iteration * 4]
        for task in openmm_stage.tasks:
            task.compute_seconds = p.openmm_compute
        wf.add_stage(openmm_stage)

        def make_stage_in(it: int):
            def fn(rt: TaskRuntime) -> None:
                for i in range(p.n_sim_tasks):
                    stage_in(rt.fs, dd.sim_file(it, i), local_sim(it, i))
            return fn

        wf.add_stage(Stage(
            f"stage_in_{iteration:04d}",
            [Task(f"stage_in_{iteration:04d}", make_stage_in(iteration))],
            parallel=False,
        ))

        def make_aggregate(it: int):
            def fn(rt: TaskRuntime) -> None:
                # Partial file access: contact_map is skipped entirely.
                used = ("point_cloud", "fnc", "rmsd")
                collected = {name: [] for name in used}
                for i in range(p.n_sim_tasks):
                    f = rt.open(local_sim(it, i), "r")
                    for name in used:
                        collected[name].append(f[name].read())
                    f.close()
                out = rt.open(dd.aggregated(it), "w")
                for name in used:
                    merged = np.concatenate(collected[name])
                    out.create_dataset(name, shape=(merged.size,), dtype="f4",
                                       data=merged,
                                       **_layout_kwargs(dd, merged.size))
                out.close()
            return fn

        wf.add_stage(Stage(
            f"aggregate_{iteration:04d}",
            [Task(f"aggregate_{iteration:04d}", make_aggregate(iteration),
                  compute_seconds=p.aggregate_compute)],
            parallel=False,
        ))

        def make_training(it: int):
            def fn(rt: TaskRuntime) -> None:
                rng = np.random.default_rng(it)
                agg = rt.open(dd.aggregated(it), "r")
                for name in ("point_cloud", "fnc", "rmsd"):
                    agg[name].read()
                agg.close()
                sim = rt.open(dd.sim_file(it, 0), "r")
                sim["contact_map"].read()
                sim.close()
                emb = dd.point_cloud_elems
                for epoch in range(1, p.epochs + 1):
                    f = rt.open(dd.embeddings(it, epoch), "w")
                    f.create_dataset("embeddings", shape=(emb,), dtype="f4",
                                     data=rng.random(emb, dtype=np.float32),
                                     **_layout_kwargs(dd, emb))
                    f.close()
                for epoch in (5, 10):
                    if epoch <= p.epochs:
                        f = rt.open(dd.embeddings(it, epoch), "r")
                        f["embeddings"].read()
                        f.close()
                model = rt.open(dd.model(it), "w")
                model.create_dataset("weights", shape=(dd.frames,), dtype="f4",
                                     data=rng.random(dd.frames, dtype=np.float32))
                model.close()
            return fn

        def make_inference(it: int):
            def fn(rt: TaskRuntime) -> None:
                for i in range(p.n_sim_tasks):
                    f = rt.open(local_sim(it, i), "r")
                    for name in _DATASETS:
                        f[name].read()
                    f.close()
                prev = (dd.model(it - 1) if it > 0
                        else f"{dd.data_dir}/model_pretrained.h5")
                model = rt.open(prev, "r")
                model["weights"].read()
                model.close()
                out = rt.open(dd.inference_out(it), "w")
                out.create_dataset("outliers", shape=(dd.frames,), dtype="i4",
                                   data=np.zeros(dd.frames, dtype=np.int32))
                out.close()
            return fn

        # Pipelined: training and inference run concurrently.
        wf.add_stage(Stage(
            f"train_infer_{iteration:04d}",
            [
                Task(f"training_{iteration:04d}", make_training(iteration),
                     compute_seconds=p.training_compute),
                Task(f"inference_{iteration:04d}", make_inference(iteration),
                     compute_seconds=p.inference_compute),
            ],
            parallel=True,
        ))
    return wf


def _run_optimized(p: Fig12Params) -> List[float]:
    env = fresh_env(n_nodes=2)
    wf = _build_optimized(p, env)
    node0, node1 = env.cluster.node_names()[:2]
    pins: Dict[str, str] = {}
    for it in range(p.iterations):
        pins[f"stage_in_{it:04d}"] = node0
        pins[f"aggregate_{it:04d}"] = node0
        pins[f"inference_{it:04d}"] = node0  # co-located with the staged data
        pins[f"training_{it:04d}"] = node1   # its own node, pre-staged input
    env.runner.scheduler = PinnedScheduler(pins)
    result = env.runner.run(wf)
    return _iteration_walls(result, p.iterations, stages_per_iter=4)


def run_fig12(params: Fig12Params = Fig12Params()) -> ResultTable:
    """Both variants across the iterations (paper: 1.15x per iteration,
    1.2x across the 5-iteration pipeline)."""
    baseline = _run_baseline(params)
    optimized = _run_optimized(params)
    table = ResultTable(
        title="Figure 12 — DDMD (12 tasks), baseline vs. DaYu optimized",
        columns=["iteration", "baseline_s", "optimized_s", "speedup"],
    )
    for i, (b, o) in enumerate(zip(baseline, optimized), start=1):
        table.add(iteration=i, baseline_s=b, optimized_s=o, speedup=b / o)
    overall = sum(baseline) / sum(optimized)
    mean_iter = float(np.mean([b / o for b, o in zip(baseline, optimized)]))
    table.notes.append(
        f"Mean per-iteration speedup {mean_iter:.2f}x (paper ~1.15x); "
        f"overall {overall:.2f}x (paper ~1.2x)."
    )
    return table
