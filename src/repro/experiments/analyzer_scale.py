"""Workflow Analyzer scalability (paper Section VII-B, closing claim).

"The Workflow Analyzer takes less than 15 seconds to analyze a graph with
1k nodes and 6k edges, and less than 2 seconds to construct the
corresponding FTG and SDG in HTML format."

The Analyzer is offline tooling, so — unlike the simulated runtimes used
everywhere else — this experiment measures *real* wall-clock time with
``time.perf_counter``.

:func:`run_analyzer_scaleout` extends the experiment to the end-to-end
*trace-to-graphs* pipeline: it saves the synthetic profiles both as JSON
and as the compact binary format, then times the seed path (serial JSON
load with per-op records, serial graph build) against the scale-out path
(:class:`~repro.analyzer.parallel.ParallelAnalyzer` over binary traces
with ``with_io_records=False``), asserting the two produce identical
graphs.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.analyzer import ParallelAnalyzer, build_ftg, build_sdg, graph_to_json, to_html
from repro.diagnostics import diagnose
from repro.mapper import codec
from repro.mapper.mapper import TaskProfile
from repro.mapper.persist import load_profiles_from_host_dir
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan
from repro.vfd.base import IoClass
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile

__all__ = [
    "SyntheticScale",
    "make_synthetic_profiles",
    "run_analyzer_scale",
    "run_analyzer_scaleout",
]


@dataclass(frozen=True)
class SyntheticScale:
    """Synthetic workflow shape targeting ~1k graph nodes / ~6k edges."""

    n_tasks: int = 150
    files_per_task: int = 20
    n_files: int = 850
    datasets_per_file: int = 2


def _synthetic_records(
    stats: DatasetIoStats, n: int, t: int
) -> List[VfdIoRecord]:
    """Deterministic per-op records consistent with one stats row."""
    op = "write" if stats.writes else "read"
    records = []
    for i in range(n):
        records.append(VfdIoRecord(
            task=stats.task,
            file=stats.file,
            op=op,
            offset=i * 4096,
            nbytes=4096,
            start=float(t) + i * 1e-4,
            duration=1e-5,
            access_type=IoClass.METADATA if i % 8 == 0 else IoClass.RAW,
            data_object=stats.data_object,
        ))
    return records


def make_synthetic_profiles(
    scale: SyntheticScale = SyntheticScale(),
    io_records_per_stat: int = 0,
) -> List[TaskProfile]:
    """Deterministic synthetic task profiles with realistic edge density.

    ``io_records_per_stat`` > 0 additionally populates per-operation
    records, file sessions, and object profiles — the trace sections that
    dominate on-disk size but that graph construction never reads.
    """
    profiles: List[TaskProfile] = []
    for t in range(scale.n_tasks):
        task = f"task_{t:04d}"
        stats: List[DatasetIoStats] = []
        for k in range(scale.files_per_task):
            file_idx = (t * 7 + k * 13) % scale.n_files
            file = f"/pfs/synth/file_{file_idx:05d}.h5"
            for d in range(scale.datasets_per_file):
                s = DatasetIoStats(task=task, file=file, data_object=f"/ds{d}")
                if (t + k + d) % 3 == 0:
                    s.writes = 4
                    s.bytes_written = 1 << 16
                    s.data_ops = 3
                    s.data_bytes = 1 << 16
                    s.metadata_ops = 1
                    s.metadata_bytes = 512
                    s.first_raw_op = "write"
                else:
                    s.reads = 2
                    s.bytes_read = 1 << 14
                    s.data_ops = 2
                    s.data_bytes = 1 << 14
                    s.first_raw_op = "read"
                s.io_time = 0.001
                s.first_start = float(t)
                s.last_end = float(t) + 0.5
                s.regions = {0: 1, (t + d) % 8: 1}
                stats.append(s)
        object_profiles: List[DataObjectProfile] = []
        file_sessions: List[FileSession] = []
        io_records: List[VfdIoRecord] = []
        if io_records_per_stat > 0:
            for s in stats:
                io_records.extend(
                    _synthetic_records(s, io_records_per_stat, t))
                object_profiles.append(DataObjectProfile(
                    task=task, file=s.file, object_name=s.data_object,
                    acquired=float(t), released=float(t) + 0.5,
                    open_count=1, shape=(4096,), dtype="float32",
                    layout="contiguous", nbytes=s.access_volume,
                    reads=s.reads, writes=s.writes,
                ))
            for file in sorted({s.file for s in stats}):
                file_sessions.append(FileSession(
                    task=task, file=file, open_time=float(t),
                    close_time=float(t) + 1.0,
                ))
        profiles.append(TaskProfile(
            task=task,
            span=TimeSpan(float(t), float(t) + 1.0),
            files=sorted({s.file for s in stats}),
            object_profiles=object_profiles,
            file_sessions=file_sessions,
            io_records=io_records,
            dataset_stats=stats,
        ))
    return profiles


def run_analyzer_scale(scale: SyntheticScale = SyntheticScale()) -> dict:
    """Measure analysis and rendering wall time on the synthetic workflow.

    Returns a dict with graph sizes and the two timings the paper reports.
    """
    profiles = make_synthetic_profiles(scale)

    t0 = time.perf_counter()
    ftg = build_ftg(profiles)
    sdg = build_sdg(profiles)
    report = diagnose(profiles)
    analyze_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    ftg_html = to_html(ftg, title="synthetic FTG")
    sdg_html = to_html(sdg, title="synthetic SDG")
    render_seconds = time.perf_counter() - t0

    return {
        "ftg_nodes": ftg.number_of_nodes(),
        "ftg_edges": ftg.number_of_edges(),
        "sdg_nodes": sdg.number_of_nodes(),
        "sdg_edges": sdg.number_of_edges(),
        "insights": len(report),
        "analyze_seconds": analyze_seconds,
        "render_seconds": render_seconds,
        "html_bytes": len(ftg_html) + len(sdg_html),
    }


def run_analyzer_scaleout(
    scale: SyntheticScale = SyntheticScale(),
    io_records_per_stat: int = 64,
    max_workers: Optional[int] = None,
    work_dir: Optional[str] = None,
) -> dict:
    """Seed path vs. scale-out path on the ~1k-node synthetic workflow.

    Baseline: JSON traces loaded serially with per-op records, serial
    FTG + SDG build.  Scale-out: binary traces loaded through
    :class:`ParallelAnalyzer` with ``with_io_records=False`` (the per-op
    section is skipped in O(1)), sharded graph build.  Both paths must
    produce byte-identical serialized graphs.

    Returns trace sizes, end-to-end timings, the speedup, and the
    identity check result.
    """
    profiles = make_synthetic_profiles(scale,
                                       io_records_per_stat=io_records_per_stat)

    own_dir = work_dir is None
    base = Path(work_dir or tempfile.mkdtemp(prefix="dayu-scaleout-"))
    json_dir = base / "json"
    binary_dir = base / "binary"
    json_dir.mkdir(parents=True, exist_ok=True)
    binary_dir.mkdir(parents=True, exist_ok=True)
    try:
        json_bytes = 0
        binary_bytes = 0
        for p in profiles:
            blob = p.serialize()
            json_bytes += len(blob)
            (json_dir / f"{p.task}.json").write_bytes(blob)
            blob = codec.encode_profile(p)
            binary_bytes += len(blob)
            (binary_dir / f"{p.task}{codec.BINARY_TRACE_SUFFIX}").write_bytes(blob)

        t0 = time.perf_counter()
        baseline_profiles = load_profiles_from_host_dir(
            str(json_dir), with_io_records=True)
        base_ftg = build_ftg(baseline_profiles)
        base_sdg = build_sdg(baseline_profiles)
        baseline_seconds = time.perf_counter() - t0

        analyzer = ParallelAnalyzer(max_workers=max_workers,
                                    with_io_records=False)
        t0 = time.perf_counter()
        fast_profiles = analyzer.load(str(binary_dir))
        fast_ftg = analyzer.build_ftg(fast_profiles)
        fast_sdg = analyzer.build_sdg(fast_profiles)
        scaleout_seconds = time.perf_counter() - t0

        identical = (
            graph_to_json(base_ftg) == graph_to_json(fast_ftg)
            and graph_to_json(base_sdg) == graph_to_json(fast_sdg)
        )
    finally:
        if own_dir:
            shutil.rmtree(base, ignore_errors=True)

    return {
        "n_profiles": len(profiles),
        "io_records_per_stat": io_records_per_stat,
        "ftg_nodes": fast_ftg.number_of_nodes(),
        "ftg_edges": fast_ftg.number_of_edges(),
        "sdg_nodes": fast_sdg.number_of_nodes(),
        "sdg_edges": fast_sdg.number_of_edges(),
        "json_bytes": json_bytes,
        "binary_bytes": binary_bytes,
        "size_ratio": json_bytes / binary_bytes if binary_bytes else 0.0,
        "baseline_seconds": baseline_seconds,
        "scaleout_seconds": scaleout_seconds,
        "speedup": (baseline_seconds / scaleout_seconds
                    if scaleout_seconds > 0 else 0.0),
        "identical_graphs": identical,
    }
