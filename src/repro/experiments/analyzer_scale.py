"""Workflow Analyzer scalability (paper Section VII-B, closing claim).

"The Workflow Analyzer takes less than 15 seconds to analyze a graph with
1k nodes and 6k edges, and less than 2 seconds to construct the
corresponding FTG and SDG in HTML format."

The Analyzer is offline tooling, so — unlike the simulated runtimes used
everywhere else — this experiment measures *real* wall-clock time with
``time.perf_counter``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.analyzer import build_ftg, build_sdg, to_html
from repro.diagnostics import diagnose
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan

__all__ = ["SyntheticScale", "make_synthetic_profiles", "run_analyzer_scale"]


@dataclass(frozen=True)
class SyntheticScale:
    """Synthetic workflow shape targeting ~1k graph nodes / ~6k edges."""

    n_tasks: int = 150
    files_per_task: int = 20
    n_files: int = 850
    datasets_per_file: int = 2


def make_synthetic_profiles(scale: SyntheticScale = SyntheticScale()) -> List[TaskProfile]:
    """Deterministic synthetic task profiles with realistic edge density."""
    profiles: List[TaskProfile] = []
    for t in range(scale.n_tasks):
        task = f"task_{t:04d}"
        stats: List[DatasetIoStats] = []
        for k in range(scale.files_per_task):
            file_idx = (t * 7 + k * 13) % scale.n_files
            file = f"/pfs/synth/file_{file_idx:05d}.h5"
            for d in range(scale.datasets_per_file):
                s = DatasetIoStats(task=task, file=file, data_object=f"/ds{d}")
                if (t + k + d) % 3 == 0:
                    s.writes = 4
                    s.bytes_written = 1 << 16
                    s.data_ops = 3
                    s.data_bytes = 1 << 16
                    s.metadata_ops = 1
                    s.metadata_bytes = 512
                    s.first_raw_op = "write"
                else:
                    s.reads = 2
                    s.bytes_read = 1 << 14
                    s.data_ops = 2
                    s.data_bytes = 1 << 14
                    s.first_raw_op = "read"
                s.io_time = 0.001
                s.first_start = float(t)
                s.last_end = float(t) + 0.5
                s.regions = {0: 1, (t + d) % 8: 1}
                stats.append(s)
        profiles.append(TaskProfile(
            task=task,
            span=TimeSpan(float(t), float(t) + 1.0),
            files=sorted({s.file for s in stats}),
            object_profiles=[],
            file_sessions=[],
            io_records=[],
            dataset_stats=stats,
        ))
    return profiles


def run_analyzer_scale(scale: SyntheticScale = SyntheticScale()) -> dict:
    """Measure analysis and rendering wall time on the synthetic workflow.

    Returns a dict with graph sizes and the two timings the paper reports.
    """
    profiles = make_synthetic_profiles(scale)

    t0 = time.perf_counter()
    ftg = build_ftg(profiles)
    sdg = build_sdg(profiles)
    report = diagnose(profiles)
    analyze_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    ftg_html = to_html(ftg, title="synthetic FTG")
    sdg_html = to_html(sdg, title="synthetic SDG")
    render_seconds = time.perf_counter() - t0

    return {
        "ftg_nodes": ftg.number_of_nodes(),
        "ftg_edges": ftg.number_of_edges(),
        "sdg_nodes": sdg.number_of_nodes(),
        "sdg_edges": sdg.number_of_edges(),
        "insights": len(report),
        "analyze_seconds": analyze_seconds,
        "render_seconds": render_seconds,
        "html_bytes": len(ftg_html) + len(sdg_html),
    }
