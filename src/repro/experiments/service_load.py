"""Service-plane load: ingest throughput and query latency vs clients.

One harness, :func:`run_service_load`, answers the three questions the
``repro.service`` tentpole is gated on:

1. **Sustained multi-client ingest** — a real :class:`DayuService` on an
   ephemeral port is hammered by the async load generator
   (:mod:`repro.service.loadgen`) with 1..N concurrent keep-alive
   clients uploading real workload traces and querying
   FTG/SDG/findings after every upload; uploads/s, MB/s and latency
   percentiles per client count land in the result table.
2. **Correctness under concurrency** — after every sweep, each run's
   served graphs and findings are byte-compared against the offline
   reference (``compact_profiles`` + the same ``ParallelAnalyzer``
   calls ``dayu-analyze --graph-json --lint`` makes).
3. **Crash recovery** — the service is stopped *without* the graceful
   compaction pass (the ``kill -9`` shape), restarted over the same
   store root, and every run must serve the identical bytes again.

Wall-clock timings are real (the service is real I/O-bound tooling, not
part of the simulation), so the CI gates on these numbers carry margin.
"""

from __future__ import annotations

import asyncio
import random
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyzer import ParallelAnalyzer
from repro.analyzer.serialize import graph_to_json
from repro.experiments.common import ResultTable, fresh_env
from repro.mapper.columnar import compact_profiles
from repro.service.app import DayuService, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.loadgen import run_load
from repro.workloads.registry import build_workload

__all__ = ["ServiceRunner", "make_trace_payloads", "run_service_load"]


class ServiceRunner:
    """A :class:`DayuService` on its own event-loop thread — the
    harness-side twin of running ``dayu-serve`` as a daemon."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = DayuService(config)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.host: str = ""
        self.port: int = 0

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self.host, self.port = self._loop.run_until_complete(
            self.service.start())
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> "ServiceRunner":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service failed to start")
        return self

    def stop(self, compact: bool = False) -> None:
        fut = asyncio.run_coroutine_threadsafe(
            self.service.stop(compact=compact), self._loop)
        fut.result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(30)

    def client(self, token: Optional[str] = None) -> ServiceClient:
        return ServiceClient(self.host, self.port, token=token)


def make_trace_payloads(workload: str = "ddmd",
                        scale: float = 0.5,
                        n_nodes: int = 2) -> List[bytes]:
    """Trace one bundled workload in-process; one serialized JSON
    payload per task, exactly what ``dayu-run --out`` would save."""
    env = fresh_env(n_nodes=n_nodes)
    workflow, prepare = build_workload(workload, scale)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    return [p.serialize() for p in env.mapper.profiles.values()]


def _offline_reference(payloads: Sequence[bytes],
                       work_dir: Path) -> Dict[str, bytes]:
    """The offline pipeline's bytes: ``dayu-compact`` the payloads, then
    the same builds/lint ``dayu-analyze --graph-json --lint`` performs."""
    from repro.mapper.persist import load_profile

    compacted = work_dir / "compacted"
    compacted.mkdir(parents=True, exist_ok=True)
    full = [load_profile(p, with_io_records=True) for p in payloads]
    compact_profiles(full, str(compacted / "run.dayuc"))
    analyzer = ParallelAnalyzer()
    profiles = analyzer.load(str(compacted))
    return {
        "ftg": (graph_to_json(analyzer.build_ftg(profiles)) + "\n").encode(),
        "sdg": (graph_to_json(analyzer.build_sdg(profiles)) + "\n").encode(),
        "findings": analyzer.lint(profiles).to_json().encode(),
    }


def _verify_runs(client: ServiceClient, runs: Sequence[str],
                 reference: Dict[str, bytes]) -> bool:
    for run in runs:
        if client.graph(run, "ftg").encode() != reference["ftg"]:
            return False
        if client.graph(run, "sdg").encode() != reference["sdg"]:
            return False
        if client.findings(run).encode() != reference["findings"]:
            return False
    return True


def run_service_load(
    clients_sweep: Sequence[int] = (1, 2, 4, 8),
    workload: str = "ddmd",
    scale: float = 0.5,
    runs_per_sweep: int = 4,
    work_dir: Optional[str] = None,
) -> dict:
    """Sweep client concurrency against one live service instance."""
    own_dir = work_dir is None
    base = Path(work_dir or tempfile.mkdtemp(prefix="dayu-service-"))
    try:
        payloads = make_trace_payloads(workload, scale)
        reference = _offline_reference(payloads, base)
        trace_bytes = sum(len(p) for p in payloads)

        table = ResultTable(
            title=f"Service ingest/query vs clients ({workload}, "
                  f"{len(payloads)} traces x {runs_per_sweep} runs/sweep)",
            columns=["clients", "uploads", "uploads_per_s", "ingest_mb_per_s",
                     "upload_p99_ms", "query_p50_ms", "query_p99_ms",
                     "identical"],
        )
        runner = ServiceRunner(ServiceConfig(root=str(base / "store"),
                                             compact_after=0)).start()
        rows: List[dict] = []
        all_runs: List[str] = []
        try:
            for clients in clients_sweep:
                jobs: List[Tuple[str, bytes]] = []
                for r in range(runs_per_sweep):
                    run = f"c{clients}-r{r}"
                    jobs.extend((run, payload) for payload in payloads)
                    all_runs.append(run)
                random.Random(clients).shuffle(jobs)
                result = run_load(runner.host, runner.port, jobs,
                                  clients=clients)
                with runner.client() as check:
                    identical = _verify_runs(
                        check, [f"c{clients}-r{r}"
                                for r in range(runs_per_sweep)], reference)
                row = {"clients": clients, "uploads": result.uploads,
                       "uploads_per_s": result.uploads_per_s,
                       "ingest_mb_per_s": result.ingest_mb_per_s,
                       "upload_p99_ms": result.upload_p99_ms,
                       "query_p50_ms": result.query_p50_ms,
                       "query_p99_ms": result.query_p99_ms,
                       "identical": identical and result.errors == 0}
                rows.append(row)
                table.add(**row)
        finally:
            # Stop as a crash would: no graceful compaction pass.
            runner.stop(compact=False)

        # Recovery: a fresh instance over the same root must serve every
        # acknowledged run byte-identically.
        recovered = ServiceRunner(ServiceConfig(root=str(base / "store"),
                                                compact_after=0)).start()
        try:
            with recovered.client() as check:
                listed = [r["run"] for r in check.runs()["runs"]]
                recovery_identical = (sorted(all_runs) == listed
                                      and _verify_runs(check, all_runs,
                                                       reference))
        finally:
            recovered.stop(compact=False)

        table.notes.append(
            "Every sweep's served FTG/SDG/findings byte-checked against "
            "the offline compact+analyze pipeline; recovery re-checks all "
            "runs after a no-compaction stop and restart.")
        return {
            "workload": workload,
            "scale": scale,
            "n_traces": len(payloads),
            "trace_bytes": trace_bytes,
            "runs_per_sweep": runs_per_sweep,
            "rows": rows,
            "peak_uploads_per_s": max(r["uploads_per_s"] for r in rows),
            "peak_ingest_mb_per_s": max(r["ingest_mb_per_s"] for r in rows),
            "worst_query_p99_ms": max(r["query_p99_ms"] for r in rows),
            "identical": all(r["identical"] for r in rows),
            "recovery_identical": recovery_identical,
            "table_markdown": table.to_markdown(),
        }
    finally:
        if own_dir:
            shutil.rmtree(base, ignore_errors=True)
