"""Columnar trace analytics: run-file scan speed vs. the row paths.

The columnar run file (:mod:`repro.mapper.columnar`) exists for exactly
one reason: the offline Analyzer reads a handful of *columns* (the
dataset-stats family) out of traces whose bytes are dominated by per-op
records.  A row decoder must still walk every record; the columnar
reader seeks straight to the stats chunks behind the footer index and
hands the graph builder packed arrays.

Two harnesses quantify that:

- :func:`run_columnar_scaleout` — the synthetic ~1k-node workflow from
  :mod:`repro.experiments.analyzer_scale`, stored three ways (JSON dir,
  row-binary dir, one compacted ``.dayuc`` run) and analyzed through
  each path, with byte-identical serialized graphs asserted across all
  three.  This is the number gated by ``BENCH_columnar.json``.
- :func:`run_workload_table` — every bundled workload, traced for real,
  then analyzed row-wise and columnar-wise; also checks that the lint
  fingerprint set is byte-identical between the two inputs.  This feeds
  the EXPERIMENTS.md row-vs-columnar table.

Both measure *real* wall-clock time (the Analyzer is offline tooling).
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.analyzer import ParallelAnalyzer, build_ftg, build_sdg, graph_to_json
from repro.experiments.analyzer_scale import (
    SyntheticScale,
    make_synthetic_profiles,
)
from repro.experiments.common import ResultTable, fresh_env
from repro.mapper import codec
from repro.mapper.columnar import RunReader, build_graph_from_groups, compact_profiles
from repro.mapper.persist import load_profiles_from_host_dir

__all__ = [
    "run_columnar_scaleout",
    "run_workload_table",
    "SMOKE_SCALE",
]

#: Reduced shape for CI smoke runs (DAYU_SMOKE=1): same code paths, a few
#: seconds instead of tens.  The speedup gate drops from 10x to 5x there —
#: fixed per-call overhead looms larger on tiny inputs.
SMOKE_SCALE = SyntheticScale(n_tasks=40, files_per_task=10, n_files=220)


def run_columnar_scaleout(
    scale: SyntheticScale = SyntheticScale(),
    io_records_per_stat: int = 64,
    work_dir: Optional[str] = None,
) -> dict:
    """Time JSON-baseline vs. row-binary vs. columnar-run graph builds.

    All three stores hold the *same* profiles, per-op records included —
    the columnar path never decodes the record chunks, which is the whole
    point.  Serialized FTG/SDG must be byte-identical across the three.
    """
    profiles = make_synthetic_profiles(
        scale, io_records_per_stat=io_records_per_stat)

    own_dir = work_dir is None
    base = Path(work_dir or tempfile.mkdtemp(prefix="dayu-columnar-"))
    json_dir = base / "json"
    binary_dir = base / "binary"
    run_path = base / "run.dayuc"
    json_dir.mkdir(parents=True, exist_ok=True)
    binary_dir.mkdir(parents=True, exist_ok=True)
    try:
        json_bytes = 0
        binary_bytes = 0
        for p in profiles:
            blob = p.serialize()
            json_bytes += len(blob)
            (json_dir / f"{p.task}.json").write_bytes(blob)
            blob = codec.encode_profile(p)
            binary_bytes += len(blob)
            (binary_dir / f"{p.task}{codec.BINARY_TRACE_SUFFIX}").write_bytes(blob)
        columnar_bytes = compact_profiles(profiles, run_path)

        # The in-memory synthetic profiles are harness scaffolding, not
        # part of any measured path — free them, or gen-2 GC scans over
        # their millions of records dominate (and randomize) the timings.
        n_profiles = len(profiles)
        del profiles
        gc.collect()

        # Baseline: the seed pipeline — serial JSON parse with per-op
        # records, serial graph build.
        t0 = time.perf_counter()
        baseline_profiles = load_profiles_from_host_dir(
            str(json_dir), with_io_records=True)
        base_ftg = build_ftg(baseline_profiles)
        base_sdg = build_sdg(baseline_profiles)
        baseline_seconds = time.perf_counter() - t0

        # Each path is timed in isolation: drop the previous path's
        # object graph first, or the cyclic GC keeps re-scanning millions
        # of live baseline records inside the next timed region.
        del baseline_profiles
        gc.collect()

        # Row-binary: the BENCH_analyzer scale-out path, serial so the
        # columnar comparison isolates the format, not the pool.
        analyzer = ParallelAnalyzer(max_workers=1, with_io_records=False)
        t0 = time.perf_counter()
        row_profiles = analyzer.load(str(binary_dir))
        row_ftg = analyzer.build_ftg(row_profiles)
        row_sdg = analyzer.build_sdg(row_profiles)
        row_seconds = time.perf_counter() - t0

        del row_profiles
        gc.collect()

        # Columnar: mmap the run, build graphs straight from the stats
        # column arrays — no TaskProfile objects, no record decode.
        t0 = time.perf_counter()
        with RunReader.open(run_path) as reader:
            groups = list(reader)
            col_ftg = build_graph_from_groups("ftg", groups)
            col_sdg = build_graph_from_groups("sdg", groups)
        columnar_seconds = time.perf_counter() - t0

        base_ftg_json = graph_to_json(base_ftg)
        base_sdg_json = graph_to_json(base_sdg)
        identical = (
            base_ftg_json == graph_to_json(row_ftg)
            and base_sdg_json == graph_to_json(row_sdg)
            and base_ftg_json == graph_to_json(col_ftg)
            and base_sdg_json == graph_to_json(col_sdg)
        )
    finally:
        if own_dir:
            shutil.rmtree(base, ignore_errors=True)

    return {
        "n_profiles": n_profiles,
        "io_records_per_stat": io_records_per_stat,
        "ftg_nodes": col_ftg.number_of_nodes(),
        "ftg_edges": col_ftg.number_of_edges(),
        "sdg_nodes": col_sdg.number_of_nodes(),
        "sdg_edges": col_sdg.number_of_edges(),
        "json_bytes": json_bytes,
        "binary_bytes": binary_bytes,
        "columnar_bytes": columnar_bytes,
        "size_ratio": json_bytes / columnar_bytes if columnar_bytes else 0.0,
        "baseline_seconds": baseline_seconds,
        "row_seconds": row_seconds,
        "columnar_seconds": columnar_seconds,
        "speedup": (baseline_seconds / columnar_seconds
                    if columnar_seconds > 0 else 0.0),
        "row_speedup": (row_seconds / columnar_seconds
                        if columnar_seconds > 0 else 0.0),
        "identical_graphs": identical,
    }


def _trace_workload(name: str, out_dir: Path, scale: float = 1.0) -> int:
    """Run one bundled workload under profiling; save JSON traces."""
    from repro.workloads.registry import build_workload

    env = fresh_env(n_nodes=2)
    workflow, prepare = build_workload(name, scale)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    return len(env.mapper.save_to_host_dir(str(out_dir)))


def run_workload_table(
    workloads: Optional[List[str]] = None,
    work_dir: Optional[str] = None,
) -> ResultTable:
    """Row vs. columnar analyze time and lint parity, per bundled workload.

    For each workload: trace it, compact the row traces into one run
    file, build FTG+SDG and lint both ways, and record wall times plus
    whether graphs and lint fingerprints came out byte-identical.
    """
    from repro.workloads.registry import WORKLOADS

    names = list(workloads) if workloads is not None else list(WORKLOADS)
    own_dir = work_dir is None
    base = Path(work_dir or tempfile.mkdtemp(prefix="dayu-wltable-"))
    table = ResultTable(
        title="Row vs. columnar analyze time per bundled workload",
        columns=["workload", "tasks", "row_ms", "columnar_ms",
                 "speedup", "graphs_identical", "lint_identical"],
        notes=["Row path: serial load of per-task traces with per-op "
               "records + graph build + lint.  Columnar path: mmap one "
               "compacted run file, build graphs from stats columns, "
               "lint with page-stat pushdown."],
    )
    try:
        for name in names:
            rows_dir = base / name / "rows"
            rows_dir.mkdir(parents=True, exist_ok=True)
            run_path = base / name / "run.dayuc"
            n = _trace_workload(name, rows_dir)

            analyzer = ParallelAnalyzer(max_workers=1, with_io_records=True)

            t0 = time.perf_counter()
            profiles = analyzer.load(str(rows_dir))
            row_ftg = analyzer.build_ftg(profiles)
            row_sdg = analyzer.build_sdg(profiles)
            row_lint = analyzer.lint(profiles)
            row_seconds = time.perf_counter() - t0

            compact_profiles(profiles, run_path)

            t0 = time.perf_counter()
            with RunReader.open(run_path) as reader:
                groups = list(reader)
                col_ftg = build_graph_from_groups("ftg", groups)
                col_sdg = build_graph_from_groups("sdg", groups)
            col_lint = analyzer.lint_run(str(run_path))
            col_seconds = time.perf_counter() - t0

            graphs_ok = (graph_to_json(row_ftg) == graph_to_json(col_ftg)
                         and graph_to_json(row_sdg) == graph_to_json(col_sdg))
            lint_ok = ({f.fingerprint for f in row_lint.findings}
                       == {f.fingerprint for f in col_lint.findings})
            table.add(
                workload=name,
                tasks=n,
                row_ms=f"{row_seconds * 1e3:.1f}",
                columnar_ms=f"{col_seconds * 1e3:.1f}",
                speedup=(f"{row_seconds / col_seconds:.2f}x"
                         if col_seconds else "-"),
                graphs_identical="yes" if graphs_ok else "NO",
                lint_identical="yes" if lint_ok else "NO",
            )
    finally:
        if own_dir:
            shutil.rmtree(base, ignore_errors=True)

    return table
