"""Empirical validation of the Section III-A.4 layout guidelines.

The paper states its data-format rules as givens (small fixed → contiguous;
large fixed → contiguous for sequential, chunked for random/parallel
access; variable-length → chunked).  This experiment *measures* every cell
of that decision table on the simulated stack and checks that
:func:`~repro.guidelines.layout.advise_layout` picks the empirically
cheaper layout in each regime — i.e. that the guidelines are consistent
with the very I/O behaviour DaYu observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.experiments.common import ResultTable
from repro.guidelines.layout import AccessPattern, advise_layout
from repro.hdf5 import H5File, Selection
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device

__all__ = ["GuidelineValidationParams", "run_guideline_validation"]

KIB = 1024
MIB = 1 << 20


@dataclass(frozen=True)
class GuidelineValidationParams:
    """Scales for the decision-table sweep.

    "Small" must sit below the advisor's 1 MiB threshold and "large" above
    it.  Random access reads ``random_accesses`` scattered blocks of
    ``random_block`` elements.
    """

    small_elems: int = 8 * KIB        # 64 KiB of f8 — "small"
    large_elems: int = 4 * MIB // 2   # 16 MiB of f8 — "large"
    chunk_fraction: int = 16          # chunk = n / 16
    random_accesses: int = 24
    random_block: int = 512
    vlen_items: int = 24
    vlen_avg_bytes: int = 32 * KIB
    device: str = "beegfs"


def _fixed_io_time(p, n_elems: int, layout: str,
                   access: AccessPattern) -> float:
    fs = SimFS(SimClock(), mounts=[Mount("/", make_device(p.device))])
    if access is AccessPattern.SEQUENTIAL:
        # 1-D scan: the regime where contiguous shines.
        kwargs = ({"layout": "chunked",
                   "chunks": (max(n_elems // p.chunk_fraction, 1),)}
                  if layout == "chunked" else {"layout": "contiguous"})
        with H5File(fs, "/v.h5", "w") as f:
            f.create_dataset("d", shape=(n_elems,), dtype="f8",
                             data=np.zeros(n_elems), **kwargs)
        fs.clear_log()
        with H5File(fs, "/v.h5", "r") as f:
            f["d"].read()
        return fs.io_time()

    # Non-sequential access: column blocks of a 2-D row-major dataset.
    # Contiguous storage scatters a column over one tiny run per row;
    # chunking coalesces it into a few chunk reads — the case the
    # guideline's "random or parallel access" clause is about.
    rows = 1 << 10
    cols = max(n_elems // rows, 1)
    kwargs = ({"layout": "chunked",
               "chunks": (max(rows // 8, 1), max(cols // 8, 1))}
              if layout == "chunked" else {"layout": "contiguous"})
    with H5File(fs, "/v.h5", "w") as f:
        f.create_dataset("d", shape=(rows, cols), dtype="f8",
                         data=np.zeros((rows, cols)), **kwargs)
    fs.clear_log()
    with H5File(fs, "/v.h5", "r") as f:
        d = f["d"]
        rng = np.random.default_rng(7)
        width = 8
        for _ in range(p.random_accesses):
            col = int(rng.integers(0, cols - width))
            d.read(Selection.hyperslab(((0, rows), (col, width))))
    return fs.io_time()


def _vlen_write_time(p, layout: str) -> float:
    fs = SimFS(SimClock(), mounts=[Mount("/", make_device(p.device))])
    rng = np.random.default_rng(5)
    items = [b"x" * int(s) for s in rng.integers(
        p.vlen_avg_bytes // 2, p.vlen_avg_bytes * 3 // 2, p.vlen_items)]
    kwargs = ({"layout": "chunked", "chunks": (max(p.vlen_items // 5, 1),)}
              if layout == "chunked" else {"layout": "contiguous"})
    start = fs.clock.now
    with H5File(fs, "/v.h5", "w", heap_data_capacity=p.vlen_avg_bytes // 2) as f:
        f.create_dataset("v", shape=(len(items),), dtype="vlen-bytes",
                         data=items, **kwargs)
    return fs.clock.now - start


def run_guideline_validation(
    params: GuidelineValidationParams = GuidelineValidationParams(),
) -> ResultTable:
    """Measure every decision-table cell; flag advisor agreement."""
    p = params
    table = ResultTable(
        title="Section III-A.4 guideline validation — measured vs. advised",
        columns=["regime", "contiguous_ms", "chunked_ms",
                 "measured_best", "advised", "agrees"],
    )

    regimes: Dict[str, Tuple[float, float, str]] = {}

    # Small fixed, sequential.
    c = _fixed_io_time(p, p.small_elems, "contiguous", AccessPattern.SEQUENTIAL)
    k = _fixed_io_time(p, p.small_elems, "chunked", AccessPattern.SEQUENTIAL)
    regimes["small fixed, sequential"] = (
        c, k, advise_layout("f8", p.small_elems, AccessPattern.SEQUENTIAL).layout)

    # Large fixed, sequential.
    c = _fixed_io_time(p, p.large_elems, "contiguous", AccessPattern.SEQUENTIAL)
    k = _fixed_io_time(p, p.large_elems, "chunked", AccessPattern.SEQUENTIAL)
    regimes["large fixed, sequential"] = (
        c, k, advise_layout("f8", p.large_elems, AccessPattern.SEQUENTIAL).layout)

    # Large fixed, random partial access.
    c = _fixed_io_time(p, p.large_elems, "contiguous", AccessPattern.RANDOM)
    k = _fixed_io_time(p, p.large_elems, "chunked", AccessPattern.RANDOM)
    regimes["large fixed, random"] = (
        c, k, advise_layout("f8", p.large_elems, AccessPattern.RANDOM).layout)

    # Variable-length write.
    c = _vlen_write_time(p, "contiguous")
    k = _vlen_write_time(p, "chunked")
    regimes["variable-length"] = (
        c, k, advise_layout("vlen-bytes", p.vlen_items).layout)

    for regime, (contig, chunked, advised) in regimes.items():
        measured_best = "contiguous" if contig <= chunked else "chunked"
        table.add(
            regime=regime,
            contiguous_ms=contig * 1e3,
            chunked_ms=chunked * 1e3,
            measured_best=measured_best,
            advised=advised,
            agrees=measured_best == advised,
        )
    agreements = sum(1 for r in table.rows if r["agrees"])
    table.notes.append(
        f"Advisor agrees with the measurement in {agreements}/{len(table.rows)} "
        "regimes."
    )
    return table
