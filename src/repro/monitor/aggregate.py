"""The online aggregator: live graphs plus windowed dataflow dynamics.

Two views are maintained from the same event stream:

1. **Live FTG/SDG** — every :class:`~repro.monitor.events.TaskFinished`
   event carries the finished profile, which feeds the same incremental
   :class:`~repro.analyzer.graphs.GraphBuilder` the offline analyzer
   uses, in completion order.  A snapshot is available at any sim-clock
   instant, and the end-of-run snapshot serializes byte-identical to a
   post-hoc serial build over the saved profiles (task-finish events are
   critical — the bus never drops them — so this holds under every
   backpressure policy).

2. **Windowed dynamics** — the paper's temporal axis, which no post-hoc
   module produces: per-interval bytes / ops / latency series keyed by
   ``(task, file, dataset)``, folded from per-operation
   :class:`~repro.monitor.events.VfdOp` events.  State is one small
   accumulator per touched ``(key, interval)`` pair; with
   ``max_windows_per_key`` set, the oldest intervals of a key collapse
   into a per-key overflow row so memory stays bounded on arbitrarily
   long runs (evictions are counted, totals still reconcile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.analyzer.graphs import GraphBuilder
from repro.mapper.stats import FILE_METADATA_OBJECT
from repro.monitor.events import MonitorEvent, TaskFinished, VfdOp

__all__ = ["WindowStats", "DynamicsWindows", "LiveAggregator"]

#: A dynamics key: (task, file, data_object).
Key = Tuple[str, str, str]


@dataclass
class WindowStats:
    """Accumulated I/O inside one interval for one (task, dataset)."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    io_time: float = 0.0

    @property
    def ops(self) -> int:
        return self.reads + self.writes

    @property
    def bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def mean_latency(self) -> float:
        return self.io_time / self.ops if self.ops else 0.0

    def observe(self, op: str, nbytes: int, duration: float) -> None:
        if op == "read":
            self.reads += 1
            self.read_bytes += nbytes
        else:
            self.writes += 1
            self.write_bytes += nbytes
        self.io_time += duration

    def merge(self, other: "WindowStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes
        self.io_time += other.io_time

    def to_json_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "io_time": self.io_time,
            "mean_latency": self.mean_latency,
        }


@dataclass
class _KeySeries:
    """Interval accumulators for one (task, file, dataset) key."""

    windows: Dict[int, WindowStats] = field(default_factory=dict)
    #: Intervals folded out by the memory bound, merged into one row.
    overflow: WindowStats = field(default_factory=WindowStats)
    evicted_windows: int = 0


class DynamicsWindows:
    """Per-interval bytes/ops/latency series keyed by (task, dataset).

    Args:
        window_seconds: Interval width on the simulated clock.
        max_windows_per_key: Newest intervals kept per key (None =
            unbounded).  Evicted intervals merge into the key's overflow
            row, so per-key totals are conserved exactly.
    """

    def __init__(
        self,
        window_seconds: float = 0.5,
        max_windows_per_key: Optional[int] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_windows_per_key is not None and max_windows_per_key < 1:
            raise ValueError("max_windows_per_key must be >= 1 or None")
        self.window_seconds = window_seconds
        self.max_windows_per_key = max_windows_per_key
        self._series: Dict[Key, _KeySeries] = {}
        self.total_ops = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    def interval_of(self, t: float) -> int:
        return int(t // self.window_seconds)

    def observe(self, event: VfdOp) -> None:
        key = (event.task or "", event.file,
               event.data_object or FILE_METADATA_OBJECT)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _KeySeries()
        idx = self.interval_of(event.start)
        stats = series.windows.get(idx)
        if stats is None:
            stats = series.windows[idx] = WindowStats()
            bound = self.max_windows_per_key
            if bound is not None and len(series.windows) > bound:
                oldest = min(series.windows)
                series.overflow.merge(series.windows.pop(oldest))
                series.evicted_windows += 1
        stats.observe(event.op, event.nbytes, event.duration)
        self.total_ops += 1
        self.total_bytes += event.nbytes

    # ------------------------------------------------------------------
    def keys(self) -> List[Key]:
        return sorted(self._series)

    def series_for(self, task: str, file: str,
                   data_object: str) -> List[Tuple[int, WindowStats]]:
        """The key's kept intervals as sorted (interval_index, stats)."""
        series = self._series.get((task, file, data_object))
        if series is None:
            return []
        return sorted(series.windows.items())

    def totals_for(self, task: str, file: str, data_object: str) -> WindowStats:
        """Exact totals for a key: kept intervals plus the overflow row."""
        out = WindowStats()
        series = self._series.get((task, file, data_object))
        if series is not None:
            out.merge(series.overflow)
            for stats in series.windows.values():
                out.merge(stats)
        return out

    @property
    def evicted_windows(self) -> int:
        return sum(s.evicted_windows for s in self._series.values())

    def to_json_dict(self) -> dict:
        """Deterministic JSON form (``dayu-monitor``'s series file)."""
        w = self.window_seconds
        rows = []
        for key in self.keys():
            task, file, obj = key
            series = self._series[key]
            rows.append({
                "task": task,
                "file": file,
                "data_object": obj,
                "evicted_windows": series.evicted_windows,
                "overflow": series.overflow.to_json_dict(),
                "points": [
                    {"t0": idx * w, "t1": (idx + 1) * w,
                     **stats.to_json_dict()}
                    for idx, stats in sorted(series.windows.items())
                ],
            })
        return {
            "window_seconds": w,
            "total_ops": self.total_ops,
            "total_bytes": self.total_bytes,
            "series": rows,
        }


class LiveAggregator:
    """Bus subscriber maintaining live graphs and windowed dynamics."""

    def __init__(
        self,
        window_seconds: float = 0.5,
        max_windows_per_key: Optional[int] = None,
        with_regions: bool = False,
        region_bytes: int = 65536,
        page_size: int = 4096,
    ) -> None:
        self._ftg = GraphBuilder("ftg")
        self._sdg = GraphBuilder(
            "sdg", with_regions=with_regions, region_bytes=region_bytes,
            page_size=page_size,
        )
        self.dynamics = DynamicsWindows(
            window_seconds=window_seconds,
            max_windows_per_key=max_windows_per_key,
        )
        #: Task names in completion order.
        self.tasks_finished: List[str] = []
        self.tasks_running = 0
        # Profiles received but not yet folded into the builders.  Graph
        # ingestion is deferred to snapshot time so the per-event path
        # stays cheap; each snapshot folds in only the profiles that
        # arrived since the last one (amortized incremental), in the
        # same completion order a post-hoc build would use.
        self._pending: List[object] = []

    # ------------------------------------------------------------------
    def handle(self, event: MonitorEvent) -> None:
        kind = event.kind
        if kind == "vfd_op":
            self.dynamics.observe(event)  # type: ignore[arg-type]
        elif kind == "task_finished":
            profile = event.profile  # type: ignore[attr-defined]
            self._pending.append(profile)
            self.tasks_finished.append(profile.task)
            self.tasks_running = max(self.tasks_running - 1, 0)
        elif kind == "task_started":
            self.tasks_running += 1
        elif kind == "task_failed":
            # Failed attempts leave no profile; only the running count
            # moves, and only for attempts that actually started.
            if event.started:  # type: ignore[attr-defined]
                self.tasks_running = max(self.tasks_running - 1, 0)

    # ------------------------------------------------------------------
    def _ingest_pending(self) -> None:
        for profile in self._pending:
            self._ftg.add_profile(profile)
            self._sdg.add_profile(profile)
        self._pending.clear()

    def snapshot_ftg(self) -> nx.DiGraph:
        """Finalized live FTG over every task finished so far."""
        self._ingest_pending()
        return self._ftg.build(copy=True)

    def snapshot_sdg(self) -> nx.DiGraph:
        """Finalized live SDG over every task finished so far."""
        self._ingest_pending()
        return self._sdg.build(copy=True)
