"""The monitor facade: one bus, the standard subscribers, one config.

:class:`WorkflowMonitor` is what callers attach to a
:class:`~repro.mapper.mapper.DataSemanticMapper`: it owns the
:class:`~repro.monitor.bus.EventBus` and wires the three standard
subscribers onto it —

- ``aggregate`` — the :class:`~repro.monitor.aggregate.LiveAggregator`
  (live FTG/SDG + windowed dynamics), under the configured backpressure
  policy (lifecycle events are critical, so graph equivalence holds even
  when this subscriber drops or samples);
- ``streamlint`` — the :class:`~repro.monitor.streamlint.StreamLint`
  engine, always under the lossless *block* policy so its happens-before
  mirror sees every recorded operation;
- ``metrics`` — feeds the :class:`~repro.monitor.export.MetricsRegistry`
  (counters/gauges/histograms for the Prometheus/JSON exporters).

The mapper publishes task lifecycle events, the tracers publish VOL/VFD
events, the runner publishes stage boundaries; call :meth:`finish` after
the run to drain the queues and finalize streaming lint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import networkx as nx

from repro.lint.findings import Finding
from repro.monitor.aggregate import DynamicsWindows, LiveAggregator
from repro.monitor.bus import Backpressure, EventBus
from repro.monitor.events import MonitorEvent
from repro.monitor.export import MetricsRegistry
from repro.monitor.streamlint import StreamAlert, StreamLint
from repro.simclock import SimClock

__all__ = ["MonitorConfig", "WorkflowMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables for one :class:`WorkflowMonitor`."""

    #: Dynamics interval width on the simulated clock.
    window_seconds: float = 0.5
    #: Bounded queue capacity per subscriber.
    bus_capacity: int = 256
    #: Backpressure for the lossy-tolerant subscribers (aggregate,
    #: metrics); streaming lint always uses the lossless block policy.
    policy: Backpressure = Backpressure.BLOCK
    #: Admit 1 in N droppable events under the sample policy.
    sample_every: int = 4
    #: Modeled consumer cost per delivered event, charged to the
    #: ``dayu.monitor.subscriber`` clock account (never the critical path).
    cost_per_event: float = 5.0e-8
    #: Build the live SDG with page-region nodes.
    with_regions: bool = False
    region_bytes: int = 65536
    page_size: int = 4096
    #: Bound on kept dynamics intervals per (task, dataset) key.
    max_windows_per_key: Optional[int] = None
    #: Extent-list cap per (task, dataset) in streaming lint.
    max_extents_per_access: int = 64
    #: Evaluate the streaming lint rules.
    stream_lint: bool = True
    #: Also stream the opt-in DY501/502/503 happens-before race mirrors
    #: (the DY5xx family is opt-in batch-side too; DY504/505 never stream).
    stream_races: bool = False


class WorkflowMonitor:
    """Live observability for one workflow run (see module docstring)."""

    def __init__(
        self,
        clock: SimClock,
        config: Optional[MonitorConfig] = None,
        on_alert: Optional[Callable[[StreamAlert], None]] = None,
    ) -> None:
        self.config = config or MonitorConfig()
        cfg = self.config
        self.bus = EventBus(clock, cost_per_event=cfg.cost_per_event)
        self.aggregator = LiveAggregator(
            window_seconds=cfg.window_seconds,
            max_windows_per_key=cfg.max_windows_per_key,
            with_regions=cfg.with_regions,
            region_bytes=cfg.region_bytes,
            page_size=cfg.page_size,
        )
        self.bus.subscribe(
            "aggregate", self.aggregator.handle, policy=cfg.policy,
            capacity=cfg.bus_capacity, sample_every=cfg.sample_every,
        )
        self._user_on_alert = on_alert
        self.streamlint: Optional[StreamLint] = None
        if cfg.stream_lint:
            self.streamlint = StreamLint(
                max_extents_per_access=cfg.max_extents_per_access,
                on_alert=self._alert_raised,
                races=cfg.stream_races,
            )
            # Lossless: the happens-before mirror must see every recorded
            # operation to keep fingerprints aligned with the batch engine.
            self.bus.subscribe(
                "streamlint", self.streamlint.handle,
                policy=Backpressure.BLOCK, capacity=cfg.bus_capacity,
            )
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_events = m.counter(
            "dayu_events_total", "Monitor events delivered, by kind.",
            ("kind",))
        self._m_tasks = m.counter(
            "dayu_tasks_completed_total", "Tasks whose profile is final.")
        self._m_running = m.gauge(
            "dayu_tasks_running", "Tasks currently executing.")
        self._m_ops = m.counter(
            "dayu_io_ops_total", "Low-level I/O operations, by direction.",
            ("op",))
        self._m_bytes = m.counter(
            "dayu_io_bytes_total", "Low-level I/O bytes, by direction.",
            ("op",))
        self._m_latency = m.histogram(
            "dayu_io_latency_seconds", "Per-operation I/O latency.")
        self._m_alerts = m.counter(
            "dayu_lint_alerts_total", "Streaming lint alerts, by rule code.",
            ("code",))
        self._m_task_failures = m.counter(
            "dayu_task_failures_total",
            "Failed task attempts; fatal=true once the retry budget is spent.",
            ("fatal",))
        self._m_task_retries = m.counter(
            "dayu_task_retries_total", "Task attempts beyond the first.")
        self._m_node_failures = m.counter(
            "dayu_node_failures_total", "Nodes lost to fault injection.")
        self._m_dropped = m.gauge(
            "dayu_bus_dropped_total",
            "Events dropped by a full bounded queue, per subscriber.",
            ("subscriber",))
        self._m_sampled = m.gauge(
            "dayu_bus_sampled_out_total",
            "Events elided by 1-in-N sampling, per subscriber.",
            ("subscriber",))
        self.bus.subscribe(
            "metrics", self._observe_metrics, policy=cfg.policy,
            capacity=cfg.bus_capacity, sample_every=cfg.sample_every,
        )
        # Pre-resolved label children for the per-event path; the
        # variable-label ones ({kind}, {op}) fill in lazily.
        self._b_tasks = self._m_tasks.labels()
        self._b_running = self._m_running.labels()
        self._b_latency = self._m_latency.labels()
        self._b_retries = self._m_task_retries.labels()
        self._b_node_failures = self._m_node_failures.labels()
        self._b_failed_fatal = self._m_task_failures.labels(fatal="true")
        self._b_failed_retryable = self._m_task_failures.labels(fatal="false")
        self._b_events: dict = {}
        self._b_ops: dict = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Publishing (called by mapper / tracers / runner)
    # ------------------------------------------------------------------
    def publish(self, event: MonitorEvent) -> None:
        self.bus.publish(event)

    # ------------------------------------------------------------------
    # Subscriber callbacks
    # ------------------------------------------------------------------
    def _alert_raised(self, alert: StreamAlert) -> None:
        self._m_alerts.inc(code=alert.finding.code)
        if self._user_on_alert is not None:
            self._user_on_alert(alert)

    def _observe_metrics(self, event: MonitorEvent) -> None:
        kind = event.kind
        by_kind = self._b_events.get(kind)
        if by_kind is None:
            by_kind = self._b_events[kind] = self._m_events.labels(kind=kind)
        by_kind.inc()
        if kind == "vfd_op":
            op = event.op  # type: ignore[attr-defined]
            by_op = self._b_ops.get(op)
            if by_op is None:
                by_op = self._b_ops[op] = (self._m_ops.labels(op=op),
                                           self._m_bytes.labels(op=op))
            by_op[0].inc()
            by_op[1].inc(event.nbytes)  # type: ignore[attr-defined]
            self._b_latency.observe(event.duration)  # type: ignore[attr-defined]
        elif kind == "task_started":
            self._b_running.inc()
        elif kind == "task_finished":
            self._b_running.dec()
            self._b_tasks.inc()
        elif kind == "task_failed":
            # Attempts that never started never incremented the gauge.
            if event.started:  # type: ignore[attr-defined]
                self._b_running.dec()
            if event.fatal:  # type: ignore[attr-defined]
                self._b_failed_fatal.inc()
            else:
                self._b_failed_retryable.inc()
        elif kind == "task_retried":
            self._b_retries.inc()
        elif kind == "node_failed":
            self._b_node_failures.inc()

    def _sync_bus_gauges(self) -> None:
        for sub in self.bus.subscriptions:
            self._m_dropped.set(sub.dropped, subscriber=sub.name)
            self._m_sampled.set(sub.sampled_out, subscriber=sub.name)

    # ------------------------------------------------------------------
    # Lifecycle / results
    # ------------------------------------------------------------------
    def finish(self) -> "WorkflowMonitor":
        """Drain every queue and finalize streaming lint; idempotent."""
        self.bus.flush()
        if self.streamlint is not None:
            self.streamlint.finalize()
        self._sync_bus_gauges()
        self._finished = True
        return self

    def snapshot_ftg(self) -> nx.DiGraph:
        self.bus.flush()
        return self.aggregator.snapshot_ftg()

    def snapshot_sdg(self) -> nx.DiGraph:
        self.bus.flush()
        return self.aggregator.snapshot_sdg()

    @property
    def dynamics(self) -> DynamicsWindows:
        return self.aggregator.dynamics

    @property
    def alerts(self) -> List[StreamAlert]:
        return list(self.streamlint.alerts) if self.streamlint else []

    @property
    def findings(self) -> List[Finding]:
        """Confirmed streaming-lint findings (drains and finalizes)."""
        if self.streamlint is None:
            return []
        self.bus.flush()
        return self.streamlint.finalize()

    def render_prometheus(self) -> str:
        self._sync_bus_gauges()
        return self.metrics.render_prometheus()

    def metrics_snapshot(self) -> dict:
        self._sync_bus_gauges()
        return self.metrics.snapshot()

    def reconciles(self) -> bool:
        """True when every subscriber's drop accounting balances."""
        return self.bus.reconciles()

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "bus": self.bus.stats(),
            "tasks_finished": len(self.aggregator.tasks_finished),
            "dynamics_keys": len(self.dynamics.keys()),
            "dynamics_evicted_windows": self.dynamics.evicted_windows,
        }
        if self.streamlint is not None:
            out["streamlint"] = self.streamlint.stats()
        return out
