"""``dayu-monitor`` — run a workload with live monitoring attached.

Runs a bundled workload exactly like ``dayu-run`` but with a
:class:`~repro.monitor.monitor.WorkflowMonitor` on the mapper: task rows
print as tasks complete, streaming-lint alerts print the moment they
fire, and the run's live artifacts are written afterwards —

- ``series.json``   — the windowed (task, dataset) dynamics series;
- ``metrics.prom``  — Prometheus text exposition of the run metrics;
- ``metrics.json``  — the same metrics as a JSON snapshot;
- ``ftg.json`` / ``sdg.json`` — the end-of-run live graph snapshots
  (byte-identical to what ``dayu-analyze`` would build post-hoc);
- ``alerts.json``   — streaming-lint alerts with fire times and the
  confirmed/retracted verdict;
- ``bus.json``      — per-subscriber bus accounting (offered /
  delivered / dropped / sampled-out).

Exit status is non-zero when the bus accounting fails to reconcile.

Example::

    dayu-monitor corner-hazards --scale 0.05 --policy drop --bus-capacity 8
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analyzer.serialize import graph_to_json
from repro.experiments.common import fresh_env
from repro.ioutil import atomic_write_text
from repro.monitor.bus import Backpressure
from repro.monitor.events import MonitorEvent
from repro.monitor.monitor import MonitorConfig
from repro.monitor.streamlint import StreamAlert
from repro.workloads.registry import WORKLOADS, build_workload

__all__ = ["monitor_main"]


def _print_alert(alert: StreamAlert) -> None:
    f = alert.finding
    tasks = ", ".join(f.tasks) if f.tasks else "-"
    print(f"  ! t={alert.time:9.3f}s ALERT {f.code} [{f.severity.value}] "
          f"{f.subject} (tasks: {tasks})")


def monitor_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-monitor``."""
    parser = argparse.ArgumentParser(
        prog="dayu-monitor",
        description="Run a case-study workload with the live monitor "
                    "attached: streaming lint alerts, windowed dynamics, "
                    "and Prometheus/JSON metrics.",
    )
    parser.add_argument("workload", choices=WORKLOADS)
    parser.add_argument("--out", default="monitor-out",
                        help="host directory for the monitoring artifacts")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier (default 1.0)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="simulated cluster nodes")
    parser.add_argument("--window", type=float, default=0.5,
                        help="dynamics interval width in simulated seconds")
    parser.add_argument("--bus-capacity", type=int, default=256,
                        help="bounded queue capacity per bus subscriber")
    parser.add_argument("--policy",
                        choices=[p.value for p in Backpressure],
                        default="block",
                        help="backpressure for the lossy-tolerant "
                             "subscribers (streaming lint always blocks)")
    parser.add_argument("--sample-every", type=int, default=4,
                        help="admit 1 in N droppable events under --policy "
                             "sample")
    parser.add_argument("--regions", action="store_true",
                        help="build the live SDG with address-region nodes")
    parser.add_argument("--no-lint", action="store_true",
                        help="disable the streaming lint subscriber")
    args = parser.parse_args(argv)

    config = MonitorConfig(
        window_seconds=args.window,
        bus_capacity=args.bus_capacity,
        policy=Backpressure(args.policy),
        sample_every=args.sample_every,
        with_regions=args.regions,
        stream_lint=not args.no_lint,
    )
    env = fresh_env(n_nodes=args.nodes, monitor_config=config,
                    on_alert=_print_alert)
    monitor = env.monitor
    assert monitor is not None

    def live_table(event: MonitorEvent) -> None:
        if event.kind == "stage_started":
            print(f"stage {event.stage}:")  # type: ignore[attr-defined]
        elif event.kind == "task_finished":
            profile = event.profile  # type: ignore[attr-defined]
            nbytes = sum(s.access_volume for s in profile.dataset_stats)
            print(f"  ✓ t={event.time:9.3f}s {profile.task:<28s} "
                  f"{profile.duration:9.4f}s {nbytes:>12d} B "
                  f"{len(profile.dataset_stats):>4d} objs")

    # The table only reacts to critical (always-delivered) events; a tiny
    # dropping queue keeps the droppable traffic from queueing up for it.
    monitor.bus.subscribe("cli-table", live_table,
                          policy=Backpressure.DROP, capacity=1)

    workflow, prepare = build_workload(args.workload, args.scale)
    if prepare is not None:
        prepare(env.cluster)
    print(f"Monitoring {args.workload} "
          f"({len(workflow.all_tasks())} tasks on {args.nodes} node(s); "
          f"policy={args.policy}, capacity={args.bus_capacity})...")
    result = env.runner.run(workflow)
    monitor.finish()
    print(f"  makespan: {result.wall_time:.3f} simulated seconds; "
          f"{monitor.bus.total_published} events published")

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # All artifacts are written atomically (tmp + os.replace): a killed
    # process leaves either the complete file or nothing for downstream
    # gates and recovery scans to read.
    atomic_write_text(out / "series.json",
                      json.dumps(monitor.dynamics.to_json_dict(), indent=2))
    atomic_write_text(out / "metrics.prom", monitor.render_prometheus())
    atomic_write_text(out / "metrics.json",
                      json.dumps(monitor.metrics_snapshot(), indent=2))
    atomic_write_text(out / "ftg.json", graph_to_json(monitor.snapshot_ftg()))
    atomic_write_text(out / "sdg.json", graph_to_json(monitor.snapshot_sdg()))
    confirmed = {f.fingerprint for f in monitor.findings}
    atomic_write_text(out / "alerts.json", json.dumps([
        {"time": a.time, "retracted": a.retracted,
         "confirmed": a.finding.fingerprint in confirmed,
         **a.finding.to_json_dict()}
        for a in monitor.alerts], indent=2))
    atomic_write_text(out / "bus.json",
                      json.dumps(monitor.bus.stats(), indent=2))
    print(f"Wrote series.json, metrics.prom, metrics.json, ftg.json, "
          f"sdg.json, alerts.json, bus.json to {out}/")

    n_alerts = len(monitor.alerts)
    n_retracted = sum(1 for a in monitor.alerts if a.retracted)
    if n_alerts:
        print(f"{n_alerts} streaming alert(s), {n_retracted} retracted "
              "after final ordering")
    for name, sub in sorted(
            (s.name, s) for s in monitor.bus.subscriptions):
        print(f"  bus[{name}]: offered={sub.offered} "
              f"delivered={sub.delivered} dropped={sub.dropped} "
              f"sampled_out={sub.sampled_out}")
    if not monitor.reconciles():
        print("ERROR: bus drop accounting does not reconcile",
              file=sys.stderr)
        return 1
    print("Bus accounting reconciles "
          "(offered == delivered + dropped + sampled_out).")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(monitor_main())
