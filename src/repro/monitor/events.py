"""Typed events published onto the monitor bus.

The vocabulary mirrors the two capture layers plus the runner:

- object-level semantics (VOL): file open/close, dataset open/close,
  dataset read/write accesses;
- byte-level I/O (VFD): one :class:`VfdOp` per low-level operation, with
  the ``recorded`` flag marking operations that also entered the saved
  per-op trace (``trace_io``/``skip_ops`` may subsample the trace; the
  live stream always sees everything);
- lifecycle (mapper/runner): task and stage start/finish.  A
  :class:`TaskFinished` event carries the task's finished
  :class:`~repro.mapper.mapper.TaskProfile` — the unit the online
  aggregator feeds to the incremental graph builder, which is what makes
  the end-of-run live snapshot byte-identical to the post-hoc build.

Lifecycle events are *critical*: the bus delivers them under every
backpressure policy (only the high-rate VOL/VFD events are droppable or
sampled), so a lossy dynamics subscriber still sees a complete and
correctly ordered task timeline.

Events are immutable by convention, not by ``frozen=True``: one instance
is shared by every subscriber and must never be mutated, but frozen
dataclasses construct through ``object.__setattr__`` (~4x slower), and
construction sits on the tracers' per-operation hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.vfd.base import IoClass

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.mapper.mapper import TaskProfile

__all__ = [
    "MonitorEvent",
    "TaskStarted",
    "TaskFinished",
    "TaskFailed",
    "TaskRetried",
    "TaskReady",
    "TaskStolen",
    "TaskSpeculated",
    "NodeFailed",
    "StageStarted",
    "StageFinished",
    "FileOpened",
    "FileClosed",
    "DatasetOpened",
    "DatasetClosed",
    "DatasetAccess",
    "VfdOp",
    "CRITICAL_KINDS",
]


@dataclass(slots=True)
class MonitorEvent:
    """Base event: when it happened (sim clock) and which task caused it."""

    time: float
    task: Optional[str]

    kind = "event"


@dataclass(slots=True)
class TaskStarted(MonitorEvent):
    kind = "task_started"


@dataclass(slots=True)
class TaskFinished(MonitorEvent):
    """A task completed and its joined profile is final."""

    profile: "TaskProfile" = None  # type: ignore[assignment]

    kind = "task_finished"


@dataclass(slots=True)
class TaskFailed(MonitorEvent):
    """A task attempt raised; its partial profile was discarded.

    Published once per failed *attempt* (a task retried three times that
    ultimately succeeds yields two ``task_failed`` + one ``task_finished``).
    ``fatal`` is True when no further attempt will be made — either the
    retry budget is exhausted on a best-effort stage (the run degrades) or
    the failure aborts the workflow."""

    error: str = ""
    node: str = ""
    attempt: int = 1
    fatal: bool = False
    #: False when the attempt never started (e.g. its node was already
    #: dead), so no ``task_started`` was published for it — consumers must
    #: not decrement a running count for such attempts.
    started: bool = True

    kind = "task_failed"


@dataclass(slots=True)
class TaskRetried(MonitorEvent):
    """The runner is about to re-attempt a failed task after backoff."""

    attempt: int = 2
    backoff: float = 0.0
    node: str = ""
    #: Node of the previous (failed) attempt, when re-placement moved it.
    previous_node: str = ""

    kind = "task_retried"


@dataclass(slots=True)
class TaskReady(MonitorEvent):
    """Every dependency of a task reached memory: it entered the ready
    heap of the event-driven scheduler (:mod:`repro.workflow.dscheduler`).

    ``at`` is the *virtual* time the task became runnable (max over its
    dependencies' virtual finishes, plus any retry backoff); ``time``
    stays the raw simulated clock like every other event."""

    stage: str = ""
    #: Virtual (overlapped-schedule) time the task became ready.
    at: float = 0.0
    #: Scheduling priority (cost-model upward rank) it was enqueued with.
    priority: float = 0.0

    kind = "task_ready"


@dataclass(slots=True)
class TaskStolen(MonitorEvent):
    """An idle node stole a task from its busy locality-preferred node.

    Published by the event scheduler when work stealing re-routes a
    ready task: ``victim`` is the node locality placement wanted (whose
    slots were all busy), ``node`` the idle thief that runs it instead,
    ``saved`` the virtual seconds of queue wait the steal avoided."""

    node: str = ""
    victim: str = ""
    saved: float = 0.0

    kind = "task_stolen"


@dataclass(slots=True)
class TaskSpeculated(MonitorEvent):
    """A straggling task was speculatively re-executed on another node.

    ``node`` ran the original copy in ``original_seconds``; ``speculative_node``
    ran the backup copy in ``speculative_seconds``; ``won`` is True when
    the backup finished first (its virtual completion is the one the
    schedule keeps)."""

    node: str = ""
    speculative_node: str = ""
    original_seconds: float = 0.0
    speculative_seconds: float = 0.0
    won: bool = False

    kind = "task_speculated"


@dataclass(slots=True)
class NodeFailed(MonitorEvent):
    """A cluster node died; its node-local tiers died with it."""

    node: str = ""

    kind = "node_failed"


@dataclass(slots=True)
class StageStarted(MonitorEvent):
    stage: str = ""

    kind = "stage_started"


@dataclass(slots=True)
class StageFinished(MonitorEvent):
    stage: str = ""
    wall_time: float = 0.0
    #: True when the stage aborted (a task exhausted its attempts on a
    #: non-best-effort stage); ``wall_time`` then covers the completed
    #: portion.  Best-effort stages finish with ``failed=False`` even when
    #: tasks were lost — the per-task ``task_failed`` events carry those.
    failed: bool = False

    kind = "stage_finished"


@dataclass(slots=True)
class FileOpened(MonitorEvent):
    file: str = ""

    kind = "file_opened"


@dataclass(slots=True)
class FileClosed(MonitorEvent):
    file: str = ""

    kind = "file_closed"


@dataclass(slots=True)
class DatasetOpened(MonitorEvent):
    file: str = ""
    data_object: str = ""
    shape: Tuple[int, ...] = ()
    dtype: str = ""
    layout: str = ""
    nbytes: int = 0

    kind = "dataset_opened"


@dataclass(slots=True)
class DatasetClosed(MonitorEvent):
    file: str = ""
    data_object: str = ""

    kind = "dataset_closed"


@dataclass(slots=True)
class DatasetAccess(MonitorEvent):
    """One VOL-layer dataset read or write (element granularity)."""

    file: str = ""
    data_object: str = ""
    op: str = "read"
    elements: int = 0
    nbytes: int = 0

    kind = "dataset_access"


@dataclass(slots=True)
class VfdOp(MonitorEvent):
    """One VFD-layer I/O operation (byte granularity)."""

    file: str = ""
    op: str = "read"
    offset: int = 0
    nbytes: int = 0
    start: float = 0.0
    duration: float = 0.0
    io_class: IoClass = IoClass.RAW
    data_object: Optional[str] = None
    #: True when this operation also entered the saved per-op trace
    #: (``trace_io`` on and past ``skip_ops``) — the subset the post-hoc
    #: engine sees, and therefore the subset streaming lint mirrors.
    recorded: bool = True

    kind = "vfd_op"


#: Event kinds the bus must deliver under every backpressure policy.
#: Failure events are critical: a lossy dynamics subscriber must still see
#: the complete task/stage/failure timeline, especially under faults —
#: going lossy exactly when the run degrades would blind the observer.
CRITICAL_KINDS = frozenset(
    {"task_started", "task_finished", "task_failed", "task_retried",
     "task_ready", "task_stolen", "task_speculated",
     "node_failed", "stage_started", "stage_finished"}
)
