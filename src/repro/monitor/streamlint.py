"""Streaming lint: bounded-state DY2xx/DY3xx checks evaluated mid-run.

The batch engine (:mod:`repro.lint`) sees finished profiles; this module
sees the live :class:`~repro.monitor.events.VfdOp` stream and raises
alerts *while the workflow is still running*.  It mirrors the batch
semantics exactly where that is possible with bounded state:

- **DY201 / DY202 / DY203** (RAW / WAR / WAW races) — per raw-touched
  ``(file, dataset, task)`` triple it keeps first-access times, op
  counts, and a *capped* merged extent list; the happens-before oracle is
  an online mirror of :func:`repro.analyzer.ordering.dependency_dag`
  over the same recorded-operation subset the post-hoc engine would see.
- **DY302** (invalid extents) — stateless per-record field validation.
- **DY501 / DY502 / DY503** (dependency-only happens-before races) —
  opt-in via ``races=True``: the same per-object state, joined under the
  *dependency-only* oracle instead of the observed one, mirrors the
  batch :mod:`repro.lint.race` convictions.  Streaming alerts carry no
  reorder witness (witnesses need the whole DAG; only batch ships them)
  and DY504/DY505 are not streamed (both are inherently whole-run) —
  but since fingerprints cover code + subject + tasks, a streamed DY5xx
  alert hashes identically to its batch conviction.

Alerts carry :class:`~repro.lint.findings.Finding` objects, so their
fingerprints are computed by the very same code as ``dayu-lint`` —
a mid-run alert and the batch finding for the same hazard hash
identically (fingerprints cover code + subject + tasks, which streaming
knows exactly; only message wording and — when the extent cap engaged —
severity may differ).

One subtlety keeps streaming sound: a happens-before edge can appear
*retroactively* (a later write to a file lowers the producer side's
first-write time), so a pair that looks unordered mid-run may be ordered
by the end of the trace.  :meth:`StreamLint.finalize` therefore re-runs
the exact batch pair algorithm against the final online state: confirmed
findings are returned, and mid-run alerts whose hazard did not survive
are marked ``retracted``.  The invariant tests rely on — finalized
streaming findings ⊆ batch findings, fingerprint-for-fingerprint — holds
on every bundled workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.lint.context import extents_overlap, merge_extents
from repro.lint.findings import Finding, Severity
from repro.mapper.stats import FILE_METADATA_OBJECT
from repro.monitor.events import MonitorEvent, VfdOp
from repro.vfd.base import IoClass

__all__ = ["StreamAlert", "StreamLint"]


@dataclass
class StreamAlert:
    """One mid-run lint alert: a finding plus when it fired."""

    finding: Finding
    time: float
    #: Set by :meth:`StreamLint.finalize` when a later happens-before
    #: edge ordered the pair after all (the hazard did not survive).
    retracted: bool = False


@dataclass
class _OrderingRow:
    """Mirror of one joined-stats row: (task, file, object) first touch."""

    first_start: float
    has_read: bool = False
    has_write: bool = False


@dataclass
class _RawAccess:
    """One task's raw-data interaction with one object (bounded state)."""

    task: str
    raw_reads: int = 0
    raw_writes: int = 0
    first_raw_read: Optional[float] = None
    first_raw_write: Optional[float] = None
    write_extents: List[Tuple[int, int]] = field(default_factory=list)
    #: Tracked only in ``races`` mode (DY502 overlap discrimination).
    read_extents: List[Tuple[int, int]] = field(default_factory=list)
    #: Object-scoped metadata ops, tracked only in ``races`` mode (DY503).
    meta_reads: int = 0
    meta_writes: int = 0
    #: False once the extent cap collapsed the list to a bounding interval.
    extents_exact: bool = True


class StreamLint:
    """Online evaluator for the bounded-state lint subset (module doc).

    ``races=True`` opts in the streaming DY501/502/503 mirrors (the
    DY5xx family is opt-in batch-side too); DY504/DY505 are whole-run
    analyses and never stream.
    """

    def __init__(
        self,
        max_extents_per_access: int = 64,
        on_alert: Optional[Callable[[StreamAlert], None]] = None,
        races: bool = False,
    ) -> None:
        if max_extents_per_access < 1:
            raise ValueError("max_extents_per_access must be >= 1")
        self.max_extents = max_extents_per_access
        self.on_alert = on_alert
        self.races = races
        #: Alerts in emission order (including any later retracted).
        self.alerts: List[StreamAlert] = []
        # (task, file, object) -> ordering row over *recorded* ops.
        self._rows: Dict[Tuple[str, str, str], _OrderingRow] = {}
        # (file, object) -> task -> raw access, tasks in first-touch order.
        self._objects: Dict[Tuple[str, str], Dict[str, _RawAccess]] = {}
        self._fingerprints: Set[str] = set()
        self._finalized: Optional[List[Finding]] = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def handle(self, event: MonitorEvent) -> None:
        """Bus handler; subscribe with the lossless (block) policy."""
        if event.kind != "vfd_op":
            return
        op: VfdOp = event  # type: ignore[assignment]
        if not op.recorded:
            # The post-hoc engine only ever sees recorded operations;
            # mirroring that subset is what keeps fingerprints aligned.
            return
        self._finalized = None
        task = op.task or ""
        self._check_integrity(op, task)
        self._observe_ordering(op, task)
        self._observe_raw(op, task)

    def _check_integrity(self, op: VfdOp, task: str) -> None:
        problems = []
        if op.nbytes < 0:
            problems.append(f"nbytes={op.nbytes}")
        if op.offset < 0:
            problems.append(f"offset={op.offset}")
        if op.duration < 0:
            problems.append(f"duration={op.duration}")
        if not problems:
            return
        finding = Finding(
            code="DY302", rule="invalid-extent", severity=Severity.ERROR,
            subject=f"{op.file}:{op.data_object or FILE_METADATA_OBJECT}",
            tasks=(task,),
            message=(f"live I/O operation ({op.op} of {op.file}) carries "
                     f"invalid fields: {', '.join(problems)}"),
            evidence={"problems": problems},
        )
        self._emit(finding, op.time)

    def _observe_ordering(self, op: VfdOp, task: str) -> None:
        key = (task, op.file, op.data_object or FILE_METADATA_OBJECT)
        row = self._rows.get(key)
        if row is None:
            row = self._rows[key] = _OrderingRow(first_start=op.start)
        elif op.start < row.first_start:
            row.first_start = op.start
        if op.op == "read":
            row.has_read = True
        else:
            row.has_write = True

    def _observe_raw(self, op: VfdOp, task: str) -> None:
        obj = op.data_object
        if obj is None or obj == FILE_METADATA_OBJECT:
            return
        if op.io_class is IoClass.METADATA:
            if not self.races:
                return
            # Races mode also watches object-scoped metadata traffic:
            # a resize/delete shows up as metadata writes tagged with
            # the object — the DY503 subject.
            accesses = self._objects.setdefault((op.file, obj), {})
            acc = accesses.get(task)
            if acc is None:
                acc = accesses[task] = _RawAccess(task=task)
            if op.op == "read":
                fresh_kind = acc.meta_reads == 0
                acc.meta_reads += 1
            else:
                fresh_kind = acc.meta_writes == 0
                acc.meta_writes += 1
            if fresh_kind and len(accesses) > 1:
                self._scan_object(op, accesses)
            return
        accesses = self._objects.setdefault((op.file, obj), {})
        acc = accesses.get(task)
        if acc is None:
            acc = accesses[task] = _RawAccess(task=task)
        fresh_kind = False
        if op.op == "read":
            fresh_kind = acc.raw_reads == 0
            acc.raw_reads += 1
            if acc.first_raw_read is None or op.start < acc.first_raw_read:
                acc.first_raw_read = op.start
            if self.races and op.nbytes > 0:
                acc.read_extents = merge_extents(
                    acc.read_extents + [(op.offset, op.offset + op.nbytes)])
                if len(acc.read_extents) > self.max_extents:
                    acc.read_extents = [(acc.read_extents[0][0],
                                         acc.read_extents[-1][1])]
                    acc.extents_exact = False
        else:
            fresh_kind = acc.raw_writes == 0
            acc.raw_writes += 1
            if acc.first_raw_write is None or op.start < acc.first_raw_write:
                acc.first_raw_write = op.start
            if op.nbytes > 0:
                acc.write_extents = merge_extents(
                    acc.write_extents + [(op.offset, op.offset + op.nbytes)])
                if len(acc.write_extents) > self.max_extents:
                    acc.write_extents = [(acc.write_extents[0][0],
                                          acc.write_extents[-1][1])]
                    acc.extents_exact = False
        if fresh_kind and len(accesses) > 1:
            # A new (task, kind) touch is the only transition that can
            # create a hazard pair — re-scan just this object.
            self._scan_object(op, accesses)

    def _scan_object(self, op: VfdOp, accesses: Dict[str, _RawAccess]) -> None:
        ordering = self._build_ordering()
        for finding in self._object_findings(
                op.file, op.data_object, accesses, ordering):
            self._emit(finding, op.time)

    def _emit(self, finding: Finding, time: float) -> None:
        if finding.fingerprint in self._fingerprints:
            return
        self._fingerprints.add(finding.fingerprint)
        alert = StreamAlert(finding=finding, time=time)
        self.alerts.append(alert)
        if self.on_alert is not None:
            self.on_alert(alert)

    # ------------------------------------------------------------------
    # Ordering mirror
    # ------------------------------------------------------------------
    def _build_ordering(self) -> nx.DiGraph:
        """Rebuild the dependency DAG exactly as
        :func:`repro.analyzer.ordering.dependency_dag` would from the
        joined stats of the recorded operations seen so far."""
        writes: Dict[str, Dict[str, float]] = {}
        reads: Dict[str, Dict[str, float]] = {}
        for (task, file, _obj), row in self._rows.items():
            if row.has_write:
                per = writes.setdefault(file, {})
                t = per.get(task)
                per[task] = row.first_start if t is None else min(
                    t, row.first_start)
            if row.has_read:
                per = reads.setdefault(file, {})
                t = per.get(task)
                per[task] = row.first_start if t is None else min(
                    t, row.first_start)
        g = nx.DiGraph()
        for file, readers in reads.items():
            for reader, read_time in readers.items():
                for writer, write_time in writes.get(file, {}).items():
                    if writer != reader and write_time < read_time:
                        g.add_edge(writer, reader, file=file)
        return g

    @staticmethod
    def _ordered(dag: nx.DiGraph, a: str, b: str) -> bool:
        if a in dag and b in nx.descendants(dag, a):
            return True
        return b in dag and a in nx.descendants(dag, b)

    # ------------------------------------------------------------------
    # Hazard pair scan (the batch algorithm, over online state)
    # ------------------------------------------------------------------
    def _object_findings(
        self,
        file: str,
        obj: str,
        accesses: Dict[str, _RawAccess],
        ordering: nx.DiGraph,
    ) -> List[Finding]:
        accs = list(accesses.values())
        out: List[Finding] = []
        # Reader/writer races, classified RAW vs WAR exactly as batch.
        writers = [a for a in accs if a.raw_writes > 0]
        readers = [a for a in accs if a.raw_reads > 0]
        seen: Set[Tuple[str, str]] = set()
        for w_acc in writers:
            for r_acc in readers:
                if w_acc.task == r_acc.task:
                    continue
                pair = tuple(sorted((w_acc.task, r_acc.task)))
                if pair in seen or self._ordered(
                        ordering, w_acc.task, r_acc.task):
                    continue
                seen.add(pair)
                w = w_acc.first_raw_write
                r = r_acc.first_raw_read
                raw = w is None or r is None or w <= r
                if raw:
                    out.append(Finding(
                        code="DY201", rule="read-after-write-race",
                        severity=Severity.ERROR, subject=f"{file}:{obj}",
                        tasks=pair,
                        message=(
                            f"{r_acc.task} reads {obj} in {file} after "
                            f"{w_acc.task} wrote it, but no dependency path "
                            "orders them — a reorder can starve the read "
                            "of its input"),
                        evidence={"writer": w_acc.task,
                                  "reader": r_acc.task},
                    ))
                else:
                    out.append(Finding(
                        code="DY202", rule="write-after-read-race",
                        severity=Severity.ERROR, subject=f"{file}:{obj}",
                        tasks=pair,
                        message=(
                            f"{w_acc.task} overwrites {obj} in {file} after "
                            f"{r_acc.task} read it, but no dependency path "
                            "orders them — a reorder can clobber the data "
                            "before it is consumed"),
                        evidence={"writer": w_acc.task,
                                  "reader": r_acc.task},
                    ))
        # Unordered double writes.
        seen = set()
        for i, a in enumerate(writers):
            for b in writers[i + 1:]:
                if a.task == b.task:
                    continue
                pair = tuple(sorted((a.task, b.task)))
                if pair in seen or self._ordered(ordering, a.task, b.task):
                    continue
                seen.add(pair)
                overlap = extents_overlap(a.write_extents, b.write_extents)
                exact = a.extents_exact and b.extents_exact
                if overlap is None:
                    severity = Severity.WARNING
                    detail = ("their byte extents are disjoint (collective "
                              "partial-write pattern), but metadata updates "
                              "still race")
                else:
                    severity = Severity.ERROR
                    lo, hi = overlap
                    gran = ("bytes" if exact
                            else "bounded extents (approximate)")
                    detail = (f"their writes overlap at {gran} "
                              f"[{lo}, {hi}) — last scheduled writer wins")
                out.append(Finding(
                    code="DY203", rule="unordered-double-write",
                    severity=severity, subject=f"{file}:{obj}", tasks=pair,
                    message=(
                        f"{a.task} and {b.task} both write {obj} in {file} "
                        f"with no dependency path between them; {detail}"),
                    evidence={
                        "overlap": list(overlap) if overlap else None,
                        "extent_precision": "byte" if exact else "bounded",
                    },
                ))
        if self.races:
            out.extend(self._race_findings(file, obj, accs, ordering))
        return out

    # ------------------------------------------------------------------
    # Streaming DY5xx mirrors (races mode)
    # ------------------------------------------------------------------
    def _race_overlap(self, a_ext, b_ext, exact):
        overlap = extents_overlap(a_ext, b_ext)
        if overlap is None:
            severity = Severity.WARNING
            detail = ("their byte extents are provably disjoint "
                      "(collective partial-access pattern), but metadata "
                      "updates still race" if exact else
                      "their bounded extents are disjoint (exact extents "
                      "unavailable)")
            return severity, detail, None
        lo, hi = overlap
        gran = "bytes" if exact else "bytes (approximate)"
        return (Severity.ERROR,
                f"their accesses overlap at {gran} [{lo}, {hi})", overlap)

    def _race_findings(
        self,
        file: str,
        obj: str,
        accs: List[_RawAccess],
        ordering: nx.DiGraph,
    ) -> List[Finding]:
        """Streaming DY501/502/503: the batch pair scan, minus witnesses.

        The ordering oracle here is the same dependency-DAG mirror the
        DY2xx scan uses — which *is* the batch race context's
        dependency-only relation, so a pair unordered here is unordered
        there and the fingerprints (code + subject + tasks) coincide.
        """
        accs = sorted(accs, key=lambda a: a.task)
        subject = f"{file}:{obj}"
        out: List[Finding] = []
        writers = [a for a in accs if a.raw_writes > 0]
        readers = [a for a in accs if a.raw_reads > 0]
        seen: Set[Tuple[str, str]] = set()
        for i, a in enumerate(writers):  # DY501: unordered double write
            for b in writers[i + 1:]:
                pair = tuple(sorted((a.task, b.task)))
                if pair in seen or self._ordered(ordering, a.task, b.task):
                    continue
                seen.add(pair)
                exact = a.extents_exact and b.extents_exact
                severity, detail, overlap = self._race_overlap(
                    a.write_extents, b.write_extents, exact)
                out.append(Finding(
                    code="DY501", rule="hb-write-write-race",
                    severity=severity, subject=subject, tasks=pair,
                    message=(
                        f"{a.task} and {b.task} both write {obj} in {file} "
                        "with no dependency-only happens-before path; "
                        f"{detail}"),
                    evidence={"overlap": list(overlap) if overlap else None,
                              "units": "bytes", "mode": "stream",
                              "witness": None},
                ))
        seen = set()
        for w_acc in writers:  # DY502: unordered read/write
            for r_acc in readers:
                if w_acc.task == r_acc.task:
                    continue
                pair = tuple(sorted((w_acc.task, r_acc.task)))
                if pair in seen or self._ordered(
                        ordering, w_acc.task, r_acc.task):
                    continue
                seen.add(pair)
                exact = w_acc.extents_exact and r_acc.extents_exact
                severity, detail, overlap = self._race_overlap(
                    w_acc.write_extents, r_acc.read_extents, exact)
                out.append(Finding(
                    code="DY502", rule="hb-read-write-race",
                    severity=severity, subject=subject, tasks=pair,
                    message=(
                        f"{r_acc.task} reads {obj} in {file} while "
                        f"{w_acc.task} writes it, with no dependency-only "
                        f"happens-before path; {detail}"),
                    evidence={"overlap": list(overlap) if overlap else None,
                              "units": "bytes", "mode": "stream",
                              "witness": None},
                ))
        mutators = [a for a in accs if a.meta_writes and not a.raw_writes]
        seen = set()
        for m in mutators:  # DY503: metadata mutation vs any toucher
            for t in accs:
                if t.task == m.task:
                    continue
                if not (t.raw_reads or t.raw_writes or t.meta_reads
                        or t.meta_writes):
                    continue
                pair = tuple(sorted((m.task, t.task)))
                if pair in seen or self._ordered(ordering, m.task, t.task):
                    continue
                seen.add(pair)
                how = "reads" if t.raw_reads or t.meta_reads else "writes"
                out.append(Finding(
                    code="DY503", rule="hb-metadata-race",
                    severity=Severity.ERROR, subject=subject, tasks=pair,
                    message=(
                        f"{m.task} mutates the metadata of {obj} in {file} "
                        f"(resize/delete/rename) while {t.task} {how} it, "
                        "with no dependency-only happens-before path — the "
                        f"shape or existence changes under {t.task}'s feet"),
                    evidence={"mutator": m.task, "toucher": t.task,
                              "meta_writes": m.meta_writes,
                              "mode": "stream", "witness": None},
                ))
        return out

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finalize(self) -> List[Finding]:
        """Re-validate against the complete trace and return the confirmed
        findings (deterministic batch order); mid-run alerts whose pair
        gained a happens-before edge are marked ``retracted``."""
        if self._finalized is not None:
            return list(self._finalized)
        ordering = self._build_ordering()
        confirmed: List[Finding] = []
        prints: Set[str] = set()
        for (file, obj) in sorted(self._objects):
            for finding in self._object_findings(
                    file, obj, self._objects[(file, obj)], ordering):
                if finding.fingerprint not in prints:
                    prints.add(finding.fingerprint)
                    confirmed.append(finding)
        # DY302 alerts are unconditional: field validity never changes.
        for alert in self.alerts:
            if alert.finding.code == "DY302":
                if alert.finding.fingerprint not in prints:
                    prints.add(alert.finding.fingerprint)
                    confirmed.append(alert.finding)
                alert.retracted = False
            else:
                alert.retracted = alert.finding.fingerprint not in prints
        confirmed.sort(key=lambda f: f.sort_key())
        self._finalized = confirmed
        return list(confirmed)

    @property
    def findings(self) -> List[Finding]:
        """Confirmed findings (finalizes on first access)."""
        return self.finalize()

    def stats(self) -> Dict[str, object]:
        return {
            "alerts": len(self.alerts),
            "retracted": sum(1 for a in self.alerts if a.retracted),
            "tracked_objects": len(self._objects),
            "tracked_rows": len(self._rows),
        }
