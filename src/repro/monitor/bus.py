"""The bounded in-process event bus.

Publishers (tracers, mapper, runner) call :meth:`EventBus.publish`; each
subscriber owns a bounded FIFO queue drained in batches — the model of an
asynchronous consumer that wakes when its buffer fills or at task
boundaries, which is why subscriber work is *charged* to the simulated
clock (:meth:`~repro.simclock.SimClock.charge` — accounted but off the
critical path) rather than advancing it.  With no monitor attached,
nothing is published and the ``dayu.monitor.subscriber`` account stays at
exactly zero.

Backpressure is per subscriber:

- **block** — a full queue forces an inline drain; nothing is ever lost
  (the publisher "waits for" the consumer).  Counted in
  ``blocked_flushes``.
- **drop** — a full queue drops the *new* droppable event and counts it.
- **sample** — only every N-th droppable event is admitted; the rest are
  counted as ``sampled_out``.  Admitted events block rather than drop.

Lifecycle events (:data:`~repro.monitor.events.CRITICAL_KINDS`) bypass
drop/sample filtering under every policy, and their arrival drains every
queue — so a lossy subscriber still observes complete, ordered task
boundaries and a mid-run consumer is never more than one task behind.

Accounting always reconciles exactly, per subscriber::

    offered == delivered + dropped + sampled_out + queued
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.monitor.events import CRITICAL_KINDS, MonitorEvent
from repro.simclock import SimClock

__all__ = ["MONITOR_ACCOUNT", "Backpressure", "Subscription", "EventBus"]

#: Clock account subscriber (consumer-side) work is charged to.  Kept
#: separate from the tracer accounts so the Figure 9/10 overhead numbers
#: still isolate pure tracing cost.
MONITOR_ACCOUNT = "dayu.monitor.subscriber"


class Backpressure(str, enum.Enum):
    """What a subscription does when its bounded queue is full."""

    BLOCK = "block"
    DROP = "drop"
    SAMPLE = "sample"


class Subscription:
    """One subscriber's bounded queue, policy, and exact accounting."""

    def __init__(
        self,
        name: str,
        handler: Callable[[MonitorEvent], None],
        policy: Backpressure = Backpressure.BLOCK,
        capacity: int = 256,
        sample_every: int = 1,
        clock: Optional[SimClock] = None,
        cost_per_event: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if policy is Backpressure.SAMPLE and sample_every == 1:
            policy = Backpressure.BLOCK  # 1-in-1 sampling is just blocking
        self.name = name
        self.handler = handler
        self.policy = policy
        self.capacity = capacity
        self.sample_every = sample_every
        self._clock = clock
        self._cost = cost_per_event
        self._queue: deque = deque()
        self._droppable_seen = 0
        # -- exact accounting ------------------------------------------
        self.offered = 0
        self.delivered = 0
        self.dropped = 0
        self.sampled_out = 0
        self.blocked_flushes = 0

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._queue)

    def offer(self, event: MonitorEvent,
              critical: Optional[bool] = None) -> None:
        """Admit one event under this subscription's policy.

        ``critical`` lets :meth:`EventBus.publish` pass the (per-event
        constant) criticality it already resolved instead of re-testing
        it once per subscription.
        """
        self.offered += 1
        if critical is None:
            critical = event.kind in CRITICAL_KINDS
        if not critical:
            if self.policy is Backpressure.SAMPLE:
                self._droppable_seen += 1
                if (self._droppable_seen - 1) % self.sample_every:
                    self.sampled_out += 1
                    return
            if len(self._queue) >= self.capacity:
                if self.policy is Backpressure.DROP:
                    self.dropped += 1
                    return
                self.blocked_flushes += 1
                self.pump()
        elif len(self._queue) >= self.capacity:
            # Critical events never drop: force a drain to make room.
            self.blocked_flushes += 1
            self.pump()
        self._queue.append(event)

    def pump(self) -> int:
        """Drain the queue through the handler; returns events delivered."""
        n = 0
        while self._queue:
            event = self._queue.popleft()
            self.handler(event)
            self.delivered += 1
            n += 1
        if n and self._clock is not None and self._cost > 0.0:
            self._clock.charge(MONITOR_ACCOUNT, self._cost * n)
        return n

    def reconciles(self) -> bool:
        """True when the accounting identity holds exactly."""
        return self.offered == (
            self.delivered + self.dropped + self.sampled_out + self.queued
        )

    def stats(self) -> Dict[str, object]:
        return {
            "policy": self.policy.value,
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "queued": self.queued,
            "blocked_flushes": self.blocked_flushes,
            "reconciles": self.reconciles(),
        }


class EventBus:
    """Typed pub/sub with bounded per-subscriber queues (see module doc)."""

    def __init__(self, clock: SimClock, cost_per_event: float = 5.0e-8) -> None:
        self.clock = clock
        self.cost_per_event = cost_per_event
        self._subs: List[Subscription] = []
        self.sequence = 0
        #: Events published, per event kind.
        self.published: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        handler: Callable[[MonitorEvent], None],
        policy: Backpressure = Backpressure.BLOCK,
        capacity: int = 256,
        sample_every: int = 1,
    ) -> Subscription:
        if any(s.name == name for s in self._subs):
            raise ValueError(f"subscriber {name!r} already registered")
        sub = Subscription(
            name, handler, policy=policy, capacity=capacity,
            sample_every=sample_every, clock=self.clock,
            cost_per_event=self.cost_per_event,
        )
        self._subs.append(sub)
        return sub

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subs)

    def subscription(self, name: str) -> Subscription:
        for s in self._subs:
            if s.name == name:
                return s
        raise KeyError(f"no subscriber named {name!r}")

    # ------------------------------------------------------------------
    def publish(self, event: MonitorEvent) -> None:
        """Offer one event to every subscription (in subscription order)."""
        self.sequence += 1
        kind = event.kind
        self.published[kind] = self.published.get(kind, 0) + 1
        if kind in CRITICAL_KINDS:
            for sub in self._subs:
                sub.offer(event, True)
                # Task/stage boundaries drain every queue: consumers are
                # at most one task behind the run at all times.
                sub.pump()
        else:
            for sub in self._subs:
                sub.offer(event, False)

    def flush(self) -> int:
        """Drain every subscription; returns total events delivered."""
        return sum(sub.pump() for sub in self._subs)

    @property
    def total_published(self) -> int:
        return sum(self.published.values())

    def reconciles(self) -> bool:
        """Every subscription's accounting identity holds, and every
        subscription was offered every published event."""
        return all(
            s.reconciles() and s.offered == self.sequence for s in self._subs
        )

    def stats(self) -> Dict[str, object]:
        return {
            "published": dict(sorted(self.published.items())),
            "total_published": self.total_published,
            "subscribers": {s.name: s.stats() for s in self._subs},
            "reconciles": self.reconciles(),
        }
