"""Metrics primitives and exposition formats.

A tiny, dependency-free metrics layer: :class:`Counter`, :class:`Gauge`,
and :class:`Histogram` instruments registered in a
:class:`MetricsRegistry`, rendered either as a JSON snapshot or as the
Prometheus text exposition format (version 0.0.4: ``# HELP`` / ``# TYPE``
headers, ``name{label="value"} sample`` lines, cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` series for histograms).

Instruments are label-aware: ``counter.labels(task="t1").inc()`` creates
one timeseries per label-value combination.  Rendering is deterministic —
metrics in registration order, label sets sorted — so exported files are
stable across identical runs.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram buckets (seconds-ish scale, powers of four).
DEFAULT_BUCKETS = (1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3,
                   4.096e-3, 1.6384e-2, 6.5536e-2, 0.262144, 1.048576)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared naming/labeling machinery for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[LabelKey, object] = {}

    def _resolve(self, labels: Dict[str, str]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}")
        return _label_key(labels)

    def _bind(self, key: LabelKey):
        raise NotImplementedError

    def labels(self, **labels: str):
        """A child with its label key pre-resolved, prometheus-client
        style — per-event code should hold one and skip the kwargs/sort
        cost of label resolution on every update."""
        key = self._resolve(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._bind(key)
        return child


class _BoundCounter:
    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[LabelKey, float], key: LabelKey) -> None:
        self._values = values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._values[self._key] = self._values.get(self._key, 0.0) + amount


class _BoundGauge:
    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[LabelKey, float], key: LabelKey) -> None:
        self._values = values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._values[self._key] = self._values.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _BoundHistogram:
    __slots__ = ("_series", "_bounds")

    def __init__(self, series: "_HistogramSeries",
                 bounds: Sequence[float]) -> None:
        self._series = series
        self._bounds = bounds

    def observe(self, value: float) -> None:
        series = self._series
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                series.bucket_counts[i] += 1
                break
        series.total += value
        series.count += 1


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._resolve(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._resolve(labels), 0.0)

    def _bind(self, key: LabelKey) -> _BoundCounter:
        return _BoundCounter(self._values, key)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        for key in sorted(self._values):
            lines.append(f"{self.name}{_render_labels(key)} "
                         f"{_format_value(self._values[key])}")
        return lines

    def snapshot(self) -> dict:
        return {"type": "counter", "help": self.help,
                "values": [{"labels": dict(k), "value": v}
                           for k, v in sorted(self._values.items())]}


class Gauge(_Instrument):
    """Value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[self._resolve(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._resolve(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(self._resolve(labels), 0.0)

    def _bind(self, key: LabelKey) -> _BoundGauge:
        return _BoundGauge(self._values, key)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} gauge"]
        for key in sorted(self._values):
            lines.append(f"{self.name}{_render_labels(key)} "
                         f"{_format_value(self._values[key])}")
        return lines

    def snapshot(self) -> dict:
        return {"type": "gauge", "help": self.help,
                "values": [{"labels": dict(k), "value": v}
                           for k, v in sorted(self._values.items())]}


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._resolve(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                series.bucket_counts[i] += 1
                break
        series.total += value
        series.count += 1

    def count(self, **labels: str) -> int:
        series = self._series.get(self._resolve(labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(self._resolve(labels))
        return series.total if series else 0.0

    def _bind(self, key: LabelKey) -> _BoundHistogram:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        return _BoundHistogram(series, self.bounds)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for bound, n in zip(self.bounds, series.bucket_counts):
                cumulative += n
                le = _render_labels(key, f'le="{_format_value(bound)}"')
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            le = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{le} {series.count}")
            labels = _render_labels(key)
            lines.append(f"{self.name}_sum{labels} "
                         f"{_format_value(series.total)}")
            lines.append(f"{self.name}_count{labels} {series.count}")
        return lines

    def snapshot(self) -> dict:
        return {
            "type": "histogram", "help": self.help, "buckets": self.bounds,
            "values": [
                {"labels": dict(k),
                 "bucket_counts": list(s.bucket_counts),
                 "sum": s.total, "count": s.count}
                for k, s in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Named instruments, rendered together (registration order)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        if instrument.name in self._instruments:
            raise ValueError(f"metric {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, label_names))  # type: ignore[return-value]

    def gauge(self, name: str, help: str,
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, label_names))  # type: ignore[return-value]

    def histogram(self, name: str, help: str,
                  label_names: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(
            Histogram(name, help, label_names, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for instrument in self._instruments.values():
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        return {name: inst.snapshot()
                for name, inst in self._instruments.items()}

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)
