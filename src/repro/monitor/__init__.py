"""``repro.monitor`` — live workflow observability (the *dynamics* axis).

Everything else in this repository is post-hoc: tracers write
:class:`~repro.mapper.mapper.TaskProfile` files and ``dayu-analyze`` /
``dayu-lint`` read them back.  This package watches the same signals
*while the workflow runs*:

- :mod:`~repro.monitor.events` — the typed event vocabulary the VOL/VFD
  tracers, the :class:`~repro.mapper.mapper.DataSemanticMapper`, and the
  :class:`~repro.workflow.runner.WorkflowRunner` publish.
- :mod:`~repro.monitor.bus` — a bounded in-process pub/sub bus with
  pluggable backpressure (block / drop-with-accounting / 1-in-N
  sampling) and per-subscriber drop counters that always reconcile.
- :mod:`~repro.monitor.aggregate` — the online aggregator: feeds
  finished tasks into the incremental
  :class:`~repro.analyzer.graphs.GraphBuilder` (a live FTG/SDG snapshot
  at any sim-clock instant, byte-identical to the post-hoc build at
  completion) and maintains per-interval bytes/ops/latency series keyed
  by ``(task, dataset)`` — the paper's temporal axis.
- :mod:`~repro.monitor.streamlint` — streaming lint: a bounded-state
  subset of the DY2xx/DY3xx rules evaluated online, raising alerts
  mid-run with the same fingerprints as the batch engine.
- :mod:`~repro.monitor.export` — counters/gauges/histograms rendered as
  Prometheus text exposition or JSON snapshots.
- :mod:`~repro.monitor.monitor` — :class:`WorkflowMonitor`, the facade
  wiring all of the above onto one bus; ``dayu-monitor`` is its CLI.
"""

from repro.monitor.aggregate import DynamicsWindows, LiveAggregator, WindowStats
from repro.monitor.bus import (
    MONITOR_ACCOUNT,
    Backpressure,
    EventBus,
    Subscription,
)
from repro.monitor.events import (
    CRITICAL_KINDS,
    DatasetAccess,
    DatasetClosed,
    DatasetOpened,
    FileClosed,
    FileOpened,
    MonitorEvent,
    StageFinished,
    StageStarted,
    TaskFinished,
    TaskReady,
    TaskSpeculated,
    TaskStarted,
    TaskStolen,
    VfdOp,
)
from repro.monitor.export import Counter, Gauge, Histogram, MetricsRegistry
from repro.monitor.monitor import MonitorConfig, WorkflowMonitor
from repro.monitor.streamlint import StreamAlert, StreamLint

__all__ = [
    "MONITOR_ACCOUNT",
    "Backpressure",
    "EventBus",
    "Subscription",
    "CRITICAL_KINDS",
    "MonitorEvent",
    "TaskStarted",
    "TaskFinished",
    "TaskReady",
    "TaskStolen",
    "TaskSpeculated",
    "StageStarted",
    "StageFinished",
    "FileOpened",
    "FileClosed",
    "DatasetOpened",
    "DatasetClosed",
    "DatasetAccess",
    "VfdOp",
    "LiveAggregator",
    "DynamicsWindows",
    "WindowStats",
    "StreamLint",
    "StreamAlert",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MonitorConfig",
    "WorkflowMonitor",
]
