"""The classic-NetCDF-like file object and its variables.

Life cycle (matching netCDF's define/data mode split):

1. create in **define mode**: add dimensions, variables, attributes;
2. ``enddef()`` computes the data layout — fixed variables packed
   back-to-back after the header, record variables interleaved per
   record — and writes the header (metadata I/O);
3. **data mode**: variable reads/writes translate to raw I/O with the
   layouts' characteristic shapes — one contiguous run per fixed-variable
   access, one operation *per record* for record variables.

The record-append path rewrites the header's ``numrecs`` in place (a small
metadata write), reproducing netCDF's well-known header-update chatter.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hdf5.datatype import Datatype
from repro.netcdf.format import (
    HEADER_ALIGN,
    UNLIMITED,
    NcAtt,
    NcDim,
    NcFormatError,
    NcHeader,
    NcVarMeta,
)
from repro.posix.simfs import SimFS
from repro.vfd.base import IoClass, VirtualFileDriver
from repro.vfd.sec2 import Sec2VFD

__all__ = ["NcFile", "NcVariable"]


def _encode_att_value(value) -> Tuple[str, bytes]:
    if isinstance(value, str):
        return "text", value.encode("utf-8")
    if isinstance(value, (int, np.integer)):
        return "i8", np.int64(value).tobytes()
    if isinstance(value, (float, np.floating)):
        return "f8", np.float64(value).tobytes()
    if isinstance(value, np.ndarray) and value.ndim == 1:
        dt = Datatype.of(value.dtype)
        return dt.code, np.ascontiguousarray(value).tobytes()
    raise NcFormatError(f"unsupported attribute value {value!r}")


def _decode_att_value(dtype: str, payload: bytes):
    if dtype == "text":
        return payload.decode("utf-8")
    arr = np.frombuffer(payload, dtype=Datatype(dtype).numpy_dtype)
    if arr.size == 1:
        return arr[0].item()
    return arr.copy()


class NcVariable:
    """One variable; obtained from :meth:`NcFile.variable`."""

    def __init__(self, file: "NcFile", meta: NcVarMeta) -> None:
        self._file = file
        self._meta = meta

    @property
    def name(self) -> str:
        return self._meta.name

    @property
    def dtype(self) -> Datatype:
        return Datatype(self._meta.dtype)

    @property
    def dimensions(self) -> Tuple[str, ...]:
        return tuple(self._file._header.dims[d].name for d in self._meta.dim_ids)

    @property
    def is_record(self) -> bool:
        return self._file._header.is_record_var(self._meta)

    @property
    def shape(self) -> Tuple[int, ...]:
        dims = []
        for d in self._meta.dim_ids:
            dim = self._file._header.dims[d]
            dims.append(self._file._header.numrecs if dim.is_record else dim.length)
        return tuple(dims)

    @property
    def _slice_elems(self) -> int:
        """Elements per record (record vars) or total elements (fixed)."""
        n = 1
        for d in self._meta.dim_ids:
            dim = self._file._header.dims[d]
            if not dim.is_record:
                n *= dim.length
        return n

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def set_att(self, name: str, value) -> None:
        self._file._require_define_mode("set a variable attribute")
        dtype, payload = _encode_att_value(value)
        self._meta.atts = [a for a in self._meta.atts if a.name != name]
        self._meta.atts.append(NcAtt(name, dtype, payload))

    def get_att(self, name: str):
        for a in self._meta.atts:
            if a.name == name:
                return _decode_att_value(a.dtype, a.payload)
        raise KeyError(f"variable {self.name!r} has no attribute {name!r}")

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(self, data) -> None:
        """Write the whole variable (fixed) or all records (record var)."""
        self._file._require_data_mode("write data")
        dt = self.dtype
        arr = np.ascontiguousarray(np.asarray(data).astype(dt.numpy_dtype))
        if not self.is_record:
            expected = self._slice_elems
            if arr.size != expected:
                raise NcFormatError(
                    f"{self.name}: got {arr.size} elements, expected {expected}")
            self._file._scoped(self.name, lambda: self._file.vfd.write(
                self._meta.begin, arr.tobytes(), IoClass.RAW))
            return
        # Record variable: one write per record slot (the interleaving).
        per_rec = self._slice_elems
        if arr.size % per_rec:
            raise NcFormatError(
                f"{self.name}: size {arr.size} is not a multiple of the "
                f"record slice ({per_rec} elements)")
        nrec = arr.size // per_rec
        flat = arr.reshape(-1)
        for r in range(nrec):
            self.write_record(r, flat[r * per_rec:(r + 1) * per_rec])

    def write_record(self, rec: int, data) -> None:
        """Write one record of a record variable (grows ``numrecs``)."""
        self._file._require_data_mode("write a record")
        if not self.is_record:
            raise NcFormatError(f"{self.name} is not a record variable")
        dt = self.dtype
        arr = np.ascontiguousarray(np.asarray(data).astype(dt.numpy_dtype))
        if arr.size != self._slice_elems:
            raise NcFormatError(
                f"{self.name}: record needs {self._slice_elems} elements, "
                f"got {arr.size}")
        addr = self._file._record_addr(self._meta, rec)
        self._file._scoped(self.name, lambda: self._file.vfd.write(
            addr, arr.tobytes(), IoClass.RAW))
        if rec >= self._file._header.numrecs:
            self._file._grow_numrecs(rec + 1)

    def read(self) -> np.ndarray:
        """Read the whole variable."""
        self._file._require_data_mode("read data")
        dt = self.dtype
        if not self.is_record:
            raw = self._file._scoped(self.name, lambda: self._file.vfd.read(
                self._meta.begin, self._meta.vsize, IoClass.RAW))
            return np.frombuffer(raw, dtype=dt.numpy_dtype).reshape(self.shape).copy()
        parts = [self.read_record(r).reshape(-1)
                 for r in range(self._file._header.numrecs)]
        flat = np.concatenate(parts) if parts else np.zeros(0, dt.numpy_dtype)
        return flat.reshape(self.shape)

    def read_record(self, rec: int) -> np.ndarray:
        """Read one record of a record variable."""
        self._file._require_data_mode("read a record")
        if not self.is_record:
            raise NcFormatError(f"{self.name} is not a record variable")
        if not (0 <= rec < self._file._header.numrecs):
            raise NcFormatError(
                f"record {rec} out of range ({self._file._header.numrecs})")
        addr = self._file._record_addr(self._meta, rec)
        raw = self._file._scoped(self.name, lambda: self._file.vfd.read(
            addr, self._meta.vsize, IoClass.RAW))
        inner = self.shape[1:]
        return np.frombuffer(raw, dtype=self.dtype.numpy_dtype).reshape(inner).copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "record" if self.is_record else "fixed"
        return f"<NcVariable {self.name!r} {self.dtype.code} {kind} {self.shape}>"


class NcFile:
    """An open classic-NetCDF-like container.

    Args:
        fs: Simulated filesystem.
        path: File path.
        mode: ``"w"`` create (starts in define mode) or ``"r"`` read.
        vfd_wrap: Optional VFD wrapper (DaYu's tracing hook).
        object_scope: Optional callable ``scope(name)`` returning a context
            manager announcing the active variable (the VOL layer installs
            the shared-channel scope here).
    """

    def __init__(
        self,
        fs: SimFS,
        path: str,
        mode: str = "r",
        *,
        vfd_wrap: Optional[Callable[[VirtualFileDriver], VirtualFileDriver]] = None,
        object_scope=None,
    ) -> None:
        if mode not in ("r", "w"):
            raise ValueError(f"unsupported NcFile mode {mode!r}")
        self._mode = mode
        base: VirtualFileDriver = Sec2VFD(fs, path, mode)
        self.vfd = vfd_wrap(base) if vfd_wrap else base
        self._object_scope = object_scope
        self._closed = False
        if mode == "w":
            self._header = NcHeader()
            self._define_mode = True
            self._header_alloc = 0
        else:
            # Read the aligned header: first block, then the rest if bigger.
            first = self.vfd.read(0, HEADER_ALIGN, IoClass.METADATA)
            header = NcHeader.decode(first)
            needed = header.encoded_size
            if needed > len(first):
                header = NcHeader.decode(
                    self.vfd.read(0, needed, IoClass.METADATA))
            self._header = header
            self._header_alloc = self._header.encoded_size
            self._define_mode = False

    # ------------------------------------------------------------------
    # Mode guards
    # ------------------------------------------------------------------
    def _require_define_mode(self, what: str) -> None:
        self._check_open()
        if not self._define_mode:
            raise NcFormatError(f"cannot {what}: not in define mode")

    def _require_data_mode(self, what: str) -> None:
        self._check_open()
        if self._define_mode:
            raise NcFormatError(f"cannot {what}: still in define mode "
                                "(call enddef() first)")

    def _check_open(self) -> None:
        if self._closed:
            raise NcFormatError("file is closed")

    def _scoped(self, name: str, fn):
        if self._object_scope is None:
            return fn()
        with self._object_scope(name):
            return fn()

    # ------------------------------------------------------------------
    # Define mode
    # ------------------------------------------------------------------
    def create_dimension(self, name: str, length: Optional[int]) -> int:
        """Add a dimension; ``None`` length makes it the record dimension."""
        self._require_define_mode("create a dimension")
        if any(d.name == name for d in self._header.dims):
            raise NcFormatError(f"dimension {name!r} already exists")
        if length is None:
            if self._header.record_dim_id() is not None:
                raise NcFormatError("only one UNLIMITED dimension is allowed")
            length = UNLIMITED
        elif length <= 0:
            raise NcFormatError(f"dimension length must be positive, got {length}")
        self._header.dims.append(NcDim(name, length))
        return len(self._header.dims) - 1

    def create_variable(self, name: str, dtype, dims: Sequence[str]) -> NcVariable:
        """Add a variable over named dimensions (record dim first, if any)."""
        self._require_define_mode("create a variable")
        if any(v.name == name for v in self._header.variables):
            raise NcFormatError(f"variable {name!r} already exists")
        dt = Datatype.of(dtype)
        if dt.is_vlen:
            raise NcFormatError("the classic model has no variable-length type")
        by_name = {d.name: i for i, d in enumerate(self._header.dims)}
        dim_ids = []
        for dname in dims:
            if dname not in by_name:
                raise NcFormatError(f"unknown dimension {dname!r}")
            dim_ids.append(by_name[dname])
        rec = self._header.record_dim_id()
        if rec in dim_ids and dim_ids[0] != rec:
            raise NcFormatError("the record dimension must come first")
        meta = NcVarMeta(name=name, dtype=dt.code, dim_ids=dim_ids)
        self._header.variables.append(meta)
        return NcVariable(self, meta)

    def set_att(self, name: str, value) -> None:
        """Set a global attribute."""
        self._require_define_mode("set a global attribute")
        dtype, payload = _encode_att_value(value)
        self._header.atts = [a for a in self._header.atts if a.name != name]
        self._header.atts.append(NcAtt(name, dtype, payload))

    def get_att(self, name: str):
        for a in self._header.atts:
            if a.name == name:
                return _decode_att_value(a.dtype, a.payload)
        raise KeyError(f"no global attribute {name!r}")

    def enddef(self) -> None:
        """Freeze the schema, compute the layout, write the header."""
        self._require_define_mode("call enddef")
        header = self._header
        # Sizes: record vars report bytes-per-record, fixed vars total bytes.
        for v in header.variables:
            elems = 1
            for d in v.dim_ids:
                dim = header.dims[d]
                if not dim.is_record:
                    elems *= dim.length
            v.vsize = elems * Datatype(v.dtype).itemsize
        self._header_alloc = header.encoded_size
        offset = self._header_alloc
        for v in header.variables:
            if not header.is_record_var(v):
                v.begin = offset
                offset += v.vsize
        for v in header.variables:
            if header.is_record_var(v):
                v.begin = offset
                offset += v.vsize
        self._define_mode = False
        self._write_header()

    # ------------------------------------------------------------------
    # Data-mode internals
    # ------------------------------------------------------------------
    def _record_addr(self, meta: NcVarMeta, rec: int) -> int:
        return meta.begin + rec * self._header.recsize()

    def _grow_numrecs(self, numrecs: int) -> None:
        self._header.numrecs = numrecs
        # netCDF's header chatter: numrecs lives in the header on disk.
        self.vfd.write(4, struct.pack("<Q", numrecs), IoClass.METADATA)

    def _write_header(self) -> None:
        encoded = self._header.encode()
        if len(encoded) > self._header_alloc:
            raise NcFormatError("header grew past its allocation")
        self.vfd.write(0, encoded, IoClass.METADATA)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def variable(self, name: str) -> NcVariable:
        self._check_open()
        for meta in self._header.variables:
            if meta.name == name:
                return NcVariable(self, meta)
        raise KeyError(f"no variable {name!r}")

    def variables(self) -> List[str]:
        return [v.name for v in self._header.variables]

    def dimensions(self) -> Dict[str, int]:
        return {
            d.name: (self._header.numrecs if d.is_record else d.length)
            for d in self._header.dims
        }

    @property
    def numrecs(self) -> int:
        return self._header.numrecs

    def close(self) -> None:
        if self._closed:
            return
        if self._mode == "w":
            if self._define_mode:
                self.enddef()
            self._write_header()
        self._closed = True
        self.vfd.close()

    def __enter__(self) -> "NcFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
