"""VOL instrumentation for the netCDF-like format.

Same design as :mod:`repro.vol.objects` for HDF5: thin wrappers announce
the active variable to the VFD profiler through the shared channel and
feed object semantics to the VOL tracer, so a netCDF task's profile is
indistinguishable in structure from an HDF5 task's — which is exactly what
lets DaYu analyze mixed-format workflows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netcdf.file import NcFile, NcVariable
from repro.posix.simfs import SimFS
from repro.vfd.tracing import TracingVFD, VfdTracer
from repro.vol.tracer import VolTracer

__all__ = ["NcVolFile", "NcVolVariable"]


class NcVolVariable:
    """Instrumented variable handle."""

    def __init__(self, inner: NcVariable, file: "NcVolFile") -> None:
        self._inner = inner
        self._file = file
        file.vol.on_object_open(
            file.path,
            "/" + inner.name,
            shape=inner.shape,
            dtype=inner.dtype.code,
            layout="record" if inner.is_record else "fixed",
            nbytes=inner._meta.vsize * (max(inner.shape[0], 1) if inner.is_record else 1),
        )

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def shape(self):
        return self._inner.shape

    @property
    def dtype(self):
        return self._inner.dtype

    @property
    def is_record(self) -> bool:
        return self._inner.is_record

    def set_att(self, name: str, value) -> None:
        self._inner.set_att(name, value)

    def get_att(self, name: str):
        return self._inner.get_att(name)

    def _count(self) -> int:
        n = 1
        for d in self._inner.shape:
            n *= d
        return n

    def write(self, data) -> None:
        self._inner.write(data)
        elements = self._count()
        self._file.vol.on_access(
            self._file.path, "/" + self.name, "write",
            elements, elements * self._inner.dtype.itemsize)

    def write_record(self, rec: int, data) -> None:
        self._inner.write_record(rec, data)
        per = self._inner._slice_elems
        self._file.vol.on_access(
            self._file.path, "/" + self.name, "write",
            per, per * self._inner.dtype.itemsize)

    def read(self):
        result = self._inner.read()
        elements = self._count()
        self._file.vol.on_access(
            self._file.path, "/" + self.name, "read",
            elements, elements * self._inner.dtype.itemsize)
        return result

    def read_record(self, rec: int):
        result = self._inner.read_record(rec)
        per = self._inner._slice_elems
        self._file.vol.on_access(
            self._file.path, "/" + self.name, "read",
            per, per * self._inner.dtype.itemsize)
        return result

    def close(self) -> None:
        self._file.vol.on_object_close(self._file.path, "/" + self.name)


class NcVolFile:
    """Instrumented netCDF-like file handle (the DaYu-profiled stack)."""

    def __init__(
        self,
        fs: SimFS,
        path: str,
        mode: str = "r",
        *,
        vol: VolTracer,
        vfd_tracer: Optional[VfdTracer] = None,
    ) -> None:
        self.vol = vol
        self.channel = vol.channel
        wrap = (
            (lambda inner: TracingVFD(inner, vfd_tracer))
            if vfd_tracer is not None else None
        )
        self._inner = NcFile(
            fs, path, mode, vfd_wrap=wrap,
            object_scope=lambda name: self.channel.object_scope("/" + name),
        )
        self._path = path
        vol.on_file_open(path)
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    @property
    def inner(self) -> NcFile:
        return self._inner

    # -- define mode ----------------------------------------------------
    def create_dimension(self, name: str, length) -> int:
        return self._inner.create_dimension(name, length)

    def create_variable(self, name: str, dtype, dims: Sequence[str]) -> NcVolVariable:
        with self.channel.object_scope("/" + name):
            inner = self._inner.create_variable(name, dtype, dims)
        return NcVolVariable(inner, self)

    def set_att(self, name: str, value) -> None:
        self._inner.set_att(name, value)

    def get_att(self, name: str):
        return self._inner.get_att(name)

    def enddef(self) -> None:
        self._inner.enddef()

    # -- data mode --------------------------------------------------------
    def variable(self, name: str) -> NcVolVariable:
        with self.channel.object_scope("/" + name):
            inner = self._inner.variable(name)
        return NcVolVariable(inner, self)

    def variables(self):
        return self._inner.variables()

    def dimensions(self):
        return self._inner.dimensions()

    @property
    def numrecs(self) -> int:
        return self._inner.numrecs

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._inner.close()
            self.vol.on_file_close(self._path)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "NcVolFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
