"""A classic-NetCDF-like self-describing format.

The paper's method "leverages rich metadata from high-level I/O libraries
like HDF5 and netCDF"; this package provides the second format family so
the claim is demonstrable.  It follows the classic NetCDF (CDF-1) data
model:

- named **dimensions**, at most one of them UNLIMITED (the record
  dimension);
- **variables** over those dimensions with attributes;
- a single header written at ``enddef()`` time, followed by the data
  section: *fixed* variables packed contiguously, *record* variables
  interleaved per record.

That record interleaving is netCDF's signature I/O behaviour — appending
one record touches every record variable's slot, and reading one record
variable end-to-end produces one operation per record — giving DaYu a
genuinely different low-level pattern to decode than HDF5's chunking.

All I/O flows through the same VFD abstraction, so the
:class:`~repro.netcdf.vol.NcVolFile` wrapper plugs straight into DaYu's
profilers and the downstream Analyzer/Diagnostics.
"""

from repro.netcdf.file import NcFile, NcVariable
from repro.netcdf.format import UNLIMITED, NcFormatError
from repro.netcdf.vol import NcVolFile, NcVolVariable

__all__ = [
    "NcFile",
    "NcVariable",
    "NcVolFile",
    "NcVolVariable",
    "UNLIMITED",
    "NcFormatError",
]
