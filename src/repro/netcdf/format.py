"""Binary header codec for the classic-NetCDF-like format.

Header layout (all integers little-endian u4 unless noted)::

    magic      "RNC\\x01" (4 bytes)
    numrecs    u8   — records written so far (record dimension length)
    dim_count  u4   then per dim:  name (len-prefixed), length u8
                    (length 0 marks the UNLIMITED/record dimension)
    att_count  u4   then per att:  name, dtype code, payload (len-prefixed)
    var_count  u4   then per var:  name, dtype code, dim-id list,
                    att list (as above), vsize u8, begin u8

``vsize`` is the variable's bytes per record (record vars) or total bytes
(fixed vars); ``begin`` is its data offset.  The header is padded to a
fixed allocation so re-writing ``numrecs`` never relocates it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdf5.format import pack_bytes, unpack_bytes

__all__ = ["UNLIMITED", "NcFormatError", "NcDim", "NcAtt", "NcVarMeta", "NcHeader"]

MAGIC = b"RNC\x01"

#: Sentinel dimension length marking the record (unlimited) dimension.
UNLIMITED = 0

#: Headers are padded to a multiple of this so growth rarely relocates.
HEADER_ALIGN = 512


class NcFormatError(Exception):
    """Raised when on-disk bytes do not parse as this format."""


@dataclass
class NcDim:
    name: str
    length: int  # UNLIMITED (0) for the record dimension

    @property
    def is_record(self) -> bool:
        return self.length == UNLIMITED


@dataclass
class NcAtt:
    name: str
    dtype: str  # a fixed Datatype code, or "text"
    payload: bytes

    def encode(self) -> bytes:
        return (pack_bytes(self.name.encode()) + pack_bytes(self.dtype.encode())
                + pack_bytes(self.payload))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["NcAtt", int]:
        name, offset = unpack_bytes(data, offset)
        dtype, offset = unpack_bytes(data, offset)
        payload, offset = unpack_bytes(data, offset)
        return cls(name.decode(), dtype.decode(), payload), offset


@dataclass
class NcVarMeta:
    name: str
    dtype: str
    dim_ids: List[int]
    atts: List[NcAtt] = field(default_factory=list)
    vsize: int = 0
    begin: int = 0

    def encode(self) -> bytes:
        out = pack_bytes(self.name.encode()) + pack_bytes(self.dtype.encode())
        out += struct.pack("<I", len(self.dim_ids))
        for d in self.dim_ids:
            out += struct.pack("<I", d)
        out += struct.pack("<I", len(self.atts))
        for a in self.atts:
            out += a.encode()
        out += struct.pack("<QQ", self.vsize, self.begin)
        return out

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["NcVarMeta", int]:
        name, offset = unpack_bytes(data, offset)
        dtype, offset = unpack_bytes(data, offset)
        (ndims,) = struct.unpack_from("<I", data, offset)
        offset += 4
        dim_ids = []
        for _ in range(ndims):
            (d,) = struct.unpack_from("<I", data, offset)
            dim_ids.append(d)
            offset += 4
        (natts,) = struct.unpack_from("<I", data, offset)
        offset += 4
        atts = []
        for _ in range(natts):
            att, offset = NcAtt.decode(data, offset)
            atts.append(att)
        vsize, begin = struct.unpack_from("<QQ", data, offset)
        offset += 16
        return cls(name.decode(), dtype.decode(), dim_ids, atts, vsize, begin), offset


@dataclass
class NcHeader:
    numrecs: int = 0
    dims: List[NcDim] = field(default_factory=list)
    atts: List[NcAtt] = field(default_factory=list)
    variables: List[NcVarMeta] = field(default_factory=list)

    def encode(self) -> bytes:
        out = MAGIC + struct.pack("<Q", self.numrecs)
        out += struct.pack("<I", len(self.dims))
        for d in self.dims:
            out += pack_bytes(d.name.encode()) + struct.pack("<Q", d.length)
        out += struct.pack("<I", len(self.atts))
        for a in self.atts:
            out += a.encode()
        out += struct.pack("<I", len(self.variables))
        for v in self.variables:
            out += v.encode()
        pad = (-len(out)) % HEADER_ALIGN
        return out + b"\x00" * pad

    @property
    def encoded_size(self) -> int:
        return len(self.encode())

    @classmethod
    def decode(cls, data: bytes) -> "NcHeader":
        if data[:4] != MAGIC:
            raise NcFormatError(f"bad magic {data[:4]!r}")
        (numrecs,) = struct.unpack_from("<Q", data, 4)
        offset = 12
        (ndims,) = struct.unpack_from("<I", data, offset)
        offset += 4
        dims = []
        for _ in range(ndims):
            name, offset = unpack_bytes(data, offset)
            (length,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            dims.append(NcDim(name.decode(), length))
        (natts,) = struct.unpack_from("<I", data, offset)
        offset += 4
        atts = []
        for _ in range(natts):
            att, offset = NcAtt.decode(data, offset)
            atts.append(att)
        (nvars,) = struct.unpack_from("<I", data, offset)
        offset += 4
        variables = []
        for _ in range(nvars):
            var, offset = NcVarMeta.decode(data, offset)
            variables.append(var)
        return cls(numrecs=numrecs, dims=dims, atts=atts, variables=variables)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    def record_dim_id(self) -> Optional[int]:
        for i, d in enumerate(self.dims):
            if d.is_record:
                return i
        return None

    def is_record_var(self, var: NcVarMeta) -> bool:
        rec = self.record_dim_id()
        return rec is not None and bool(var.dim_ids) and var.dim_ids[0] == rec

    def recsize(self) -> int:
        """Bytes one record occupies across all record variables."""
        return sum(v.vsize for v in self.variables if self.is_record_var(v))
