"""The paper's Table III machine configurations.

+-------------+---------------------------+--------------------------------+
| Machine     | Compute, memory           | Storage options                |
+=============+===========================+================================+
| CPU cluster | 2x Xeon Silver 4114,      | NFS (default); NVMe SSD (node);|
|             | 48 GB RAM                 | SATA SSD (node); HDD (node)    |
+-------------+---------------------------+--------------------------------+
| GPU cluster | 2x AMD EPYC, RTX 2080 Ti, | NFS (default); BeeGFS (with    |
|             | 384 GB RAM                | caching); SSD (node)           |
+-------------+---------------------------+--------------------------------+

Each configuration exists in two forms backed by the same parameters:

- :class:`ClusterSpec` — a frozen, picklable *description* of the
  topology (nodes, shared mounts, local tiers).  This is the cost-model
  query surface: :meth:`ClusterSpec.device_for_path` answers "which
  device would this path land on, and is it node-local?" without
  instantiating any simulated state, so the pre-run analyzer
  (:mod:`repro.lint.cost`) can price a workflow that never runs.
- a live :class:`~repro.cluster.cluster.Cluster` built from the spec by
  :func:`build_cluster` — what :func:`cpu_cluster` / :func:`gpu_cluster`
  (and every experiment) return.  Both forms derive from one definition,
  so predicted and simulated runs price I/O against the same devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.cluster import Cluster, Node
from repro.simclock import SimClock
from repro.storage.devices import DEVICE_CATALOG, DeviceSpec

__all__ = [
    "ClusterSpec",
    "cluster_spec",
    "build_cluster",
    "cpu_cluster",
    "gpu_cluster",
]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster topology (frozen, picklable).

    Attributes:
        name: Configuration name (``"gpu"`` / ``"cpu"``).
        n_nodes: Homogeneous node count; node names are ``n0``, ``n1``...
        cpus: Parallel task slots per node.
        ram_bytes: Main memory per node.
        local_tiers: ``(tier name, device catalog name)`` pairs for the
            node-local storage mounted at ``/local/<node>/<tier>``.
        shared_mounts: ``(mount prefix, device catalog name)`` pairs, in
            definition order; the first entry is the default mount for
            paths matching no prefix.
    """

    name: str
    n_nodes: int
    cpus: int
    ram_bytes: int
    local_tiers: Tuple[Tuple[str, str], ...]
    shared_mounts: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster spec needs at least one node")
        if not self.shared_mounts:
            raise ValueError("a cluster spec needs a shared mount")
        for _, device in (*self.local_tiers, *self.shared_mounts):
            if device not in DEVICE_CATALOG:
                raise ValueError(f"unknown device {device!r} in cluster spec")

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(f"n{i}" for i in range(self.n_nodes))

    def device_for_path(self, path: str) -> Tuple[DeviceSpec, Optional[str]]:
        """``(device, owning node)`` a path would land on; node is None
        for shared mounts.  Longest-prefix match over the shared mounts;
        paths matching nothing fall back to the first (default) mount.
        """
        if path.startswith("/local/"):
            parts = path.split("/", 4)
            if len(parts) >= 4 and parts[2] in self.node_names:
                for tier, device in self.local_tiers:
                    if tier == parts[3]:
                        return DEVICE_CATALOG[device], parts[2]
        best: Optional[Tuple[str, str]] = None
        for prefix, device in self.shared_mounts:
            if path == prefix or path.startswith(prefix + "/"):
                if best is None or len(prefix) > len(best[0]):
                    best = (prefix, device)
        if best is None:
            best = self.shared_mounts[0]
        return DEVICE_CATALOG[best[1]], None

    def fastest_local_tier(self) -> Optional[Tuple[str, str]]:
        """The local tier with the highest read bandwidth (ties broken
        by tier name), or None when nodes carry no local storage."""
        if not self.local_tiers:
            return None
        return max(
            self.local_tiers,
            key=lambda t: (DEVICE_CATALOG[t[1]].read_bandwidth, t[0]),
        )


_SPECS = {
    "cpu": dict(
        cpus=20,
        ram_bytes=48 * (1 << 30),
        local_tiers=(("nvme", "nvme"), ("ssd", "sata_ssd"), ("hdd", "hdd")),
        shared_mounts=(("/nfs", "nfs"),),
    ),
    "gpu": dict(
        cpus=32,
        ram_bytes=384 * (1 << 30),
        local_tiers=(("ssd", "nvme"),),
        shared_mounts=(("/nfs", "nfs"), ("/beegfs", "beegfs")),
    ),
}


def cluster_spec(name: str = "gpu", n_nodes: int = 2) -> ClusterSpec:
    """The named Table III configuration as a :class:`ClusterSpec`.

    ``"gpu"`` is the default everywhere (it is what
    :func:`~repro.experiments.common.fresh_env` and ``dayu-run``
    simulate), so pre-run cost predictions price against the same
    topology the runs execute on.
    """
    try:
        params = _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown cluster spec {name!r}; "
                       f"known: {known}") from None
    return ClusterSpec(name=name, n_nodes=n_nodes, **params)


def build_cluster(spec: ClusterSpec, clock: SimClock) -> Cluster:
    """Instantiate the simulated cluster a :class:`ClusterSpec` describes."""
    nodes = [
        Node(
            name=node,
            cpus=spec.cpus,
            ram_bytes=spec.ram_bytes,
            local_tiers=dict(spec.local_tiers),
        )
        for node in spec.node_names
    ]
    return Cluster(clock, nodes, shared_mounts=dict(spec.shared_mounts))


def cpu_cluster(clock: SimClock, n_nodes: int = 2) -> Cluster:
    """The CPU cluster: 2× Xeon Silver 4114 (20 cores), 48 GB RAM per node;
    NFS shared (default), with node-local NVMe, SATA SSD, and HDD."""
    return build_cluster(cluster_spec("cpu", n_nodes), clock)


def gpu_cluster(clock: SimClock, n_nodes: int = 2) -> Cluster:
    """The GPU cluster: 2× AMD EPYC + RTX 2080 Ti, 384 GB RAM per node;
    NFS shared (default) and BeeGFS parallel FS, with node-local SSD."""
    return build_cluster(cluster_spec("gpu", n_nodes), clock)
