"""The paper's Table III machine configurations.

+-------------+---------------------------+--------------------------------+
| Machine     | Compute, memory           | Storage options                |
+=============+===========================+================================+
| CPU cluster | 2x Xeon Silver 4114,      | NFS (default); NVMe SSD (node);|
|             | 48 GB RAM                 | SATA SSD (node); HDD (node)    |
+-------------+---------------------------+--------------------------------+
| GPU cluster | 2x AMD EPYC, RTX 2080 Ti, | NFS (default); BeeGFS (with    |
|             | 384 GB RAM                | caching); SSD (node)           |
+-------------+---------------------------+--------------------------------+
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster, Node
from repro.simclock import SimClock

__all__ = ["cpu_cluster", "gpu_cluster"]


def cpu_cluster(clock: SimClock, n_nodes: int = 2) -> Cluster:
    """The CPU cluster: 2× Xeon Silver 4114 (20 cores), 48 GB RAM per node;
    NFS shared (default), with node-local NVMe, SATA SSD, and HDD."""
    nodes = [
        Node(
            name=f"n{i}",
            cpus=20,
            ram_bytes=48 * (1 << 30),
            local_tiers={"nvme": "nvme", "ssd": "sata_ssd", "hdd": "hdd"},
        )
        for i in range(n_nodes)
    ]
    return Cluster(clock, nodes, shared_mounts={"/nfs": "nfs"})


def gpu_cluster(clock: SimClock, n_nodes: int = 2) -> Cluster:
    """The GPU cluster: 2× AMD EPYC + RTX 2080 Ti, 384 GB RAM per node;
    NFS shared (default) and BeeGFS parallel FS, with node-local SSD."""
    nodes = [
        Node(
            name=f"n{i}",
            cpus=32,
            ram_bytes=384 * (1 << 30),
            local_tiers={"ssd": "nvme"},
        )
        for i in range(n_nodes)
    ]
    return Cluster(
        clock, nodes, shared_mounts={"/nfs": "nfs", "/beegfs": "beegfs"}
    )
