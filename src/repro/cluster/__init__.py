"""Simulated multi-node clusters.

Models the paper's Table III testbeds: compute nodes with CPU slots, RAM,
and node-local storage devices, plus shared mounts (NFS / BeeGFS) visible
from every node.  A single :class:`~repro.posix.simfs.SimFS` namespace
backs the whole cluster; node-local mounts live under
``/local/<node>/<tier>`` so locality is explicit in every path.
"""

from repro.cluster.cluster import Cluster, Node
from repro.cluster.configs import cpu_cluster, gpu_cluster

__all__ = ["Cluster", "Node", "cpu_cluster", "gpu_cluster"]
