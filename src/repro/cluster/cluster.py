"""Cluster and node models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.posix.simfs import SimFS
from repro.simclock import SimClock
from repro.storage.devices import StorageDevice, make_device
from repro.storage.mount import Mount

__all__ = ["Node", "Cluster"]


@dataclass
class Node:
    """One compute node.

    Attributes:
        name: Node name (``"n0"``...).
        cpus: Parallel task slots.
        ram_bytes: Main-memory capacity (used by caching decisions).
        local_tiers: Tier name → device catalog name for node-local storage
            (e.g. ``{"nvme": "nvme", "ssd": "sata_ssd"}``).
    """

    name: str
    cpus: int = 8
    ram_bytes: int = 48 * (1 << 30)
    local_tiers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"node {self.name}: cpus must be >= 1")


class Cluster:
    """A set of nodes sharing a filesystem namespace.

    Shared mounts are visible everywhere; each node's local tiers are
    mounted at ``/local/<node>/<tier>``.  All devices charge the one
    simulated clock.

    Args:
        clock: The cluster-wide simulated clock.
        nodes: Node definitions.
        shared_mounts: Mapping of mount prefix → device catalog name for
            the shared filesystems (e.g. ``{"/pfs": "beegfs"}``).
    """

    def __init__(
        self,
        clock: SimClock,
        nodes: Iterable[Node],
        shared_mounts: Dict[str, str],
    ) -> None:
        self.clock = clock
        self.nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")

        mounts: List[Mount] = []
        self._shared_devices: Dict[str, StorageDevice] = {}
        for prefix, device_name in shared_mounts.items():
            device = make_device(device_name)
            self._shared_devices[prefix] = device
            mounts.append(Mount(prefix, device))
        self._local_devices: Dict[str, Dict[str, StorageDevice]] = {}
        for node in self.nodes.values():
            per_tier: Dict[str, StorageDevice] = {}
            for tier, device_name in node.local_tiers.items():
                device = make_device(device_name)
                per_tier[tier] = device
                mounts.append(
                    Mount(self.local_prefix(node.name, tier), device, node=node.name)
                )
            self._local_devices[node.name] = per_tier
        self.fs = SimFS(clock, mounts=mounts)
        self._dead_nodes: set[str] = set()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @staticmethod
    def local_prefix(node: str, tier: str) -> str:
        """Mount prefix of a node-local tier."""
        return f"/local/{node}/{tier}"

    def node_names(self) -> List[str]:
        return list(self.nodes)

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    @property
    def shared_devices(self) -> Dict[str, StorageDevice]:
        """Shared mount prefix → device."""
        return dict(self._shared_devices)

    def local_device(self, node: str, tier: str) -> StorageDevice:
        try:
            return self._local_devices[node][tier]
        except KeyError:
            raise KeyError(f"node {node!r} has no local tier {tier!r}") from None

    def owning_node(self, path: str) -> Optional[str]:
        """The node a path is local to, or None for shared paths."""
        return self.fs.mount_for(path).node

    # ------------------------------------------------------------------
    # Node failure (fault injection)
    # ------------------------------------------------------------------
    def fail_node(self, name: str, force: bool = False) -> None:
        """Kill a node: it stops accepting tasks and every node-local tier
        it hosts becomes unreachable (shared mounts survive).  Idempotent.

        By default at least one node must stay alive — killing the last
        node through the direct API is almost always a configuration
        error.  A *fault plan* may legitimately model total cluster death
        (``force=True``, used by the fault injector): schedulers then
        raise :class:`~repro.workflow.scheduler.NoAliveNodesError` and the
        runner aborts cleanly with partial results preserved.
        """
        node = self.node(name)
        if name in self._dead_nodes:
            return
        survivors = [n for n in self.nodes if n != name
                     and n not in self._dead_nodes]
        if not survivors and not force:
            raise ValueError(
                f"cannot fail node {name!r}: it is the last live node")
        self._dead_nodes.add(name)
        for tier in node.local_tiers:
            self.fs.fail_mount(self.local_prefix(name, tier))

    def is_alive(self, name: str) -> bool:
        self.node(name)  # validates the name
        return name not in self._dead_nodes

    def alive_node_names(self) -> List[str]:
        """Names of nodes that can still run tasks, in definition order."""
        return [n for n in self.nodes if n not in self._dead_nodes]

    @property
    def dead_nodes(self) -> List[str]:
        return sorted(self._dead_nodes)

    # ------------------------------------------------------------------
    # Concurrency control (used by the workflow runner)
    # ------------------------------------------------------------------
    def set_stage_concurrency(self, tasks_per_node: Dict[str, int]) -> None:
        """Declare how many tasks run concurrently per node for a stage.

        Shared devices see the total concurrency; each node-local device
        sees only its node's task count.
        """
        total = sum(tasks_per_node.values())
        for device in self._shared_devices.values():
            device.set_concurrency(max(total, 1))
        for node, per_tier in self._local_devices.items():
            n = tasks_per_node.get(node, 0)
            for device in per_tier.values():
                device.set_concurrency(max(n, 1))

    def reset_concurrency(self) -> None:
        for device in self._shared_devices.values():
            device.set_concurrency(1)
        for per_tier in self._local_devices.values():
            for device in per_tier.values():
                device.set_concurrency(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster nodes={list(self.nodes)} shared={list(self._shared_devices)}>"
