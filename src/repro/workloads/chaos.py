"""The chaos workload: a fault-tolerant map/reduce pipeline.

Purpose-built for exercising :mod:`repro.faults`: an ingest task writes a
raw input file, a *best-effort* parallel stage partitions it, and a merge
task folds the partitions back together — **recomputing** any partition
whose file is missing, at a deliberately higher I/O cost (re-reading the
raw slice ``recompute_reads`` times to model redoing the work without its
cached intermediate).

That recompute path is what makes retries *measurably* pay off: under a
write-fault spec, lost partitions force the merge onto the expensive
path, so

    makespan(no retries)  >  makespan(retries)  ≈  makespan(fault-free)

which the ``fault_resilience`` experiment and the CI gate assert.

Partitions live under ``<data_dir>/parts/`` so a fault spec can target
exactly the intermediate writes (``ops="write"`` on that prefix) without
ever failing the ingest or the merge's reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.spec import DeviceFault, FaultSpec
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["ChaosParams", "build_chaos", "chaos_fault_spec"]


@dataclass(frozen=True)
class ChaosParams:
    """Chaos pipeline configuration.

    Attributes:
        data_dir: Shared-mount directory for all files.
        n_parts: Parallel partition tasks (the best-effort stage).
        elems_per_part: f4 elements each partition covers.
        recompute_reads: How many times the merge re-reads a lost
            partition's raw slice — the modeled recompute premium.
        compute_seconds: Modeled compute per partition task.
    """

    data_dir: str = "/beegfs/chaos"
    n_parts: int = 6
    elems_per_part: int = 4096
    recompute_reads: int = 8
    compute_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.n_parts < 1 or self.elems_per_part < 1:
            raise ValueError("chaos parameters must be positive")
        if self.recompute_reads < 1:
            raise ValueError("recompute_reads must be >= 1")

    @property
    def raw_path(self) -> str:
        return f"{self.data_dir}/raw.h5"

    @property
    def parts_dir(self) -> str:
        return f"{self.data_dir}/parts"

    def part_path(self, i: int) -> str:
        return f"{self.parts_dir}/part_{i:03d}.h5"

    @property
    def merged_path(self) -> str:
        return f"{self.data_dir}/merged.h5"


def build_chaos(params: ChaosParams) -> Workflow:
    """ingest → best-effort partition fan-out → merge-with-recompute."""
    from repro.hdf5 import Selection

    p = params

    def ingest(rt: TaskRuntime) -> None:
        rng = np.random.default_rng(0)
        f = rt.open(p.raw_path, "w")
        f.create_dataset(
            "raw", shape=(p.n_parts * p.elems_per_part,), dtype="f4",
            data=rng.random(p.n_parts * p.elems_per_part, dtype=np.float32),
        )
        f.close()

    def partition(i: int):
        def fn(rt: TaskRuntime) -> None:
            raw = rt.open(p.raw_path, "r")
            slab = raw["raw"].read(Selection.hyperslab(
                ((i * p.elems_per_part, p.elems_per_part),)))
            raw.close()
            # Write-then-rename commit: an attempt killed mid-write leaves
            # only a .tmp orphan, so the merge's existence check never
            # mistakes a partial file for a finished partition.
            tmp = p.part_path(i) + ".tmp"
            out = rt.open(tmp, "w")
            out.create_dataset("part", shape=(p.elems_per_part,),
                               dtype="f4", data=np.sort(slab))
            out.close()
            rt.fs.rename(tmp, p.part_path(i))
        return fn

    def merge(rt: TaskRuntime) -> None:
        out = rt.open(p.merged_path, "w")
        totals = np.zeros(p.n_parts, dtype=np.float32)
        for i in range(p.n_parts):
            part_path = p.part_path(i)
            if rt.fs.exists(part_path):
                f = rt.open(part_path, "r")
                totals[i] = float(np.sum(f["part"].read()))
                f.close()
            else:
                # The partition was lost (best-effort degradation):
                # recompute it from raw, paying the recompute premium of
                # repeated slice reads.
                raw = rt.open(p.raw_path, "r")
                sel = Selection.hyperslab(
                    ((i * p.elems_per_part, p.elems_per_part),))
                for _ in range(p.recompute_reads):
                    slab = raw["raw"].read(sel)
                raw.close()
                totals[i] = float(np.sum(np.sort(slab)))
        out.create_dataset("totals", shape=(p.n_parts,), dtype="f4",
                           data=totals)
        out.close()

    return Workflow("chaos", [
        Stage("ingest", [Task("chaos_ingest", ingest)], parallel=False),
        Stage("partition", [
            Task(f"chaos_part_{i:03d}", partition(i),
                 compute_seconds=p.compute_seconds)
            for i in range(p.n_parts)
        ], best_effort=True),
        Stage("merge", [Task("chaos_merge", merge)], parallel=False),
    ])


def chaos_fault_spec(params: ChaosParams | None = None,
                     rate: float = 0.08, seed: int = 7) -> FaultSpec:
    """The matching fault plan: transient *write* errors on the partition
    directory — ingest and every read stay clean, so a no-retry run still
    completes (degraded) and the makespan comparison is apples-to-apples.
    """
    p = params or ChaosParams()
    return FaultSpec(seed=seed, device_faults=(
        DeviceFault(p.parts_dir, "transient", rate=rate, ops="write"),
    ))
