"""DeepDriveMD (DDMD): the simulation / ML-training / inference loop.

Reproduces the dataflow of the paper's Figure 6 per iteration:

1. **openmm** — 12 parallel simulation tasks, each writing
   ``stage{iter:04d}_task{i:04d}.h5`` with four *chunked* datasets
   (``contact_map`` by far the largest, ``point_cloud``, ``fnc``,
   ``rmsd``) — the chunked-small-file inefficiency of Figure 13b.
2. **aggregate** — reads every simulation file sequentially and
   consolidates the four datasets (unmodified) into ``aggregated.h5``.
3. **training** — reads three of the four aggregated datasets but only
   *opens* ``contact_map`` (metadata-only access, Figure 7's pop-up);
   reads one simulation file's contact_map directly; writes ten
   ``embeddings-epoch-N`` files and re-reads epochs 5 and 10
   (read-after-write reuse); writes the model.
4. **inference** — reads all simulation data plus the model (no HDF5
   dependency on training's other outputs), writing
   ``virtual_stage{iter:04d}_task0000.h5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["DdmdParams", "build_ddmd"]


@dataclass(frozen=True)
class DdmdParams:
    """Workload scale knobs (defaults test-sized).

    Attributes:
        data_dir: Shared working directory.
        n_sim_tasks: Parallel OpenMM simulations per iteration (paper: 12).
        frames: Simulation frames; dataset sizes scale with this.
        iterations: Pipeline iterations (paper evaluates 5).
        epochs: Training epochs → embedding files (paper shows 10).
        layout: Dataset layout for simulation outputs (paper default:
            ``"chunked"``; the Figure 13b fix uses ``"contiguous"``).
        chunk_elems: Chunk length when chunked.
        compute_seconds: Modeled compute per task.
    """

    data_dir: str = "/pfs/ddmd"
    n_sim_tasks: int = 12
    frames: int = 64
    iterations: int = 1
    epochs: int = 10
    layout: str = "chunked"
    chunk_elems: int = 64
    compute_seconds: float = 0.05

    # Dataset shapes: contact_map dominates (the paper's "largest volume").
    @property
    def contact_map_elems(self) -> int:
        return self.frames * 64

    @property
    def point_cloud_elems(self) -> int:
        return self.frames * 16

    @property
    def scalar_elems(self) -> int:
        return self.frames

    def sim_file(self, iteration: int, task: int) -> str:
        return f"{self.data_dir}/stage{iteration:04d}_task{task:04d}.h5"

    def aggregated(self, iteration: int) -> str:
        return f"{self.data_dir}/aggregated_{iteration:04d}.h5"

    def embeddings(self, iteration: int, epoch: int) -> str:
        return f"{self.data_dir}/embeddings-epoch-{epoch}-iter{iteration:04d}.h5"

    def model(self, iteration: int) -> str:
        return f"{self.data_dir}/model_{iteration:04d}.h5"

    def inference_out(self, iteration: int) -> str:
        return f"{self.data_dir}/virtual_stage{iteration:04d}_task0000.h5"


_DATASETS = ("contact_map", "point_cloud", "fnc", "rmsd")


def _sizes(p: DdmdParams) -> dict:
    return {
        "contact_map": p.contact_map_elems,
        "point_cloud": p.point_cloud_elems,
        "fnc": p.scalar_elems,
        "rmsd": p.scalar_elems,
    }


def _layout_kwargs(p: DdmdParams, elems: int) -> dict:
    if p.layout == "chunked":
        return {"layout": "chunked", "chunks": (min(p.chunk_elems, elems),)}
    return {"layout": p.layout}


def build_ddmd(params: DdmdParams) -> Workflow:
    """Assemble the DDMD pipeline (self-contained: simulations create
    their own inputs)."""
    p = params
    wf = Workflow("ddmd")
    for iteration in range(p.iterations):
        wf.add_stage(_openmm_stage(p, iteration))
        wf.add_stage(_aggregate_stage(p, iteration))
        wf.add_stage(_training_stage(p, iteration))
        wf.add_stage(_inference_stage(p, iteration))
    return wf


def _openmm_stage(p: DdmdParams, iteration: int) -> Stage:
    def openmm(task_idx: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(1000 * iteration + task_idx)
            f = rt.open(p.sim_file(iteration, task_idx), "w")
            for name, elems in _sizes(p).items():
                f.create_dataset(
                    name, shape=(elems,), dtype="f4",
                    data=rng.random(elems, dtype=np.float32),
                    **_layout_kwargs(p, elems),
                )
            f.close()
        return fn

    return Stage(f"openmm_{iteration:04d}", [
        Task(f"openmm_{iteration:04d}_{i:04d}", openmm(i),
             compute_seconds=p.compute_seconds)
        for i in range(p.n_sim_tasks)
    ])


def _aggregate_stage(p: DdmdParams, iteration: int) -> Stage:
    def aggregate(rt: TaskRuntime) -> None:
        collected = {name: [] for name in _DATASETS}
        for i in range(p.n_sim_tasks):
            f = rt.open(p.sim_file(iteration, i), "r")
            for name in _DATASETS:
                collected[name].append(f[name].read())
            f.close()
        out = rt.open(p.aggregated(iteration), "w")
        for name in _DATASETS:
            merged = np.concatenate(collected[name])
            out.create_dataset(
                name, shape=(merged.size,), dtype="f4", data=merged,
                **_layout_kwargs(p, merged.size),
            )
        out.close()

    return Stage(
        f"aggregate_{iteration:04d}",
        [Task(f"aggregate_{iteration:04d}", aggregate,
              compute_seconds=p.compute_seconds)],
        parallel=False,
    )


def _training_stage(p: DdmdParams, iteration: int) -> Stage:
    def training(rt: TaskRuntime) -> None:
        rng = np.random.default_rng(500 + iteration)
        agg = rt.open(p.aggregated(iteration), "r")
        # The paper's key finding: contact_map is opened (metadata only)
        # but its data is never read from the aggregated file...
        _ = agg["contact_map"].shape
        for name in ("point_cloud", "fnc", "rmsd"):
            agg[name].read()
        agg.close()
        # ...the contact_map data training does use comes from one
        # simulation output directly (Figure 7, circle 2).
        sim = rt.open(p.sim_file(iteration, 0), "r")
        sim["contact_map"].read()
        sim.close()
        # Epoch loop: write an embeddings file per epoch.
        emb_elems = p.point_cloud_elems
        for epoch in range(1, p.epochs + 1):
            f = rt.open(p.embeddings(iteration, epoch), "w")
            f.create_dataset(
                "embeddings", shape=(emb_elems,), dtype="f4",
                data=rng.random(emb_elems, dtype=np.float32),
                **_layout_kwargs(p, emb_elems),
            )
            f.close()
        # Read-after-write reuse of specific embedding files (5 and 10).
        for epoch in (5, 10):
            if epoch <= p.epochs:
                f = rt.open(p.embeddings(iteration, epoch), "r")
                f["embeddings"].read()
                f.close()
        model = rt.open(p.model(iteration), "w")
        model.create_dataset("weights", shape=(p.frames,), dtype="f4",
                             data=rng.random(p.frames, dtype=np.float32))
        model.close()

    return Stage(
        f"training_{iteration:04d}",
        [Task(f"training_{iteration:04d}", training,
              compute_seconds=p.compute_seconds * 4)],
        parallel=False,
    )


def _inference_stage(p: DdmdParams, iteration: int) -> Stage:
    def inference(rt: TaskRuntime) -> None:
        for i in range(p.n_sim_tasks):
            f = rt.open(p.sim_file(iteration, i), "r")
            for name in _DATASETS:
                f[name].read()
            f.close()
        model = rt.open(p.model(iteration), "r")
        model["weights"].read()
        model.close()
        out = rt.open(p.inference_out(iteration), "w")
        out.create_dataset("outliers", shape=(p.frames,), dtype="i4",
                           data=np.zeros(p.frames, dtype=np.int32))
        out.close()

    return Stage(
        f"inference_{iteration:04d}",
        [Task(f"inference_{iteration:04d}", inference,
              compute_seconds=p.compute_seconds * 2)],
        parallel=False,
    )
