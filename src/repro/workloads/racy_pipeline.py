"""The racy-pipeline workload: DY5xx race-detector ground truth.

Every scenario the happens-before rule family (:mod:`repro.lint.race`)
must classify, seeded deliberately and nothing else:

- **true WAW race** — ``jet_a`` and ``jet_b`` each (re)create ``/jets``
  in the same file from the same parallel stage, no reads anywhere, so
  neither the dependency DAG nor the schedule orders them.  DY501 must
  convict with an overlap and a reorder witness.
- **barrier-masked WAW race** — ``mask_early`` (produce stage) and
  ``mask_late`` (refine stage) both rewrite ``/mask``.  The stage
  barrier orders them as executed, but no dataflow dependency does:
  DY501 still convicts, and the pair appears in the DY504
  schedule-sensitivity report as a must-preserve edge.
- **disjoint-selection trap** — ``half_lo`` / ``half_hi`` write
  byte-disjoint halves of ``/field`` (declared via hyperslab
  selections).  Unordered, yes — but provably non-overlapping, so DY501
  must *downgrade* to a warning, not convict.
- **read-write race** — ``probe`` reads ``/series`` in the produce
  stage; ``amend`` read-modify-writes it one barrier later.  Nothing
  dataflow-orders probe's read against amend's write: DY502.
- **metadata race** — ``grow_log`` resizes ``/log`` (pure metadata
  mutation) while ``shape_probe`` reads its data in the same stage:
  DY503.
- **retry-exposed race** — ``bump_state`` read-modify-writes
  ``/state`` and, under :func:`racy_fault_spec`, loses its first
  attempt to a transient device error.  The retry succeeds, but the
  attempt history (``WorkflowResult.attempts``) proves the update is
  non-idempotent under replay: DY505, given ``--attempts``.

The init tasks write every pre-existing file *with data* and the
consumers read them, so all intended orderings are dependency-carried in
both the trace-derived DAG and the static contract DAG — the seeded
races are the **only** dependency-concurrent conflicts, which is what
makes the workload a ground-truth fixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.spec import DeviceFault, FaultSpec
from repro.workflow.contracts import (
    TaskContract,
    creates,
    reads,
    resizes,
    writes,
)
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["RacyParams", "build_racy_pipeline", "racy_fault_spec"]


@dataclass(frozen=True)
class RacyParams:
    """Racy-pipeline configuration.

    Attributes:
        data_dir: Shared-mount directory for all files.
        elems: Elements per dataset (``/field`` gets twice this so the
            halves split evenly).
    """

    data_dir: str = "/beegfs/racy"
    elems: int = 1024

    def __post_init__(self) -> None:
        if self.elems < 2:
            raise ValueError("racy-pipeline needs at least 2 elements")

    @property
    def waw_path(self) -> str:
        return f"{self.data_dir}/waw.h5"

    @property
    def mask_path(self) -> str:
        return f"{self.data_dir}/mask.h5"

    @property
    def disjoint_path(self) -> str:
        return f"{self.data_dir}/disjoint.h5"

    @property
    def rw_path(self) -> str:
        return f"{self.data_dir}/rw.h5"

    @property
    def meta_path(self) -> str:
        return f"{self.data_dir}/meta.h5"

    @property
    def retry_path(self) -> str:
        return f"{self.data_dir}/retry.h5"

    @property
    def field_elems(self) -> int:
        return 2 * (self.elems // 2) * 2  # even split, twice the base


def build_racy_pipeline(params: RacyParams | None = None) -> Workflow:
    """setup → produce (parallel) → refine (parallel) → final."""
    from repro.hdf5 import Selection

    p = params or RacyParams()
    n = p.elems
    half = p.field_elems // 2

    def _filler(seed: int, count: int) -> np.ndarray:
        return np.random.default_rng(seed).random(count, dtype=np.float32)

    # -- setup: every pre-existing file, written with data so the
    # consumers' reads become dependency edges ------------------------
    def init_meta(rt: TaskRuntime) -> None:
        f = rt.open(p.meta_path, "w")
        f.create_dataset("/log", shape=(n,), dtype="f4", layout="chunked",
                         chunks=(max(n // 8, 1),), data=_filler(1, n))
        f.close()

    def init_state(rt: TaskRuntime) -> None:
        f = rt.open(p.retry_path, "w")
        f.create_dataset("/state", shape=(n,), dtype="f4",
                         data=_filler(2, n))
        f.close()

    def init_series(rt: TaskRuntime) -> None:
        f = rt.open(p.rw_path, "w")
        f.create_dataset("/series", shape=(n,), dtype="f4",
                         data=_filler(3, n))
        f.close()

    # -- produce -------------------------------------------------------
    def jet_writer(seed: int):
        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.waw_path, "w")
            f.create_dataset("/jets", shape=(n,), dtype="f4",
                             data=_filler(seed, n))
            f.close()
        return fn

    def mask_writer(seed: int):
        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.mask_path, "w")
            f.create_dataset("/mask", shape=(n,), dtype="f4",
                             data=_filler(seed, n))
            f.close()
        return fn

    def probe(rt: TaskRuntime) -> None:
        f = rt.open(p.rw_path, "r")
        f["/series"].read()
        f.close()

    # -- refine --------------------------------------------------------
    def half_writer(seed: int, start: int):
        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.disjoint_path, "w")
            ds = f.create_dataset("/field", shape=(p.field_elems,),
                                  dtype="f4")
            ds.write(_filler(seed, half),
                     Selection.hyperslab(((start, half),)))
            f.close()
        return fn

    def shape_probe(rt: TaskRuntime) -> None:
        f = rt.open(p.meta_path, "r")
        f["/log"].read()
        f.close()

    def grow_log(rt: TaskRuntime) -> None:
        f = rt.open(p.meta_path, "r+")
        f["/log"].resize((2 * n,))
        f.close()

    def amend(rt: TaskRuntime) -> None:
        f = rt.open(p.rw_path, "r+")
        series = f["/series"].read()
        f["/series"].write(np.asarray(series, dtype=np.float32) * 0.5)
        f.close()

    def bump_state(rt: TaskRuntime) -> None:
        f = rt.open(p.retry_path, "r+")
        state = f["/state"].read()
        f["/state"].write(np.asarray(state, dtype=np.float32) + 1.0)
        f.close()

    # -- final ---------------------------------------------------------
    def audit_state(rt: TaskRuntime) -> None:
        f = rt.open(p.retry_path, "r")
        f["/state"].read()
        f.close()

    def _full(op, path: str, dataset: str):
        return op(path, dataset, elements=n)

    return Workflow("racy_pipeline", [
        Stage("setup", [
            Task("racy_init_meta", init_meta, contract=TaskContract.declare(
                creates(p.meta_path, "/log", shape=(n,), dtype="f4",
                        layout="chunked", elements=n))),
            Task("racy_init_state", init_state,
                 contract=TaskContract.declare(
                     creates(p.retry_path, "/state", shape=(n,),
                             dtype="f4", elements=n))),
            Task("racy_init_series", init_series,
                 contract=TaskContract.declare(
                     creates(p.rw_path, "/series", shape=(n,),
                             dtype="f4", elements=n))),
        ], parallel=False),
        Stage("produce", [
            Task("racy_jet_a", jet_writer(11),
                 contract=TaskContract.declare(
                     creates(p.waw_path, "/jets", shape=(n,), dtype="f4",
                             elements=n))),
            Task("racy_jet_b", jet_writer(12),
                 contract=TaskContract.declare(
                     creates(p.waw_path, "/jets", shape=(n,), dtype="f4",
                             elements=n))),
            Task("racy_mask_early", mask_writer(13),
                 contract=TaskContract.declare(
                     creates(p.mask_path, "/mask", shape=(n,), dtype="f4",
                             elements=n))),
            Task("racy_probe", probe, contract=TaskContract.declare(
                _full(reads, p.rw_path, "/series"))),
        ]),
        Stage("refine", [
            Task("racy_mask_late", mask_writer(14),
                 contract=TaskContract.declare(
                     creates(p.mask_path, "/mask", shape=(n,), dtype="f4",
                             elements=n))),
            Task("racy_half_lo", half_writer(15, 0),
                 contract=TaskContract.declare(
                     creates(p.disjoint_path, "/field",
                             shape=(p.field_elems,), dtype="f4",
                             elements=0),
                     writes(p.disjoint_path, "/field", elements=half,
                            select=((0, half),)))),
            Task("racy_half_hi", half_writer(16, half),
                 contract=TaskContract.declare(
                     creates(p.disjoint_path, "/field",
                             shape=(p.field_elems,), dtype="f4",
                             elements=0),
                     writes(p.disjoint_path, "/field", elements=half,
                            select=((half, half),)))),
            Task("racy_shape_probe", shape_probe,
                 contract=TaskContract.declare(
                     _full(reads, p.meta_path, "/log"))),
            # The conditional read models the resize consulting the
            # current shape — it carries the init_meta → grow_log
            # dependency in the static DAG exactly as the superblock
            # read does in the traced one, without promising raw I/O.
            Task("racy_grow_log", grow_log, contract=TaskContract.declare(
                resizes(p.meta_path, "/log", shape=(2 * n,)),
                reads(p.meta_path, "/log", conditional=True))),
            Task("racy_amend", amend, contract=TaskContract.declare(
                _full(reads, p.rw_path, "/series"),
                _full(writes, p.rw_path, "/series"))),
            Task("racy_bump_state", bump_state,
                 contract=TaskContract.declare(
                     _full(reads, p.retry_path, "/state"),
                     _full(writes, p.retry_path, "/state"))),
        ]),
        Stage("final", [
            Task("racy_audit_state", audit_state,
                 contract=TaskContract.declare(
                     _full(reads, p.retry_path, "/state"))),
        ], parallel=False),
    ])


def racy_fault_spec(params: RacyParams | None = None,
                    backoff: float = 0.25,
                    n_nodes: int = 2) -> FaultSpec:
    """The fault plan that makes ``bump_state`` lose its first attempt.

    A deterministic fault-free dry run (same cluster shape, same
    simulated clock) locates ``bump_state``'s execution window; the spec
    then opens a ``rate=1.0`` transient *write* fault on ``retry.h5``
    over exactly that window.  Attempt one's state write lands inside it
    and fails; the retry, pushed past the window end by the ``backoff``
    wait, succeeds.  Nothing else writes the file inside the window
    (``audit_state`` only reads), so exactly one task retries.

    Pair with ``RetryPolicy(backoff_base=backoff)`` (and a backoff
    factor ≥ 1) on the runner that consumes this spec.
    """
    from repro.cluster.configs import gpu_cluster
    from repro.mapper.config import DaYuConfig
    from repro.mapper.mapper import DataSemanticMapper
    from repro.simclock import SimClock
    from repro.workflow.runner import WorkflowRunner

    p = params or RacyParams()
    clock = SimClock()
    cluster = gpu_cluster(clock, n_nodes=n_nodes)
    mapper = DataSemanticMapper(clock, DaYuConfig())
    runner = WorkflowRunner(cluster, mapper)
    result = runner.run(build_racy_pipeline(p))
    span = result.profiles["racy_bump_state"].span
    margin = 0.2 * backoff
    if span.end - span.start + margin >= backoff:
        raise ValueError(
            "bump_state runs longer than the retry backoff; the fault "
            "window cannot separate the two attempts — raise backoff")
    return FaultSpec(seed=11, device_faults=(
        DeviceFault(p.retry_path, "transient", rate=1.0, ops="write",
                    start=span.start, end=span.end + margin),
    ))
