"""ARLDM: auto-regressive latent diffusion image synthesis — data prep.

Reproduces the paper's Section VI-C workload: a three-stage workflow whose
first stage, ``arldm_saveh5``, packs image and text data into
``flintstones_out.h5`` as 1-D arrays of *variable-length* elements
(``image0``..``image4`` plus ``text``); training then reads the image
datasets and inference reads datasets selectively.

Over 90% of the volume is variable-length — the property that makes the
contiguous-vs-chunked layout choice decisive (the paper's Figures 8 and
13c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cluster.cluster import Cluster
from repro.hdf5 import Selection
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["ArldmParams", "prepare_arldm_inputs", "build_arldm"]


@dataclass(frozen=True)
class ArldmParams:
    """Workload scale knobs (defaults test-sized).

    Attributes:
        data_dir: Shared working directory.
        n_image_datasets: Image datasets (paper: image0..image4).
        items: Variable-length elements per dataset (stories).
        avg_image_bytes: Mean image element size (sizes vary ±50%).
        avg_text_bytes: Mean text element size.
        layout: ``"contiguous"`` (ARLDM's default) or ``"chunked"`` (the
            paper's optimized layout).
        chunks: Elements per chunk when chunked (the paper sweeps 5 and 10
            chunks per dataset).
        heap_data_capacity: Global-heap collection size for the output file.
        compute_seconds: Modeled compute per task.
    """

    data_dir: str = "/pfs/arldm"
    n_image_datasets: int = 5
    items: int = 40
    avg_image_bytes: int = 2048
    avg_text_bytes: int = 128
    layout: str = "contiguous"
    chunks: int = 8
    heap_data_capacity: int = 65536
    compute_seconds: float = 0.05

    @property
    def out_file(self) -> str:
        return f"{self.data_dir}/flintstones_out.h5"

    @property
    def train_out(self) -> str:
        return f"{self.data_dir}/arldm_model.h5"

    @property
    def inference_out(self) -> str:
        return f"{self.data_dir}/generated.h5"


def _image_elements(p: ArldmParams, dataset_idx: int) -> List[bytes]:
    """Deterministic variable-length fake image blobs (±50% size spread)."""
    rng = np.random.default_rng(42 + dataset_idx)
    sizes = rng.integers(
        max(p.avg_image_bytes // 2, 1), p.avg_image_bytes * 3 // 2 + 1, p.items
    )
    return [bytes([dataset_idx % 256]) * int(s) for s in sizes]


def _text_elements(p: ArldmParams) -> List[str]:
    rng = np.random.default_rng(99)
    sizes = rng.integers(max(p.avg_text_bytes // 2, 1),
                         p.avg_text_bytes * 3 // 2 + 1, p.items)
    return ["t" * int(s) for s in sizes]


def prepare_arldm_inputs(cluster: Cluster, params: ArldmParams) -> None:
    """No external inputs: arldm_saveh5 synthesizes its own data.

    Present for interface symmetry with the other workloads.
    """


def build_arldm(params: ArldmParams) -> Workflow:
    """Assemble the three-stage ARLDM workflow."""
    p = params
    layout_kwargs = (
        {"layout": "chunked", "chunks": (max(p.items // p.chunks, 1),)}
        if p.layout == "chunked"
        else {"layout": "contiguous"}
    )

    # ------------------ stage 1: data preparation ---------------------
    def saveh5(rt: TaskRuntime) -> None:
        f = rt.open(p.out_file, "w", heap_data_capacity=p.heap_data_capacity)
        for d in range(p.n_image_datasets):
            f.create_dataset(
                f"image{d}", shape=(p.items,), dtype="vlen-bytes",
                data=_image_elements(p, d), **layout_kwargs,
            )
        f.create_dataset(
            "text", shape=(p.items,), dtype="vlen-str",
            data=_text_elements(p), **layout_kwargs,
        )
        f.close()

    stage1 = Stage(
        "arldm_prepare",
        [Task("arldm_saveh5", saveh5, compute_seconds=p.compute_seconds)],
        parallel=False,
    )

    # ---------------------- stage 2: training -------------------------
    def train(rt: TaskRuntime) -> None:
        f = rt.open(p.out_file, "r", heap_data_capacity=p.heap_data_capacity)
        for d in range(p.n_image_datasets):
            f[f"image{d}"].read()
        f["text"].read()
        f.close()
        out = rt.open(p.train_out, "w")
        out.create_dataset("weights", shape=(1024,), dtype="f4",
                           data=np.zeros(1024, dtype=np.float32))
        out.close()

    stage2 = Stage(
        "arldm_train",
        [Task("arldm_train", train, compute_seconds=p.compute_seconds * 4)],
        parallel=False,
    )

    # --------------------- stage 3: inference -------------------------
    def inference(rt: TaskRuntime) -> None:
        f = rt.open(p.out_file, "r", heap_data_capacity=p.heap_data_capacity)
        # Inference conditions on text plus a *subset* of the stories.
        f["text"].read()
        subset = max(p.items // 4, 1)
        f["image0"].read(Selection.hyperslab(((0, subset),)))
        f.close()
        model = rt.open(p.train_out, "r")
        model["weights"].read()
        model.close()
        out = rt.open(p.inference_out, "w")
        out.create_dataset(
            "generated", shape=(subset,), dtype="vlen-bytes",
            data=[b"g" * p.avg_image_bytes for _ in range(subset)],
        )
        out.close()

    stage3 = Stage(
        "arldm_inference",
        [Task("arldm_inference", inference, compute_seconds=p.compute_seconds * 2)],
        parallel=False,
    )

    return Workflow("arldm", [stage1, stage2, stage3])
