"""The bundled-workload registry: name → (workflow, input preparer).

Every CLI that takes a workload by name — ``dayu-run``, the
``dayu-lint --static``/``--diff`` modes, CI smoke jobs — resolves it
here, so the set of bundled case studies and their default scales live
in exactly one place.  Data directories default to ``/beegfs/...``
because that is the shared mount :func:`~repro.experiments.common
.fresh_env` provisions.

:func:`build_workload` returns ``(workflow, prepare)`` where ``prepare``
is either ``None`` or a callable taking the simulated cluster that
stages the workload's external input files.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.workflow.model import Workflow

__all__ = ["WORKLOADS", "build_workload"]

WORKLOADS = ("pyflextrkr", "ddmd", "arldm", "h5bench", "h5bench-shared",
             "climate", "corner", "corner-hazards", "chaos",
             "racy-pipeline", "perf-hazards")

Prepare = Optional[Callable]


def build_workload(name: str, scale: float = 1.0) -> Tuple[Workflow, Prepare]:
    """Instantiate a bundled workload (and its input preparer) at a scale."""
    if name == "pyflextrkr":
        from repro.workloads.pyflextrkr import (
            PyflextrkrParams, build_pyflextrkr, prepare_pyflextrkr_inputs)

        params = PyflextrkrParams(
            data_dir="/beegfs/flex",
            n_files=max(int(8 * scale), 2),
            grid=max(int(4096 * scale), 64),
            n_parallel=max(int(4 * scale), 1),
        )
        return build_pyflextrkr(params), (
            lambda cluster: prepare_pyflextrkr_inputs(cluster, params))
    if name == "ddmd":
        from repro.workloads.ddmd import DdmdParams, build_ddmd

        params = DdmdParams(
            data_dir="/beegfs/ddmd",
            n_sim_tasks=max(int(12 * scale), 2),
            frames=max(int(512 * scale), 16),
            chunk_elems=max(int(512 * scale), 16),
        )
        return build_ddmd(params), None
    if name == "arldm":
        from repro.workloads.arldm import ArldmParams, build_arldm

        params = ArldmParams(
            data_dir="/beegfs/arldm",
            items=max(int(20 * scale), 4),
            avg_image_bytes=max(int(8192 * scale), 256),
        )
        return build_arldm(params), None
    if name in ("h5bench", "h5bench-shared"):
        from repro.workloads.h5bench import H5benchParams, build_h5bench_write

        params = H5benchParams(
            data_dir="/beegfs/h5bench",
            n_procs=max(int(4 * scale), 1),
            bytes_per_proc=max(int((1 << 21) * scale), 1 << 12),
            shared_file=(name == "h5bench-shared"),
        )
        return build_h5bench_write(params), None
    if name == "climate":
        from repro.workloads.climate import ClimateParams, build_climate

        params = ClimateParams(
            data_dir="/beegfs/climate",
            n_models=max(int(4 * scale), 2),
            timesteps=max(int(8 * scale), 2),
            cells=max(int(256 * scale), 16),
        )
        return build_climate(params), None
    if name in ("corner", "corner-hazards"):
        from repro.workloads.corner_case import CornerCaseParams, build_corner_case

        params = CornerCaseParams(
            data_dir="/beegfs/corner",
            n_datasets=200,
            file_bytes=max(int((10 << 20) * scale), 200 * 4),
            read_repeats=10,
            # The hazard variant appends intentionally racy tasks — the
            # dayu-lint ground-truth fixture (see repro.lint).
            seed_hazards=(name == "corner-hazards"),
        )
        return build_corner_case(params), None
    if name == "racy-pipeline":
        from repro.workloads.racy_pipeline import (
            RacyParams, build_racy_pipeline)

        params = RacyParams(
            data_dir="/beegfs/racy",
            elems=max(int(1024 * scale), 8),
        )
        return build_racy_pipeline(params), None
    if name == "perf-hazards":
        from repro.workloads.perf_hazards import (
            PerfHazardsParams, build_perf_hazards)

        params = PerfHazardsParams(
            data_dir="/beegfs/perf",
            grid=max(int((16 << 20) * scale), 64),
            journal_ops=max(int(2048 * scale), 8),
        )
        return build_perf_hazards(params), None
    if name == "chaos":
        from repro.workloads.chaos import ChaosParams, build_chaos

        params = ChaosParams(
            data_dir="/beegfs/chaos",
            n_parts=max(int(6 * scale), 2),
            elems_per_part=max(int(4096 * scale), 64),
        )
        return build_chaos(params), None
    raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOADS}")
