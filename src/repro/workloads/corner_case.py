"""The corner-case Python benchmark: DaYu's worst-case overhead driver.

The paper's custom benchmark "creates a corner-case scenario with an
unusually large number (200) of datasets stored in a small file", then
repeatedly re-reads them within a single task: every open/close and access
hits DaYu's trackers while moving almost no data, so the profilers' fixed
per-event costs dominate — the regime of Figures 9c-d and 10b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["CornerCaseParams", "build_corner_case"]


@dataclass(frozen=True)
class CornerCaseParams:
    """Benchmark configuration.

    Attributes:
        data_dir: Target directory.
        n_datasets: Datasets in the file (paper: 200).
        file_bytes: Total raw data across all datasets (paper: 200 MB).
        read_repeats: Times each dataset is re-read after creation — the
            swept axis of Figure 9c (dataset I/O operation count).
        seed_hazards: Append a second file with intentional dataflow
            hazards — two unordered tasks truncating and rewriting the
            same dataset (a WAW race: dayu-lint DY203) and a third task
            reading a dataset whose data was never written (a phantom
            read: DY102).  Off by default so the overhead experiments and
            benchmarks keep the paper's single-task shape; on, the
            workload is the lint test fixture.
    """

    data_dir: str = "/pfs/corner"
    n_datasets: int = 200
    file_bytes: int = 2 << 20
    read_repeats: int = 4
    seed_hazards: bool = False

    def __post_init__(self) -> None:
        if self.n_datasets < 1 or self.file_bytes < self.n_datasets * 4:
            raise ValueError("corner-case parameters too small")
        if self.read_repeats < 0:
            raise ValueError("read_repeats must be non-negative")

    @property
    def out_file(self) -> str:
        return f"{self.data_dir}/corner_case.h5"

    @property
    def hazard_file(self) -> str:
        return f"{self.data_dir}/hazard.h5"

    @property
    def elems_per_dataset(self) -> int:
        return max(self.file_bytes // (4 * self.n_datasets), 1)

    @property
    def dataset_io_operations(self) -> int:
        """Total dataset-level accesses (the Figure 9c x-axis)."""
        return self.n_datasets * (1 + self.read_repeats)


def build_corner_case(params: CornerCaseParams) -> Workflow:
    """One task: create ``n_datasets`` datasets, then re-read them all
    ``read_repeats`` times (fresh handle each time → open/close churn)."""
    p = params

    def body(rt: TaskRuntime) -> None:
        rng = np.random.default_rng(0)
        f = rt.open(p.out_file, "w")
        payload = rng.random(p.elems_per_dataset, dtype=np.float32)
        for d in range(p.n_datasets):
            f.create_dataset(f"d{d:04d}", shape=(p.elems_per_dataset,),
                             dtype="f4", data=payload)
        for _ in range(p.read_repeats):
            for d in range(p.n_datasets):
                # Fresh lookup per read: each is an object open + access +
                # close, the pattern that stresses the Access Tracker.
                f[f"d{d:04d}"].read()
        f.close()

    stages = [Stage("corner", [Task("corner_case", body)], parallel=False)]
    if p.seed_hazards:
        stages.append(_hazard_stage(p))
    return Workflow("corner_case", stages)


def _hazard_stage(p: CornerCaseParams) -> Stage:
    """Intentionally hazardous tasks — the dayu-lint ground-truth fixture.

    Both writers open the hazard file with mode ``"w"`` (truncate), which
    performs no reads, so the trace-derived dependency DAG gives them no
    ordering edge: rewriting the same ``dup`` dataset at the same offsets
    is an unordered overlapping double write (DY203/WAW).  ``ghost`` is
    created with a shape but its data is never written by anyone, and the
    reader consumes it anyway (DY102 phantom read — zero-filled content).
    """
    n = max(p.elems_per_dataset, 1)

    def writer_a(rt: TaskRuntime) -> None:
        f = rt.open(p.hazard_file, "w")
        f.create_dataset("dup", shape=(n,), dtype="f4",
                         data=np.full(n, 1.0, dtype=np.float32))
        f.close()

    def writer_b(rt: TaskRuntime) -> None:
        f = rt.open(p.hazard_file, "w")
        f.create_dataset("dup", shape=(n,), dtype="f4",
                         data=np.full(n, 2.0, dtype=np.float32))
        f.create_dataset("ghost", shape=(n,), dtype="f4")
        f.close()

    def phantom_reader(rt: TaskRuntime) -> None:
        f = rt.open(p.hazard_file, "r")
        f["dup"].read()
        f["ghost"].read()
        f.close()

    # Declared contracts: honest about the hazardous access pattern, so
    # the DY40x pre-run rules fire from the declarations alone (and the
    # DY409 declared-vs-inferred reconciliation stays silent).
    from repro.workflow.contracts import TaskContract, creates, reads

    return Stage("hazards", [
        Task("hazard_writer_a", writer_a, contract=TaskContract.declare(
            creates(p.hazard_file, "dup", shape=(n,), dtype="f4",
                    elements=n))),
        Task("hazard_writer_b", writer_b, contract=TaskContract.declare(
            creates(p.hazard_file, "dup", shape=(n,), dtype="f4",
                    elements=n),
            creates(p.hazard_file, "ghost", shape=(n,), dtype="f4",
                    elements=0))),
        Task("hazard_phantom_reader", phantom_reader,
             contract=TaskContract.declare(
                 reads(p.hazard_file, "dup", elements=n),
                 reads(p.hazard_file, "ghost", elements=n))),
    ], parallel=False)
