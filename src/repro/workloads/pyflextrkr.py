"""PyFLEXTRKR: the nine-stage storm-tracking analysis pipeline.

Reproduces the dataflow of the paper's Figure 4:

====== ================ ============================================== =====
Stage  Task             Reads → writes                                 Par.
====== ================ ============================================== =====
1      run_idfeature    sensor_i.h5 → feature_i.h5                     yes
2      run_tracksingle  feature_i, feature_{i+1} → track_i.h5          yes
3      run_gettracks    ALL track + feature files → tracks_all.h5
                        (write-after-read: renumber pass)              yes*
4      run_trackstats   feature files + tracks_all → trackstats.h5     no
5      run_identifymcs  trackstats → mcs.h5                            no
6      run_robustmcs    mcs + feature files + terrain_j.h5 (external,
                        first needed here) → robust_mcs.h5             no
7      run_matchpf      robust_mcs → matchpf.h5                        no
8      run_mapfeature   matchpf + feature files → map_i.h5             yes
9      run_speed        map files → speed_stats_i.h5 (32 tiny datasets
                        per file, re-read repeatedly — the scattering
                        bottleneck of Figure 5)                        yes
====== ================ ============================================== =====

The observations the paper circles in Figure 4 all emerge: stage-1 output
reuse by stages 2/3/4/6/8, the stage-3 write-after-read, the stage-6
time-dependent inputs, and disposable initial inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.hdf5 import H5File
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["PyflextrkrParams", "prepare_pyflextrkr_inputs", "build_pyflextrkr"]


@dataclass(frozen=True)
class PyflextrkrParams:
    """Workload scale knobs.

    Defaults are test-sized; benchmarks pass larger values.

    Attributes:
        data_dir: Shared-filesystem working directory.
        n_files: Sensor input files (time steps).
        grid: Elements per sensor grid (f4 each).
        n_parallel: Task fan-out of the parallel stages (1, 2, 8).
        n_terrain: External calibration files first needed at stage 6.
        small_datasets: Tiny datasets per stage-9 output file (paper: 32).
        small_elems: Elements per tiny dataset (i4; 100 elems = 400 B).
        speed_reads: Times stage 9 re-reads each tiny dataset (paper: 23).
        compute_seconds: Modeled compute per task.
    """

    data_dir: str = "/pfs/flex"
    n_files: int = 8
    grid: int = 4096
    n_parallel: int = 4
    n_terrain: int = 2
    small_datasets: int = 32
    small_elems: int = 100
    speed_reads: int = 23
    compute_seconds: float = 0.05

    @property
    def input_dir(self) -> str:
        return f"{self.data_dir}/input"

    def sensor(self, i: int) -> str:
        return f"{self.input_dir}/sensor_{i:03d}.h5"

    def terrain(self, j: int) -> str:
        return f"{self.input_dir}/terrain_{j}.h5"

    def feature(self, i: int) -> str:
        return f"{self.data_dir}/feature/feature_{i:03d}.h5"

    def track(self, i: int) -> str:
        return f"{self.data_dir}/track/track_{i:03d}.h5"

    @property
    def tracks_all(self) -> str:
        return f"{self.data_dir}/tracks_all.h5"

    @property
    def trackstats(self) -> str:
        return f"{self.data_dir}/trackstats.h5"

    @property
    def mcs(self) -> str:
        return f"{self.data_dir}/mcs.h5"

    @property
    def robust_mcs(self) -> str:
        return f"{self.data_dir}/robust_mcs.h5"

    @property
    def matchpf(self) -> str:
        return f"{self.data_dir}/matchpf.h5"

    def map_file(self, i: int) -> str:
        return f"{self.data_dir}/map/map_{i:03d}.h5"

    def speed_file(self, i: int) -> str:
        return f"{self.data_dir}/speed/speed_stats_{i:03d}.h5"


def prepare_pyflextrkr_inputs(cluster: Cluster, params: PyflextrkrParams) -> None:
    """Create the external inputs: sensor grids and terrain calibration.

    These exist before the workflow starts (and outside DaYu's profiling),
    like the LES simulation outputs the analysis phase consumes.
    """
    rng = np.random.default_rng(7)
    for i in range(params.n_files):
        with H5File(cluster.fs, params.sensor(i), "w") as f:
            f.create_dataset(
                "radar", shape=(params.grid,), dtype="f4",
                data=rng.random(params.grid, dtype=np.float32),
            )
    for j in range(params.n_terrain):
        with H5File(cluster.fs, params.terrain(j), "w") as f:
            f.create_dataset(
                "terrain", shape=(params.grid // 4,), dtype="f4",
                data=rng.random(params.grid // 4, dtype=np.float32),
            )


def _shard(n_items: int, n_workers: int, worker: int) -> range:
    """The contiguous item range worker ``worker`` of ``n_workers`` owns."""
    base = n_items // n_workers
    extra = n_items % n_workers
    start = worker * base + min(worker, extra)
    count = base + (1 if worker < extra else 0)
    return range(start, start + count)


def build_pyflextrkr(params: PyflextrkrParams) -> Workflow:
    """Assemble the nine-stage workflow (inputs must already exist)."""
    p = params

    # ---------------- stage 1: feature identification ----------------
    def idfeature(worker: int):
        def fn(rt: TaskRuntime) -> None:
            for i in _shard(p.n_files, p.n_parallel, worker):
                src = rt.open(p.sensor(i), "r")
                radar = src["radar"].read()
                src.close()
                dst = rt.open(p.feature(i), "w")
                dst.create_dataset("features", shape=(p.grid,), dtype="f4",
                                   data=np.abs(radar))
                dst.create_dataset("mask", shape=(p.grid,), dtype="i1",
                                   data=(radar > 0.5).astype(np.int8))
                dst.close()
        return fn

    stage1 = Stage("stage1_idfeature", [
        Task(f"run_idfeature_{k}", idfeature(k), compute_seconds=p.compute_seconds)
        for k in range(p.n_parallel)
    ])

    # ---------------- stage 2: single-step tracking -------------------
    def tracksingle(worker: int):
        def fn(rt: TaskRuntime) -> None:
            pairs = max(p.n_files - 1, 0)
            for i in _shard(pairs, p.n_parallel, worker):
                a = rt.open(p.feature(i), "r")
                b = rt.open(p.feature(i + 1), "r")
                mask_a = a["mask"].read()
                mask_b = b["mask"].read()
                a.close()
                b.close()
                out = rt.open(p.track(i), "w")
                out.create_dataset(
                    "links", shape=(p.grid,), dtype="i4",
                    data=(mask_a.astype(np.int32) & mask_b.astype(np.int32)),
                )
                out.close()
        return fn

    stage2 = Stage("stage2_tracksingle", [
        Task(f"run_tracksingle_{k}", tracksingle(k), compute_seconds=p.compute_seconds)
        for k in range(p.n_parallel)
    ])

    # -------- stage 3: global track assembly (all-to-all + WAR) ------
    def gettracks(rt: TaskRuntime) -> None:
        # All-to-all with write-after-read (the paper's circle 1): every
        # track file is read, renumbered with global track ids, and
        # written back in place.
        links = []
        next_id = 1
        for i in range(max(p.n_files - 1, 0)):
            f = rt.open(p.track(i), "r+")
            local = f["links"].read()
            renumbered = np.where(
                local != 0,
                np.cumsum(local != 0).astype(np.int32) + next_id - 1,
                0,
            ).astype(np.int32)
            next_id = int(renumbered.max()) + 1 if renumbered.size else next_id
            f["links"].write(renumbered)
            f.close()
            links.append(renumbered)
        for i in range(p.n_files):
            f = rt.open(p.feature(i), "r")
            f["features"].read()
            f.close()
        merged = np.concatenate(links) if links else np.zeros(0, dtype=np.int32)
        out = rt.open(p.tracks_all, "w")
        out.create_dataset("tracks", shape=(merged.size,), dtype="i4", data=merged)
        out.close()

    stage3 = Stage("stage3_gettracks", [
        Task("run_gettracks", gettracks, compute_seconds=p.compute_seconds)
    ])

    # -------------- stage 4: track statistics (fan-in) ---------------
    def trackstats(rt: TaskRuntime) -> None:
        for i in range(p.n_files):
            f = rt.open(p.feature(i), "r")
            f["features"].read()
            f.close()
        f = rt.open(p.tracks_all, "r")
        tracks = f["tracks"].read()
        f.close()
        out = rt.open(p.trackstats, "w")
        n_tracks = max(int(tracks.max()) if tracks.size else 0, 1)
        out.create_dataset("lifetimes", shape=(n_tracks,), dtype="f4",
                           data=np.ones(n_tracks, dtype=np.float32))
        out.close()

    stage4 = Stage(
        "stage4_trackstats",
        [Task("run_trackstats", trackstats, compute_seconds=p.compute_seconds)],
        parallel=False,
    )

    # -------------------- stage 5: MCS identification -----------------
    def identifymcs(rt: TaskRuntime) -> None:
        f = rt.open(p.trackstats, "r")
        lifetimes = f["lifetimes"].read()
        f.close()
        out = rt.open(p.mcs, "w")
        out.create_dataset("mcs_ids", shape=(lifetimes.size,), dtype="i4",
                           data=np.arange(lifetimes.size, dtype=np.int32))
        out.close()

    stage5 = Stage(
        "stage5_identifymcs",
        [Task("run_identifymcs", identifymcs, compute_seconds=p.compute_seconds)],
        parallel=False,
    )

    # ------- stage 6: robust MCS (time-dependent external inputs) -----
    def robustmcs(rt: TaskRuntime) -> None:
        f = rt.open(p.mcs, "r")
        ids = f["mcs_ids"].read()
        f.close()
        for j in range(p.n_terrain):  # first (and only) use of terrain data
            t = rt.open(p.terrain(j), "r")
            t["terrain"].read()
            t.close()
        for i in range(p.n_files):
            f = rt.open(p.feature(i), "r")
            f["mask"].read()
            f.close()
        out = rt.open(p.robust_mcs, "w")
        out.create_dataset("robust_ids", shape=(ids.size,), dtype="i4", data=ids)
        out.close()

    stage6 = Stage(
        "stage6_robustmcs",
        [Task("run_robustmcs", robustmcs, compute_seconds=p.compute_seconds)],
        parallel=False,
    )

    # ------------------- stage 7: precipitation match -----------------
    def matchpf(rt: TaskRuntime) -> None:
        f = rt.open(p.robust_mcs, "r")
        ids = f["robust_ids"].read()
        f.close()
        out = rt.open(p.matchpf, "w")
        out.create_dataset("pf_match", shape=(ids.size,), dtype="i4", data=ids)
        out.close()

    stage7 = Stage(
        "stage7_matchpf",
        [Task("run_matchpf", matchpf, compute_seconds=p.compute_seconds)],
        parallel=False,
    )

    # -------------------- stage 8: feature mapping --------------------
    def mapfeature(worker: int):
        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.matchpf, "r")
            f["pf_match"].read()
            f.close()
            for i in _shard(p.n_files, p.n_parallel, worker):
                src = rt.open(p.feature(i), "r")
                features = src["features"].read()
                src.close()
                out = rt.open(p.map_file(i), "w")
                out.create_dataset("map", shape=(p.grid,), dtype="f4",
                                   data=features)
                out.close()
        return fn

    stage8 = Stage("stage8_mapfeature", [
        Task(f"run_mapfeature_{k}", mapfeature(k), compute_seconds=p.compute_seconds)
        for k in range(p.n_parallel)
    ])

    # ------ stage 9: speed statistics (the scattering bottleneck) -----
    def speed(worker: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(worker)
            for i in _shard(p.n_files, p.n_parallel, worker):
                src = rt.open(p.map_file(i), "r")
                src["map"].read()
                src.close()
                out = rt.open(p.speed_file(i), "w")
                for d in range(p.small_datasets):
                    out.create_dataset(
                        f"speed_{d:03d}", shape=(p.small_elems,), dtype="i1",
                        data=rng.integers(0, 100, p.small_elems).astype(np.int8),
                    )
                # Repeated small-dataset reads: the Figure 5 access storm.
                for _ in range(p.speed_reads):
                    for d in range(p.small_datasets):
                        out[f"speed_{d:03d}"].read()
                out.close()
        return fn

    stage9 = Stage("stage9_speed", [
        Task(f"run_speed_{k}", speed(k), compute_seconds=p.compute_seconds)
        for k in range(p.n_parallel)
    ])

    return Workflow(
        "pyflextrkr",
        [stage1, stage2, stage3, stage4, stage5, stage6, stage7, stage8, stage9],
    )
