"""An h5bench-style parallel I/O kernel.

The paper uses the h5bench suite as "a representative parallel I/O
benchmark designed for large-scale HDF5 workflows" to drive its overhead
scaling study (Figures 9a-b, 10a).  This module provides the equivalent
write and read kernels: N parallel processes (tasks), each moving a fixed
volume through large contiguous datasets — the data-heavy, metadata-light
regime where DaYu's relative overhead is smallest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["H5benchParams", "build_h5bench_write", "build_h5bench_read"]


@dataclass(frozen=True)
class H5benchParams:
    """Kernel configuration.

    Attributes:
        data_dir: Target directory (typically a shared mount).
        n_procs: Parallel writer/reader processes.
        bytes_per_proc: Data volume each process moves.
        ops_per_proc: I/O operations the volume is split into (h5bench's
            time-step writes).
        read_pattern: ``"full"`` (whole-dataset scans), ``"partial"``
            (a contiguous fraction of each dataset), or ``"strided"``
            (h5bench's strided access: fixed-size blocks at a stride).
        partial_fraction: Fraction of each dataset a partial read covers.
        stride_blocks: Blocks per dataset in the strided pattern.
    """

    data_dir: str = "/pfs/h5bench"
    n_procs: int = 4
    bytes_per_proc: int = 1 << 20
    ops_per_proc: int = 8
    read_pattern: str = "full"
    partial_fraction: float = 0.25
    stride_blocks: int = 4
    #: MPI-IO style: all processes share one file, each writing/reading its
    #: own hyperslab of per-timestep datasets (h5bench's default mode).
    shared_file: bool = False

    def __post_init__(self) -> None:
        if self.n_procs < 1 or self.bytes_per_proc < 1 or self.ops_per_proc < 1:
            raise ValueError("h5bench parameters must be positive")
        if self.read_pattern not in ("full", "partial", "strided"):
            raise ValueError(f"unknown read pattern {self.read_pattern!r}")
        if not (0.0 < self.partial_fraction <= 1.0):
            raise ValueError("partial_fraction must be in (0, 1]")
        if self.stride_blocks < 1:
            raise ValueError("stride_blocks must be >= 1")

    def file_for(self, proc: int) -> str:
        if self.shared_file:
            return self.shared_path
        return f"{self.data_dir}/h5bench_proc{proc:04d}.h5"

    @property
    def shared_path(self) -> str:
        return f"{self.data_dir}/h5bench_shared.h5"

    @property
    def elems_per_op(self) -> int:
        # f4 elements per operation.
        return max(self.bytes_per_proc // (4 * self.ops_per_proc), 1)

    @property
    def total_bytes(self) -> int:
        return self.n_procs * self.ops_per_proc * self.elems_per_op * 4


def build_h5bench_write(params: H5benchParams) -> Workflow:
    """N processes, each writing ``ops_per_proc`` dataset timesteps.

    With ``shared_file=True`` a setup task first creates the shared file
    with per-timestep datasets spanning every process's hyperslab; each
    process then writes its own slab (the MPI-IO collective-write shape).
    """
    from repro.hdf5 import Selection

    p = params

    if not p.shared_file:
        def writer(proc: int):
            def fn(rt: TaskRuntime) -> None:
                rng = np.random.default_rng(proc)
                f = rt.open(p.file_for(proc), "w")
                for step in range(p.ops_per_proc):
                    f.create_dataset(
                        f"step_{step:05d}", shape=(p.elems_per_op,), dtype="f4",
                        data=rng.random(p.elems_per_op, dtype=np.float32),
                    )
                f.close()
            return fn

        return Workflow("h5bench_write", [
            Stage("write", [
                Task(f"h5bench_write_{i:04d}", writer(i))
                for i in range(p.n_procs)
            ])
        ])

    total_elems = p.elems_per_op * p.n_procs

    def setup(rt: TaskRuntime) -> None:
        f = rt.open(p.shared_path, "w")
        for step in range(p.ops_per_proc):
            f.create_dataset(f"step_{step:05d}", shape=(total_elems,),
                             dtype="f4")
        f.close()

    def slab_writer(proc: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(proc)
            f = rt.open(p.shared_path, "r+")
            start = proc * p.elems_per_op
            for step in range(p.ops_per_proc):
                f[f"step_{step:05d}"].write(
                    rng.random(p.elems_per_op, dtype=np.float32),
                    Selection.hyperslab(((start, p.elems_per_op),)),
                )
            f.close()
        return fn

    # Declared contracts carry each process's hyperslab selection, which
    # is what lets the pre-run DY401 rule prove the collective writes
    # disjoint and downgrade the unordered-writer error to a warning.
    from repro.workflow.contracts import TaskContract, creates, writes

    def setup_contract() -> TaskContract:
        return TaskContract.declare(*[
            creates(p.shared_path, f"step_{step:05d}", shape=(total_elems,),
                    dtype="f4", elements=0)
            for step in range(p.ops_per_proc)
        ])

    def slab_contract(proc: int) -> TaskContract:
        start = proc * p.elems_per_op
        return TaskContract.declare(*[
            writes(p.shared_path, f"step_{step:05d}",
                   elements=p.elems_per_op,
                   select=((start, p.elems_per_op),))
            for step in range(p.ops_per_proc)
        ])

    return Workflow("h5bench_write_shared", [
        Stage("setup", [Task("h5bench_setup", setup,
                             contract=setup_contract())], parallel=False),
        Stage("write", [
            Task(f"h5bench_write_{i:04d}", slab_writer(i),
                 contract=slab_contract(i))
            for i in range(p.n_procs)
        ]),
    ])


def build_h5bench_read(params: H5benchParams) -> Workflow:
    """N processes reading back their files with the configured pattern.

    Requires a prior :func:`build_h5bench_write` run on the same params.
    """
    from repro.hdf5 import Selection

    p = params

    def read_dataset(ds) -> None:
        n = ds.shape[0]
        if p.read_pattern == "full":
            ds.read()
        elif p.read_pattern == "partial":
            count = max(int(n * p.partial_fraction), 1)
            ds.read(Selection.hyperslab(((0, count),)))
        else:  # strided
            blocks = min(p.stride_blocks, n)
            block = max(n // (blocks * 2), 1)
            stride = max(n // blocks, 1)
            for b in range(blocks):
                start = b * stride
                count = min(block, n - start)
                if count > 0:
                    ds.read(Selection.hyperslab(((start, count),)))

    def reader(proc: int):
        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.file_for(proc), "r")
            for step in range(p.ops_per_proc):
                ds = f[f"step_{step:05d}"]
                if p.shared_file:
                    # Each process scans its own hyperslab of the shared
                    # datasets (collective-read shape).
                    ds.read(Selection.hyperslab(
                        ((proc * p.elems_per_op, p.elems_per_op),)))
                else:
                    read_dataset(ds)
            f.close()
        return fn

    return Workflow("h5bench_read", [
        Stage("read", [
            Task(f"h5bench_read_{i:04d}", reader(i)) for i in range(p.n_procs)
        ])
    ])
