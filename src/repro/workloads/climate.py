"""A climate-analysis workflow over the netCDF-like format.

PyFLEXTRKR's upstream data actually arrives as netCDF; this workload
exercises DaYu's netCDF path end to end with the classic climate pattern:

1. **simulate** — parallel model tasks, each appending per-timestep
   records (temperature, pressure) to its own ``.nc`` file — the
   record-interleaved layout whose scattered I/O DaYu decodes;
2. **regrid** — reads every simulation file (whole record variables =
   one operation per record) and writes a fixed-variable merged file;
3. **statistics** — reads the merged file and writes summary scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["ClimateParams", "build_climate"]


@dataclass(frozen=True)
class ClimateParams:
    """Workload scale knobs.

    Attributes:
        data_dir: Shared working directory.
        n_models: Parallel simulation tasks (ensemble members).
        timesteps: Records each member appends.
        cells: Grid cells per record.
        compute_seconds: Modeled compute per task.
    """

    data_dir: str = "/pfs/climate"
    n_models: int = 4
    timesteps: int = 8
    cells: int = 256
    compute_seconds: float = 0.02

    def member_file(self, i: int) -> str:
        return f"{self.data_dir}/member_{i:03d}.nc"

    @property
    def merged_file(self) -> str:
        return f"{self.data_dir}/merged.nc"

    @property
    def stats_file(self) -> str:
        return f"{self.data_dir}/stats.nc"


def build_climate(params: ClimateParams) -> Workflow:
    """Assemble the three-stage climate workflow."""
    p = params

    def simulate(member: int):
        def fn(rt: TaskRuntime) -> None:
            rng = np.random.default_rng(member)
            f = rt.open_netcdf(p.member_file(member), "w")
            f.create_dimension("time", None)
            f.create_dimension("cell", p.cells)
            f.set_att("member", member)
            temp = f.create_variable("temperature", "f4", ["time", "cell"])
            temp.set_att("units", "K")
            pres = f.create_variable("pressure", "f4", ["time", "cell"])
            f.enddef()
            for t in range(p.timesteps):
                temp.write_record(t, 250.0 + rng.random(p.cells, dtype=np.float32) * 60)
                pres.write_record(t, 900.0 + rng.random(p.cells, dtype=np.float32) * 200)
            f.close()
        return fn

    stage1 = Stage("simulate", [
        Task(f"model_{i:03d}", simulate(i), compute_seconds=p.compute_seconds)
        for i in range(p.n_models)
    ])

    def regrid(rt: TaskRuntime) -> None:
        fields = []
        for i in range(p.n_models):
            f = rt.open_netcdf(p.member_file(i), "r")
            fields.append(f.variable("temperature").read())
            f.close()
        mean = np.mean(np.stack(fields), axis=0).astype(np.float32)
        out = rt.open_netcdf(p.merged_file, "w")
        out.create_dimension("time", p.timesteps)
        out.create_dimension("cell", p.cells)
        merged = out.create_variable("mean_temperature", "f4", ["time", "cell"])
        out.enddef()
        merged.write(mean)
        out.close()

    stage2 = Stage("regrid", [
        Task("regrid", regrid, compute_seconds=p.compute_seconds * 2)
    ], parallel=False)

    def statistics(rt: TaskRuntime) -> None:
        f = rt.open_netcdf(p.merged_file, "r")
        mean = f.variable("mean_temperature").read()
        f.close()
        out = rt.open_netcdf(p.stats_file, "w")
        out.create_dimension("metric", 3)
        stats = out.create_variable("summary", "f8", ["metric"])
        out.enddef()
        stats.write(np.array([mean.min(), mean.mean(), mean.max()]))
        out.close()

    stage3 = Stage("statistics", [
        Task("statistics", statistics, compute_seconds=p.compute_seconds)
    ], parallel=False)

    return Workflow("climate", [stage1, stage2, stage3])
