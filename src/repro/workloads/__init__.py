"""Workload reimplementations: the paper's case studies as I/O skeletons.

Each module reproduces one evaluated workload's *dataflow* — same stages,
task counts, file and dataset topology, and access patterns — with the
numeric compute replaced by modeled compute time (DaYu analyzes I/O, not
math):

- :mod:`~repro.workloads.pyflextrkr` — the nine-stage storm-tracking
  pipeline (paper Section VI-A, Figures 4-5, 11, 13a).
- :mod:`~repro.workloads.ddmd` — DeepDriveMD's simulation/aggregation/
  training/inference loop (Section VI-B, Figures 6-7, 12, 13b).
- :mod:`~repro.workloads.arldm` — the ARLDM image-synthesis data prep with
  variable-length image/text data (Section VI-C, Figures 8, 13c).
- :mod:`~repro.workloads.h5bench` — the parallel I/O kernel used for
  overhead scaling (Figures 9a-b, 10a).
- :mod:`~repro.workloads.corner_case` — the 200-dataset worst-case Python
  benchmark (Figures 9c-d, 10b).
"""

from repro.workloads.arldm import ArldmParams, build_arldm, prepare_arldm_inputs
from repro.workloads.climate import ClimateParams, build_climate
from repro.workloads.corner_case import CornerCaseParams, build_corner_case
from repro.workloads.ddmd import DdmdParams, build_ddmd
from repro.workloads.h5bench import H5benchParams, build_h5bench_read, build_h5bench_write
from repro.workloads.pyflextrkr import (
    PyflextrkrParams,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)

__all__ = [
    "PyflextrkrParams",
    "build_pyflextrkr",
    "prepare_pyflextrkr_inputs",
    "DdmdParams",
    "build_ddmd",
    "ArldmParams",
    "build_arldm",
    "prepare_arldm_inputs",
    "H5benchParams",
    "build_h5bench_write",
    "build_h5bench_read",
    "CornerCaseParams",
    "build_corner_case",
    "ClimateParams",
    "build_climate",
]
