"""The perf-hazards workload: the DY6xx cost-prophet ground truth.

A four-stage pipeline whose contracts are *accurate* (no DY45x/DY65x
drift, no correctness hazards) but whose shape is intentionally naive,
so every DY6xx performance rule convicts it from the declarations alone
— before anything runs:

- ``seed_grid`` (serial) materializes one large grid on shared storage;
- ``analyze_0..n`` (parallel) each read the full grid once — except
  ``analyze_1``, which re-reads it ``hot_reads`` times (DY602 predicted
  straggler).  Under the default round-robin placement ``analyze_1``
  also lands on a different node than ``seed_grid``, so its re-reads
  are cross-node shared-storage traffic (DY603) and the dominant edge
  of the whole workflow (DY605); the grid itself becomes a hot dataset
  a local NVMe tier would serve far cheaper (DY604);
- ``journal`` (serial, on the predicted critical path) appends
  ``journal_ops`` single-element writes — per-op latency dwarfs its
  byte volume (DY601 small-I/O amplification);
- ``summarize`` (serial) fans everything back in.

``dayu-plan`` on this workload finds the fig11-style fix: pin the grid's
toucher set onto one node and stage the grid on its local tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hdf5 import Selection
from repro.workflow.contracts import TaskContract, creates, reads, writes
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["PerfHazardsParams", "build_perf_hazards"]


@dataclass(frozen=True)
class PerfHazardsParams:
    """Scale knobs.  Defaults are sized so that, on the default two-node
    GPU cluster, every DY6xx rule clears its threshold with margin; the
    traced-run tests shrink ``grid``/``journal_ops`` via the registry's
    ``scale`` instead of loosening thresholds.
    """

    data_dir: str = "/pfs/perf"
    #: Grid elements (f4): 16 Mi elements = 64 MiB at scale 1.
    grid: int = 16 << 20
    n_analyze: int = 4
    #: Full-grid re-reads by the hot task ``analyze_1``.
    hot_reads: int = 16
    #: Single-element journal writes on the critical path.
    journal_ops: int = 2048

    def __post_init__(self) -> None:
        if self.n_analyze < 2:
            raise ValueError("perf-hazards needs at least 2 analyze tasks")
        if self.grid < self.n_analyze or self.hot_reads < 1:
            raise ValueError("perf-hazards parameters too small")
        if self.journal_ops < 1:
            raise ValueError("journal_ops must be positive")

    @property
    def grid_file(self) -> str:
        return f"{self.data_dir}/grid.h5"

    def part_file(self, k: int) -> str:
        return f"{self.data_dir}/part_{k}.h5"

    @property
    def journal_file(self) -> str:
        return f"{self.data_dir}/journal.h5"

    @property
    def summary_file(self) -> str:
        return f"{self.data_dir}/summary.h5"

    @property
    def part_elems(self) -> int:
        return max(self.grid // self.n_analyze, 1)


def build_perf_hazards(params: PerfHazardsParams) -> Workflow:
    p = params

    # ---------------- stage 1: ingest (serial) ------------------------
    def seed_grid(rt: TaskRuntime) -> None:
        rng = np.random.default_rng(11)
        f = rt.open(p.grid_file, "w")
        f.create_dataset("grid", shape=(p.grid,), dtype="f4",
                         data=rng.random(p.grid, dtype=np.float32))
        f.close()

    ingest = Stage("ingest", [
        Task("seed_grid", seed_grid, contract=TaskContract.declare(
            creates(p.grid_file, "grid", shape=(p.grid,), dtype="f4",
                    elements=p.grid))),
    ], parallel=False)

    # ------------- stage 2: analyze (parallel, skewed) ----------------
    def analyze(k: int):
        n_reads = p.hot_reads if k == 1 else 1

        def fn(rt: TaskRuntime) -> None:
            f = rt.open(p.grid_file, "r")
            for _ in range(n_reads):
                grid = f["grid"].read()
            f.close()
            part = grid[k * p.part_elems:(k + 1) * p.part_elems]
            if part.size < p.part_elems:  # last shard of an uneven split
                part = np.resize(part, p.part_elems)
            out = rt.open(p.part_file(k), "w")
            out.create_dataset("part", shape=(p.part_elems,), dtype="f4",
                               data=part.astype(np.float32))
            out.close()

        return Task(f"analyze_{k}", fn, contract=TaskContract.declare(
            reads(p.grid_file, "grid", elements=p.grid, count=n_reads),
            creates(p.part_file(k), "part", shape=(p.part_elems,),
                    dtype="f4", elements=p.part_elems)))

    analyze_stage = Stage("analyze", [analyze(k) for k in range(p.n_analyze)])

    # ------ stage 3: journal (serial, on the critical path) -----------
    def journal(rt: TaskRuntime) -> None:
        checksum = np.zeros(1, dtype=np.float32)
        for k in range(p.n_analyze):
            f = rt.open(p.part_file(k), "r")
            checksum += f["part"].read().sum(dtype=np.float32)
            f.close()
        out = rt.open(p.journal_file, "w")
        ds = out.create_dataset("journal", shape=(p.journal_ops,),
                                dtype="f4")
        # One element per entry: the per-op latency storm DY601 convicts.
        for i in range(p.journal_ops):
            ds.write(checksum, Selection.hyperslab(((i, 1),)))
        out.close()

    journal_stage = Stage("journal", [
        Task("journal", journal, contract=TaskContract.declare(
            *[reads(p.part_file(k), "part", elements=p.part_elems)
              for k in range(p.n_analyze)],
            creates(p.journal_file, "journal", shape=(p.journal_ops,),
                    dtype="f4", elements=0),
            writes(p.journal_file, "journal", elements=1,
                   count=p.journal_ops))),
    ], parallel=False)

    # ---------------- stage 4: summarize (serial) ---------------------
    def summarize(rt: TaskRuntime) -> None:
        f = rt.open(p.journal_file, "r")
        entries = f["journal"].read()
        f.close()
        means = np.zeros(p.n_analyze, dtype=np.float32)
        for k in range(p.n_analyze):
            f = rt.open(p.part_file(k), "r")
            means[k] = f["part"].read().mean(dtype=np.float64)
            f.close()
        out = rt.open(p.summary_file, "w")
        out.create_dataset("summary", shape=(p.n_analyze,), dtype="f4",
                           data=means + entries[:1])
        out.close()

    summarize_stage = Stage("summarize", [
        Task("summarize", summarize, contract=TaskContract.declare(
            reads(p.journal_file, "journal", elements=p.journal_ops),
            *[reads(p.part_file(k), "part", elements=p.part_elems)
              for k in range(p.n_analyze)],
            creates(p.summary_file, "summary", shape=(p.n_analyze,),
                    dtype="f4", elements=p.n_analyze))),
    ], parallel=False)

    return Workflow("perf_hazards",
                    [ingest, analyze_stage, journal_stage, summarize_stage])
