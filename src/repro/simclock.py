"""Deterministic simulated time base for the DaYu reproduction.

Every component in this repository that "takes time" — storage devices,
network mounts, compute phases, and DaYu's own tracing machinery — charges
that time to a :class:`SimClock`.  Using a single explicit clock (rather than
wall-clock time) makes every experiment deterministic and lets the benchmark
harness reproduce the *shape* of the paper's timing results on any machine.

Time is tracked in seconds as a float.  The clock also supports named
accounts so that DaYu can attribute its own overhead to individual
components (Input Parser / Access Tracker / Characteristic Mapper — the
breakdown shown in the paper's Figure 10).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["SimClock", "TimeSpan"]


@dataclass(frozen=True)
class TimeSpan:
    """A closed interval of simulated time.

    Attributes:
        start: Simulated time at which the span began, in seconds.
        end: Simulated time at which the span finished, in seconds.
    """

    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    def overlaps(self, other: "TimeSpan") -> bool:
        """Return True when the two spans share any instant."""
        return self.start < other.end and other.start < self.end


class SimClock:
    """A monotonically advancing simulated clock with cost accounts.

    The clock starts at zero and only moves forward.  Components advance it
    with :meth:`advance`, optionally attributing the advance to a named
    account so that post-hoc accounting (e.g. "how much of the runtime was
    DaYu's Access Tracker?") is possible without any global state.

    Example:
        >>> clock = SimClock()
        >>> clock.advance(1.5, account="io")
        >>> clock.now
        1.5
        >>> clock.account("io")
        1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start!r}")
        self._now: float = float(start)
        self._accounts: Dict[str, float] = {}
        self._marks: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------
    # Core time flow
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, account: str | None = None) -> float:
        """Move the clock forward by ``seconds``.

        Args:
            seconds: Non-negative duration to add.
            account: Optional account name to charge the duration to.

        Returns:
            The new current time.

        Raises:
            ValueError: If ``seconds`` is negative or not finite.
        """
        if not (seconds >= 0.0):  # also rejects NaN
            raise ValueError(f"cannot advance clock by {seconds!r}")
        self._now += seconds
        if account is not None:
            self._accounts[account] = self._accounts.get(account, 0.0) + seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        A timestamp in the past is a no-op: simulated time never rewinds.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    @contextmanager
    def span(self, account: str | None = None) -> Iterator[List[float]]:
        """Context manager capturing a start/end pair of simulated times.

        Yields a two-element list; on exit the list holds ``[start, end]``.
        Useful for building :class:`TimeSpan` records around a block of
        simulated activity.
        """
        record = [self._now, self._now]
        try:
            yield record
        finally:
            record[1] = self._now
            if account is not None:
                self._accounts[account] = (
                    self._accounts.get(account, 0.0) + record[1] - record[0]
                )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def account(self, name: str) -> float:
        """Total simulated seconds charged to account ``name`` (0 if unused)."""
        return self._accounts.get(name, 0.0)

    def accounts(self) -> Dict[str, float]:
        """A copy of all account totals."""
        return dict(self._accounts)

    def charge(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` to an account *without* advancing the clock.

        This models work that happens concurrently with (is hidden under)
        other activity but must still be accounted, e.g. DaYu bookkeeping
        overlapped with an I/O wait.
        """
        if not (seconds >= 0.0):
            raise ValueError(f"cannot charge negative time {seconds!r}")
        self._accounts[name] = self._accounts.get(name, 0.0) + seconds

    # ------------------------------------------------------------------
    # Marks (named instants, useful for debugging timelines)
    # ------------------------------------------------------------------
    def mark(self, label: str) -> float:
        """Record a named instant at the current time and return it."""
        self._marks.append((label, self._now))
        return self._now

    @property
    def marks(self) -> List[Tuple[str, float]]:
        """All recorded (label, time) marks in insertion order."""
        return list(self._marks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.9f}, accounts={len(self._accounts)})"
