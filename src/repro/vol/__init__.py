"""Virtual Object Layer (VOL).

HDF5 routes every *object-level* operation — file open, dataset create/
open/read/write/close, attribute access — through the Virtual Object Layer.
DaYu's high-level profiler is a VOL plugin; this package reproduces it:

- :class:`~repro.vol.tracer.VolTracer` collects the object-level semantics
  of the paper's Table I (task/file relationship, object lifetimes,
  object descriptions, object accesses), deferring per-object log emission
  until the owning file closes (the behaviour the paper calls out when
  explaining its corner-case overhead).
- :class:`~repro.vol.objects.VolFile` / ``VolGroup`` / ``VolDataset`` wrap
  the format-layer objects, announce the active data object to the VFD
  profiler through the shared :class:`~repro.vfd.channel.VolVfdChannel`,
  and feed the tracer.
"""

from repro.vol.objects import VolDataset, VolFile, VolGroup
from repro.vol.tracer import DataObjectProfile, VolCosts, VolTracer

__all__ = [
    "VolFile",
    "VolGroup",
    "VolDataset",
    "VolTracer",
    "VolCosts",
    "DataObjectProfile",
]
