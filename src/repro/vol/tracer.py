"""DaYu's VOL profiler: object-level semantic tracing.

Records the high-level semantics of the paper's Table I for every data
object a task touches:

1. task name;
2. file name(s) the task interacted with;
3. object lifetimes (``T_release - T_acquire``);
4. object descriptions (shape, type, layout, size);
5. object accesses (reads/writes with element counts and volumes).

Profiles accumulate in a hash table per (file, object) pair — *including
for closed datasets*, so a dataset reopened many times keeps one profile —
and are emitted to the finished-record list only when the owning file
closes.  That deferred logging is exactly the behaviour the paper credits
for the corner-case overhead of frequent object open/close cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.simclock import SimClock
from repro.vfd.channel import VolVfdChannel

__all__ = ["VolCosts", "DataObjectProfile", "VolTracer"]

#: Account name for VOL tracking overhead on the simulated clock.
VOL_TRACKER_ACCOUNT = "dayu.vol.access_tracker"


@dataclass(frozen=True)
class VolCosts:
    """Modeled per-event cost of the VOL profiler, in simulated seconds.

    ``per_event_growth`` models the cost of walking an ever-larger live
    profile table on each object event — the reason the paper's corner
    case ("repeated reads of the same datasets within the same task")
    shows elevated VOL overhead.
    """

    per_object_event: float = 1.5e-6  # dataset/group open or close
    per_access_event: float = 0.8e-6  # dataset read or write
    per_file_event: float = 2.5e-6    # file open / close (incl. deferred log)
    per_event_growth: float = 4.0e-9


@dataclass
class DataObjectProfile:
    """Accumulated semantics for one data object within one file (Table I).

    The compact on-disk form is produced by :mod:`repro.mapper.codec`.
    """

    task: Optional[str]
    file: str
    object_name: str
    acquired: float
    released: Optional[float] = None
    open_count: int = 0
    shape: Tuple[int, ...] = ()
    dtype: str = ""
    layout: str = ""
    nbytes: int = 0
    reads: int = 0
    writes: int = 0
    elements_read: int = 0
    elements_written: int = 0

    @property
    def lifetime(self) -> Optional[float]:
        """``T_release - T_acquire`` of the most recent open span."""
        if self.released is None:
            return None
        return self.released - self.acquired

    @property
    def accessed(self) -> bool:
        return (self.reads + self.writes) > 0

    @property
    def access_kind(self) -> str:
        """``"read_only"`` / ``"write_only"`` / ``"read_write"`` / ``"none"``."""
        if self.reads and self.writes:
            return "read_write"
        if self.reads:
            return "read_only"
        if self.writes:
            return "write_only"
        return "none"

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "file": self.file,
            "object": self.object_name,
            "acquired": self.acquired,
            "released": self.released,
            "lifetime": self.lifetime,
            "open_count": self.open_count,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "layout": self.layout,
            "nbytes": self.nbytes,
            "reads": self.reads,
            "writes": self.writes,
            "elements_read": self.elements_read,
            "elements_written": self.elements_written,
            "access_kind": self.access_kind,
        }


class VolTracer:
    """Collector of object-level semantics for one task.

    Args:
        clock: Simulated clock tracker overhead is charged to.
        channel: The VOL↔VFD shared channel (this tracer reads the task
            name from it so VOL and VFD traces agree).
        costs: Modeled profiler costs.
        emit: Optional live-event sink (``repro.monitor`` bus publish);
            when set, every file/object lifecycle event and access is
            also published as a typed monitor event.
    """

    def __init__(
        self,
        clock: SimClock,
        channel: VolVfdChannel,
        costs: VolCosts = VolCosts(),
        emit: Optional[Callable] = None,
    ) -> None:
        self.clock = clock
        self.channel = channel
        self.costs = costs
        self.emit = emit
        self._events = None
        if emit is not None:
            # Safe only at runtime with a live sink (the monitor package
            # is fully imported by whoever built the sink); a module-level
            # import would cycle back through repro.monitor.  Bound once
            # here to keep the per-event path free of import-system
            # lookups.
            from repro.monitor import events as monitor_events

            self._events = monitor_events
        #: Live profiles per (file, object) — the in-memory hash table.
        self._live: Dict[Tuple[str, str], DataObjectProfile] = {}
        #: Emitted profiles (appended when the owning file closes).
        self.profiles: List[DataObjectProfile] = []
        #: Files the current task has interacted with, in first-touch order.
        self.files_touched: List[str] = []

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------
    def on_file_open(self, path: str) -> None:
        if path not in self.files_touched:
            self.files_touched.append(path)
        self.clock.advance(self.costs.per_file_event, VOL_TRACKER_ACCOUNT)
        if self.emit is not None:
            self.emit(self._events.FileOpened(time=self.clock.now,
                                 task=self.channel.current_task, file=path))

    def on_file_close(self, path: str) -> None:
        """Emit (deferred-log) every profile belonging to ``path``."""
        now = self.clock.now
        emitted = [key for key in self._live if key[0] == path]
        for key in emitted:
            profile = self._live.pop(key)
            if profile.released is None:
                profile.released = now
            self.profiles.append(profile)
        # Deferred logging cost is proportional to the emitted profiles.
        self.clock.advance(
            self.costs.per_file_event + self.costs.per_object_event * len(emitted),
            VOL_TRACKER_ACCOUNT,
        )
        if self.emit is not None:
            self.emit(self._events.FileClosed(time=self.clock.now,
                                 task=self.channel.current_task, file=path))

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def _profile(self, file: str, object_name: str) -> DataObjectProfile:
        key = (file, object_name)
        profile = self._live.get(key)
        if profile is None:
            profile = DataObjectProfile(
                task=self.channel.current_task,
                file=file,
                object_name=object_name,
                acquired=self.clock.now,
            )
            self._live[key] = profile
        return profile

    def on_object_open(
        self,
        file: str,
        object_name: str,
        shape: Tuple[int, ...] = (),
        dtype: str = "",
        layout: str = "",
        nbytes: int = 0,
    ) -> None:
        profile = self._profile(file, object_name)
        profile.open_count += 1
        profile.shape = shape
        profile.dtype = dtype
        profile.layout = layout
        profile.nbytes = nbytes
        if profile.open_count > 1:
            # Reopened: extend the lifetime span rather than reset it.
            profile.released = None
        self.clock.advance(self._event_cost(self.costs.per_object_event),
                           VOL_TRACKER_ACCOUNT)
        if self.emit is not None:
            self.emit(self._events.DatasetOpened(
                time=self.clock.now, task=self.channel.current_task,
                file=file, data_object=object_name, shape=tuple(shape),
                dtype=dtype, layout=layout, nbytes=nbytes))

    def on_object_close(self, file: str, object_name: str) -> None:
        profile = self._profile(file, object_name)
        profile.released = self.clock.now
        self.clock.advance(self._event_cost(self.costs.per_object_event),
                           VOL_TRACKER_ACCOUNT)
        if self.emit is not None:
            self.emit(self._events.DatasetClosed(
                time=self.clock.now, task=self.channel.current_task,
                file=file, data_object=object_name))

    def _event_cost(self, base: float) -> float:
        """Base cost plus the growing-profile-table walk component."""
        return base + len(self._live) * self.costs.per_event_growth

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------
    def on_access(
        self, file: str, object_name: str, op: str, elements: int, nbytes: int
    ) -> None:
        profile = self._profile(file, object_name)
        if op == "read":
            profile.reads += 1
            profile.elements_read += elements
        elif op == "write":
            profile.writes += 1
            profile.elements_written += elements
        else:
            raise ValueError(f"unknown access op {op!r}")
        self.clock.advance(self._event_cost(self.costs.per_access_event),
                           VOL_TRACKER_ACCOUNT)
        if self.emit is not None:
            self.emit(self._events.DatasetAccess(
                time=self.clock.now, task=self.channel.current_task,
                file=file, data_object=object_name, op=op,
                elements=elements, nbytes=nbytes))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def all_profiles(self) -> List[DataObjectProfile]:
        """Emitted plus still-live profiles (for mid-run inspection)."""
        return self.profiles + list(self._live.values())

    def serialize(self) -> bytes:
        """Trace as JSON bytes — the unit of the VOL storage overhead."""
        payload = {
            "files": self.files_touched,
            "profiles": [p.to_json_dict() for p in self.all_profiles()],
        }
        return json.dumps(payload).encode()

    @property
    def storage_bytes(self) -> int:
        return len(self.serialize())

    @property
    def binary_trace_bytes(self) -> int:
        """Bytes of the compact on-disk trace (Figure 9d's VOL series) —
        proportional to distinct data objects, not to operation count.
        Measured by actually encoding with :mod:`repro.mapper.codec`."""
        from repro.mapper.codec import vol_trace_nbytes

        return vol_trace_nbytes(self.all_profiles())
