"""VOL wrapper objects: the instrumented public API applications use.

These wrappers form the full DaYu-instrumented stack::

    application
      → VolFile / VolGroup / VolDataset   (this module: VOL profiler)
        → repro.hdf5                      (the format library)
          → TracingVFD                    (VFD profiler)
            → Sec2VFD → SimFS             (POSIX + devices)

Every dataset read/write is wrapped in a
:meth:`~repro.vfd.channel.VolVfdChannel.object_scope`, which is how the VFD
profiler learns which data object each low-level operation belongs to — the
paper's shared-memory VOL→VFD mapping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.hdf5 import Dataset, Group, H5File, Selection
from repro.hdf5.attribute import AttributeManager
from repro.posix.simfs import SimFS
from repro.vfd.channel import VolVfdChannel
from repro.vfd.tracing import TracingVFD, VfdTracer
from repro.vol.tracer import VolTracer

__all__ = ["VolFile", "VolGroup", "VolDataset"]


class VolDataset:
    """Instrumented dataset handle."""

    def __init__(self, inner: Dataset, file: "VolFile") -> None:
        self._inner = inner
        self._file = file
        file.vol.on_object_open(
            file.path,
            inner.name,
            shape=inner.shape,
            dtype=inner.dtype.code,
            layout=inner.layout_name,
            nbytes=inner.nbytes,
        )

    # -- delegation --------------------------------------------------
    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._inner.shape

    @property
    def dtype(self):
        return self._inner.dtype

    @property
    def layout_name(self) -> str:
        return self._inner.layout_name

    @property
    def chunks(self):
        return self._inner.chunks

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def nbytes(self) -> int:
        return self._inner.nbytes

    @property
    def attrs(self) -> AttributeManager:
        return self._inner.attrs

    # -- instrumented data path --------------------------------------
    def _count(self, selection: Optional[Selection]) -> int:
        sel = selection or Selection.all()
        return sel.npoints(self._inner._space)

    def write(self, data, selection: Optional[Selection] = None) -> None:
        elements = self._count(selection)
        with self._file.channel.object_scope(self._inner.name):
            self._inner.write(data, selection)
        self._file.vol.on_access(
            self._file.path, self._inner.name, "write",
            elements, elements * self._inner.dtype.itemsize,
        )

    def read(self, selection: Optional[Selection] = None):
        elements = self._count(selection)
        with self._file.channel.object_scope(self._inner.name):
            result = self._inner.read(selection)
        self._file.vol.on_access(
            self._file.path, self._inner.name, "read",
            elements, elements * self._inner.dtype.itemsize,
        )
        return result

    def __getitem__(self, key):
        if key is Ellipsis:
            return self.read()
        raise TypeError("only ds[...] full reads are supported; use read()")

    def __setitem__(self, key, value) -> None:
        if key is Ellipsis:
            self.write(value)
            return
        raise TypeError("only ds[...] full writes are supported; use write()")

    def resize(self, new_shape) -> None:
        """Resize a chunked dataset (metadata operation)."""
        # Flush pending state first, then flush again inside the scope:
        # the second flush writes only what the resize itself dirtied,
        # so the shape-message update lands in the VFD trace tagged
        # with this object (a concurrent reader races exactly that
        # write — the DY503 subject) instead of anonymously at close.
        inner_file = self._file.inner
        inner_file.flush()
        with self._file.channel.object_scope(self._inner.name):
            self._inner.resize(new_shape)
            inner_file.flush()

    def close(self) -> None:
        """Release the handle (optional; file close releases implicitly)."""
        self._file.vol.on_object_close(self._file.path, self._inner.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VolDataset {self.name!r}>"


class VolGroup:
    """Instrumented group handle."""

    def __init__(self, inner: Group, file: "VolFile") -> None:
        self._inner = inner
        self._file = file

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def attrs(self) -> AttributeManager:
        return self._inner.attrs

    def keys(self):
        return self._inner.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._inner

    def __iter__(self):
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)

    def _wrap(self, obj):
        if isinstance(obj, Dataset):
            return VolDataset(obj, self._file)
        return VolGroup(obj, self._file)

    def _full_path(self, path: str) -> str:
        return self._inner.name.rstrip("/") + "/" + path.strip("/")

    def __getitem__(self, path: str):
        # Scope the lookup so the target's header reads (pure metadata) are
        # tagged with the object — this is how a metadata-only access like
        # the paper's contact_map example becomes visible in the VFD trace.
        with self._file.channel.object_scope(self._full_path(path)):
            obj = self._inner[path]
        return self._wrap(obj)

    def get(self, path: str, default=None):
        try:
            return self[path]
        except KeyError:
            return default

    def create_group(self, path: str) -> "VolGroup":
        return VolGroup(self._inner.create_group(path), self._file)

    def require_group(self, path: str) -> "VolGroup":
        return VolGroup(self._inner.require_group(path), self._file)

    def create_dataset(self, path: str, shape, dtype="f8", **kwargs) -> VolDataset:
        data = kwargs.pop("data", None)
        with self._file.channel.object_scope(self._full_path(path)):
            inner = self._inner.create_dataset(path, shape, dtype, **kwargs)
        ds = VolDataset(inner, self._file)
        if data is not None:
            ds.write(data)
        return ds

    def delete(self, name: str) -> None:
        """Unlink and reclaim a child (recorded as an object release)."""
        full = self._full_path(name)
        with self._file.channel.object_scope(full):
            self._inner.delete(name)
        self._file.vol.on_object_close(self._file.path, full)

    def __delitem__(self, name: str) -> None:
        self.delete(name)

    def datasets(self):
        return [self._wrap(d) for d in self._inner.datasets()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VolGroup {self.name!r}>"


class VolFile:
    """Instrumented file handle: the top of the DaYu-profiled stack.

    Args:
        fs: Simulated filesystem.
        path: File path.
        mode: :class:`~repro.hdf5.H5File` mode.
        vol: The VOL profiler collecting Table I semantics.
        vfd_tracer: The VFD profiler; when given, a
            :class:`~repro.vfd.tracing.TracingVFD` is interposed.
        **h5_kwargs: Forwarded to :class:`~repro.hdf5.H5File`.
    """

    def __init__(
        self,
        fs: SimFS,
        path: str,
        mode: str = "r",
        *,
        vol: VolTracer,
        vfd_tracer: Optional[VfdTracer] = None,
        **h5_kwargs,
    ) -> None:
        self.vol = vol
        self.channel: VolVfdChannel = vol.channel
        wrap = (
            (lambda inner: TracingVFD(inner, vfd_tracer))
            if vfd_tracer is not None
            else None
        )
        self._inner = H5File(fs, path, mode, vfd_wrap=wrap, **h5_kwargs)
        vol.on_file_open(path)

    # -- delegation --------------------------------------------------
    @property
    def path(self) -> str:
        return self._inner.path

    @property
    def inner(self) -> H5File:
        """The raw (uninstrumented) file object."""
        return self._inner

    @property
    def root(self) -> VolGroup:
        return VolGroup(self._inner.root, self)

    def __getitem__(self, path: str):
        return self.root[path]

    def __contains__(self, path: str) -> bool:
        return path in self._inner

    def keys(self):
        return self._inner.keys()

    def create_group(self, path: str) -> VolGroup:
        return self.root.create_group(path)

    def require_group(self, path: str) -> VolGroup:
        return self.root.require_group(path)

    def create_dataset(self, path: str, shape, dtype="f8", **kwargs) -> VolDataset:
        return self.root.create_dataset(path, shape, dtype, **kwargs)

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None:
        if not self._inner.closed:
            self._inner.close()
            self.vol.on_file_close(self._inner.path)

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "VolFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VolFile {self.path!r}>"
