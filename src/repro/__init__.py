"""DaYu reproduction: dataflow semantics and dynamics for scientific workflows.

A from-scratch Python implementation of the system described in *"DaYu:
Optimizing Distributed Scientific Workflows by Decoding Dataflow Semantics
and Dynamics"* (IEEE CLUSTER 2024), together with every substrate it runs
on — an HDF5-like and a netCDF-like self-describing format, a simulated
POSIX/storage stack with calibrated device models, a multi-node cluster and
workflow engine, and the paper's three case-study workloads.

Package map (bottom of the stack first):

- :mod:`repro.simclock`, :mod:`repro.storage`, :mod:`repro.posix` — the
  simulated time base, device cost models, and POSIX filesystem;
- :mod:`repro.vfd`, :mod:`repro.hdf5`, :mod:`repro.netcdf`,
  :mod:`repro.vol` — the instrumented I/O stacks;
- :mod:`repro.mapper`, :mod:`repro.analyzer`, :mod:`repro.diagnostics`,
  :mod:`repro.guidelines` — DaYu itself;
- :mod:`repro.middleware`, :mod:`repro.optimizer` — the optimization
  machinery (tiered caching, staging, consolidation, layout conversion,
  automated planning, transparent runtime caching);
- :mod:`repro.cluster`, :mod:`repro.workflow`, :mod:`repro.workloads`,
  :mod:`repro.experiments` — execution environments, the case studies,
  and the per-figure evaluation harnesses;
- :mod:`repro.cli` — the ``dayu-run`` / ``dayu-analyze`` toolset.

See ``README.md`` for a quickstart, ``DESIGN.md`` for the system inventory
and substitutions, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
