"""Insight records produced by the diagnostic detectors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["InsightKind", "Insight", "GUIDELINE_FOR"]


class InsightKind(str, enum.Enum):
    """The observation categories of the paper's Section VI case studies."""

    DATA_REUSE = "data_reuse"
    WRITE_AFTER_READ = "write_after_read"
    READ_AFTER_WRITE = "read_after_write"
    TIME_DEPENDENT_INPUT = "time_dependent_input"
    DISPOSABLE_DATA = "disposable_data"
    DATA_SCATTERING = "data_scattering"
    PARTIAL_FILE_ACCESS = "partial_file_access"
    METADATA_OVERHEAD = "metadata_overhead"
    READONLY_SEQUENTIAL = "readonly_sequential"
    TASK_INDEPENDENCE = "task_independence"
    VLEN_LAYOUT = "vlen_layout"


#: Which Section III-A optimization guideline addresses each insight.
GUIDELINE_FOR: Dict[InsightKind, str] = {
    InsightKind.DATA_REUSE: "customized_caching",
    InsightKind.WRITE_AFTER_READ: "customized_caching",
    InsightKind.READ_AFTER_WRITE: "customized_caching",
    InsightKind.TIME_DEPENDENT_INPUT: "customized_prefetching",
    InsightKind.DISPOSABLE_DATA: "data_stage_out",
    InsightKind.DATA_SCATTERING: "data_format_optimization",
    InsightKind.PARTIAL_FILE_ACCESS: "partial_file_access",
    InsightKind.METADATA_OVERHEAD: "data_format_optimization",
    InsightKind.READONLY_SEQUENTIAL: "customized_prefetching",
    InsightKind.TASK_INDEPENDENCE: "task_parallelization",
    InsightKind.VLEN_LAYOUT: "data_format_optimization",
}


@dataclass
class Insight:
    """One diagnostic finding.

    Attributes:
        kind: The observation category.
        subject: What the finding is about (a file path, dataset name, or
            task pair).
        tasks: Tasks involved.
        evidence: Detector-specific supporting numbers.
        description: Human-readable explanation.
    """

    kind: InsightKind
    subject: str
    tasks: List[str] = field(default_factory=list)
    evidence: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    @property
    def guideline(self) -> str:
        """The optimization guideline that addresses this insight."""
        return GUIDELINE_FOR[self.kind]

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "subject": self.subject,
            "tasks": self.tasks,
            "evidence": self.evidence,
            "description": self.description,
            "guideline": self.guideline,
        }

    def __str__(self) -> str:
        tasks = ", ".join(self.tasks) if self.tasks else "-"
        return (
            f"[{self.kind.value}] {self.subject} (tasks: {tasks}) — "
            f"{self.description} → guideline: {self.guideline}"
        )
