"""Diagnostic detectors over task profiles and workflow graphs.

Each detector reproduces one class of observation from the paper's case
studies:

- **data reuse** (PyFLEXTRKR: stage-1 output feeding stages 2/3/4/6/8;
  DDMD: training re-reading embedding files) → customized caching;
- **write-after-read / read-after-write** intra-workflow patterns;
- **time-dependent inputs** (PyFLEXTRKR: stage-6 inputs only needed
  mid-workflow) → customized prefetching;
- **disposable data** (outputs with a single consumer) → stage-out;
- **data scattering** (PyFLEXTRKR stage-9: many sub-500-byte datasets per
  file) → consolidation;
- **partial file access** (DDMD: training never reads contact_map's data,
  only its metadata) → selective access;
- **metadata overhead** (DDMD: chunked layout on small datasets) →
  contiguous conversion;
- **read-only sequential access** (DDMD: aggregate/inference scanning all
  simulation outputs) → rolling stage-in;
- **task independence** (DDMD: training and inference share no data) →
  parallelization;
- **variable-length contiguous layouts** (ARLDM) → chunked conversion.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics.insights import Insight, InsightKind
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT

__all__ = [
    "detect_data_reuse",
    "detect_time_dependent_inputs",
    "detect_disposable_data",
    "detect_data_scattering",
    "detect_partial_file_access",
    "detect_metadata_overhead",
    "detect_readonly_sequential",
    "detect_task_independence",
    "detect_vlen_layout",
]


def _readers_writers(
    profiles: Sequence[TaskProfile],
) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
    """Per file: ordered reader task list and writer task list."""
    readers: Dict[str, List[str]] = defaultdict(list)
    writers: Dict[str, List[str]] = defaultdict(list)
    for p in profiles:
        for s in p.dataset_stats:
            if s.reads and p.task not in readers[s.file]:
                readers[s.file].append(p.task)
            if s.writes and p.task not in writers[s.file]:
                writers[s.file].append(p.task)
    return readers, writers


def detect_data_reuse(
    profiles: Sequence[TaskProfile], min_consumers: int = 2
) -> List[Insight]:
    """Files consumed by multiple tasks, plus WAR/RAW access patterns."""
    insights: List[Insight] = []
    readers, writers = _readers_writers(profiles)
    for file, consumer_tasks in readers.items():
        if len(consumer_tasks) >= min_consumers:
            insights.append(
                Insight(
                    kind=InsightKind.DATA_REUSE,
                    subject=file,
                    tasks=list(consumer_tasks),
                    evidence={"consumers": len(consumer_tasks)},
                    description=(
                        f"{file} is read by {len(consumer_tasks)} tasks; "
                        "keep it in the fastest storage tier"
                    ),
                )
            )
    # Intra-task read/write mixes: write-after-read (PyFLEXTRKR stage 3)
    # vs. read-after-write (DDMD's re-read of its own embedding files),
    # told apart by which raw operation touched the object first.
    for p in profiles:
        for s in p.dataset_stats:
            if s.operation == "read_write" and s.data_object != FILE_METADATA_OBJECT:
                if s.first_raw_op == "write":
                    kind = InsightKind.READ_AFTER_WRITE
                    pattern = "writes then re-reads"
                else:
                    kind = InsightKind.WRITE_AFTER_READ
                    pattern = "reads then writes"
                insights.append(
                    Insight(
                        kind=kind,
                        subject=f"{s.file}:{s.data_object}",
                        tasks=[p.task],
                        evidence={"reads": s.reads, "writes": s.writes,
                                  "first_raw_op": s.first_raw_op},
                        description=(
                            f"task {p.task} {pattern} {s.data_object} "
                            f"in {s.file}"
                        ),
                    )
                )
    # Read-after-write across tasks (DDMD embedding-file pattern).
    order = {p.task: i for i, p in enumerate(profiles)}
    for file in set(readers) & set(writers):
        for w in writers[file]:
            later_readers = [r for r in readers[file] if order.get(r, -1) > order.get(w, -1)]
            if later_readers:
                insights.append(
                    Insight(
                        kind=InsightKind.READ_AFTER_WRITE,
                        subject=file,
                        tasks=[w] + later_readers,
                        evidence={"producer": w, "consumers": later_readers},
                        description=(
                            f"{file} written by {w} is read back by "
                            f"{', '.join(later_readers)}"
                        ),
                    )
                )
    return insights


def detect_time_dependent_inputs(
    profiles: Sequence[TaskProfile], late_fraction: float = 0.3
) -> List[Insight]:
    """External input files whose first access happens late in the run.

    Lateness is measured by *task position* (fraction of tasks already
    executed when the file is first read), which is robust to how much
    total time parallel stages accumulate on the raw clock.
    """
    if not profiles:
        return []
    order = {p.task: i for i, p in enumerate(profiles)}
    denom = max(len(profiles) - 1, 1)
    readers, writers = _readers_writers(profiles)
    insights = []
    for file, readers_of in readers.items():
        if file in writers:
            continue  # produced inside the workflow, not an external input
        first_reader = min(readers_of, key=lambda t: order.get(t, 0))
        lateness = order.get(first_reader, 0) / denom
        if lateness >= late_fraction:
            insights.append(
                Insight(
                    kind=InsightKind.TIME_DEPENDENT_INPUT,
                    subject=file,
                    tasks=list(readers_of),
                    evidence={"first_access_fraction": round(lateness, 3),
                              "first_reader": first_reader},
                    description=(
                        f"input {file} is first needed {lateness:.0%} into the "
                        "workflow; delay its prefetch until just before use"
                    ),
                )
            )
    return insights


def detect_disposable_data(profiles: Sequence[TaskProfile]) -> List[Insight]:
    """Data consumed by at most one downstream task — non-critical once
    processed, a stage-out candidate."""
    readers, writers = _readers_writers(profiles)
    order = {p.task: i for i, p in enumerate(profiles)}
    insights = []
    for file in set(readers) | set(writers):
        consumers = readers.get(file, [])
        if len(consumers) > 1:
            continue
        last_use = max(
            (order[t] for t in consumers + writers.get(file, []) if t in order),
            default=-1,
        )
        remaining = len(profiles) - 1 - last_use
        if remaining > 0:
            insights.append(
                Insight(
                    kind=InsightKind.DISPOSABLE_DATA,
                    subject=file,
                    tasks=consumers,
                    evidence={"consumers": len(consumers),
                              "tasks_remaining_after_last_use": remaining},
                    description=(
                        f"{file} has {len(consumers)} consumer(s) and is idle for "
                        f"the final {remaining} task(s); stage it out to slower "
                        "storage to free space"
                    ),
                )
            )
    return insights


def detect_data_scattering(
    profiles: Sequence[TaskProfile],
    min_datasets: int = 8,
    max_avg_bytes: float = 500.0,
) -> List[Insight]:
    """Files holding many tiny datasets (the PyFLEXTRKR stage-9 bottleneck:
    'many small datasets (less than 500 bytes) within a file')."""
    per_file: Dict[str, List] = defaultdict(list)
    for p in profiles:
        for obj in p.object_profiles:
            # Variable-length objects are exempt: their inline footprint is
            # just heap references — the content lives elsewhere and its
            # size says nothing about scattering.
            if not obj.dtype.startswith("vlen"):
                per_file[obj.file].append(obj)
    insights = []
    for file, objs in per_file.items():
        sized = [o for o in objs if o.nbytes > 0]
        if len(sized) < min_datasets:
            continue
        avg = sum(o.nbytes for o in sized) / len(sized)
        if avg <= max_avg_bytes:
            tasks = sorted({o.task for o in sized if o.task})
            insights.append(
                Insight(
                    kind=InsightKind.DATA_SCATTERING,
                    subject=file,
                    tasks=tasks,
                    evidence={"datasets": len(sized), "avg_bytes": round(avg, 1)},
                    description=(
                        f"{file} holds {len(sized)} datasets averaging "
                        f"{avg:.0f} B; consolidate them into one large dataset "
                        "to cut metadata I/O"
                    ),
                )
            )
    return insights


def detect_partial_file_access(profiles: Sequence[TaskProfile]) -> List[Insight]:
    """Datasets whose *data* a task never touches while reading siblings —
    including the metadata-only pattern of DDMD's contact_map."""
    insights = []
    for p in profiles:
        per_file: Dict[str, List] = defaultdict(list)
        for s in p.dataset_stats:
            if s.data_object != FILE_METADATA_OBJECT:
                per_file[s.file].append(s)
        for file, rows in per_file.items():
            used = [s for s in rows if s.data_ops > 0]
            unused = [s for s in rows if s.data_ops == 0]
            if used and unused:
                for s in unused:
                    insights.append(
                        Insight(
                            kind=InsightKind.PARTIAL_FILE_ACCESS,
                            subject=f"{file}:{s.data_object}",
                            tasks=[p.task],
                            evidence={
                                "metadata_ops": s.metadata_ops,
                                "siblings_used": len(used),
                            },
                            description=(
                                f"task {p.task} touches only the metadata of "
                                f"{s.data_object} in {file} while using "
                                f"{len(used)} sibling dataset(s); skip moving "
                                "its data"
                            ),
                        )
                    )
    return insights


def detect_metadata_overhead(
    profiles: Sequence[TaskProfile],
    min_metadata_fraction: float = 0.3,
    small_bytes: int = 1 << 20,
) -> List[Insight]:
    """Chunked layouts on small datasets whose I/O is dominated by
    metadata (DDMD's inefficiency)."""
    insights = []
    seen: Set[Tuple[str, str]] = set()
    for p in profiles:
        stats_by_obj = {(s.file, s.data_object): s for s in p.dataset_stats}
        for obj in p.object_profiles:
            key = (obj.file, obj.object_name)
            if key in seen or obj.layout != "chunked" or obj.nbytes > small_bytes:
                continue
            s = stats_by_obj.get(key)
            if s is None or s.access_count == 0:
                continue
            frac = s.metadata_ops / s.access_count
            if frac >= min_metadata_fraction:
                seen.add(key)
                insights.append(
                    Insight(
                        kind=InsightKind.METADATA_OVERHEAD,
                        subject=f"{obj.file}:{obj.object_name}",
                        tasks=[p.task],
                        evidence={
                            "layout": obj.layout,
                            "nbytes": obj.nbytes,
                            "metadata_fraction": round(frac, 3),
                        },
                        description=(
                            f"{obj.object_name} ({obj.nbytes} B, chunked) spends "
                            f"{frac:.0%} of its operations on metadata; convert "
                            "to contiguous layout"
                        ),
                    )
                )
    return insights


def detect_readonly_sequential(
    profiles: Sequence[TaskProfile],
    min_sequential_fraction: float = 0.6,
    min_files: int = 2,
) -> List[Insight]:
    """Tasks that scan many files read-only and mostly sequentially —
    rolling stage-in candidates (DDMD aggregate/inference)."""
    insights = []
    for p in profiles:
        ro_files = []
        for session in p.file_sessions:
            if (
                session.write_ops == 0
                and session.read_ops > 0
                and session.raw_sequential_fraction >= min_sequential_fraction
            ):
                ro_files.append(session.file)
        if len(set(ro_files)) >= min_files:
            insights.append(
                Insight(
                    kind=InsightKind.READONLY_SEQUENTIAL,
                    subject=p.task,
                    tasks=[p.task],
                    evidence={"files": len(set(ro_files))},
                    description=(
                        f"task {p.task} reads {len(set(ro_files))} files "
                        "sequentially and read-only; use a rolling stage-in to "
                        "the nearest tier"
                    ),
                )
            )
    return insights


def detect_task_independence(profiles: Sequence[TaskProfile]) -> List[Insight]:
    """Consecutive task pairs sharing no files — parallelization candidates
    (the DDMD training/inference observation)."""
    insights = []
    touched = [
        (p.task, {s.file for s in p.dataset_stats})
        for p in profiles
    ]
    for (t1, f1), (t2, f2) in zip(touched, touched[1:]):
        if f1 and f2 and not (f1 & f2):
            insights.append(
                Insight(
                    kind=InsightKind.TASK_INDEPENDENCE,
                    subject=f"{t1} ∥ {t2}",
                    tasks=[t1, t2],
                    evidence={"shared_files": 0},
                    description=(
                        f"consecutive tasks {t1} and {t2} have no HDF5 data "
                        "dependency; they can run in parallel"
                    ),
                )
            )
    return insights


def detect_vlen_layout(profiles: Sequence[TaskProfile]) -> List[Insight]:
    """Variable-length datasets stored contiguously — chunked layout would
    index them and halve their I/O (the ARLDM finding)."""
    insights = []
    seen: Set[Tuple[str, str]] = set()
    for p in profiles:
        for obj in p.object_profiles:
            key = (obj.file, obj.object_name)
            if key in seen:
                continue
            if obj.dtype.startswith("vlen") and obj.layout == "contiguous":
                seen.add(key)
                insights.append(
                    Insight(
                        kind=InsightKind.VLEN_LAYOUT,
                        subject=f"{obj.file}:{obj.object_name}",
                        tasks=[p.task] if p.task else [],
                        evidence={"dtype": obj.dtype, "layout": obj.layout},
                        description=(
                            f"variable-length dataset {obj.object_name} uses a "
                            "contiguous layout; switch to chunked to leverage "
                            "metadata indexing"
                        ),
                    )
                )
    return insights
