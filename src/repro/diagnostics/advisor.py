"""Drishti-style advisory reports.

The paper plans integration "with tools like Drishti for performance
analysis and optimization recommendations".  Drishti triages findings into
severity levels and prints an operator-facing report; this module provides
the equivalent over DaYu's insights:

- each insight gets a :class:`Severity` from kind-specific triage rules
  (e.g. hundreds of sub-500-byte datasets is *critical*; a single reused
  file is *informational*);
- :func:`advise` produces an :class:`AdvisorReport` whose :meth:`render`
  emits the triaged sections with their recommended actions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from typing import TYPE_CHECKING

from repro.diagnostics.insights import Insight, InsightKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guidelines.engine import Recommendation

__all__ = ["Severity", "Finding", "AdvisorReport", "advise"]


class Severity(enum.IntEnum):
    """Triage levels, highest first when sorting."""

    INFO = 1
    WARNING = 2
    CRITICAL = 3

    @property
    def tag(self) -> str:
        return {
            Severity.CRITICAL: "CRITICAL",
            Severity.WARNING: "WARNING ",
            Severity.INFO: "INFO    ",
        }[self]


def _triage(insight: Insight) -> Severity:
    """Kind- and evidence-aware severity rules."""
    e = insight.evidence
    kind = insight.kind
    if kind is InsightKind.DATA_SCATTERING:
        datasets = int(e.get("datasets", 0))
        if datasets >= 32:
            return Severity.CRITICAL
        return Severity.WARNING
    if kind is InsightKind.METADATA_OVERHEAD:
        frac = float(e.get("metadata_fraction", 0.0))
        return Severity.CRITICAL if frac >= 0.5 else Severity.WARNING
    if kind is InsightKind.VLEN_LAYOUT:
        return Severity.WARNING
    if kind is InsightKind.PARTIAL_FILE_ACCESS:
        return Severity.WARNING
    if kind is InsightKind.DATA_REUSE:
        consumers = int(e.get("consumers", 0))
        return Severity.WARNING if consumers >= 4 else Severity.INFO
    if kind is InsightKind.READONLY_SEQUENTIAL:
        files = int(e.get("files", 0))
        return Severity.WARNING if files >= 8 else Severity.INFO
    if kind in (InsightKind.WRITE_AFTER_READ, InsightKind.READ_AFTER_WRITE,
                InsightKind.TIME_DEPENDENT_INPUT, InsightKind.DISPOSABLE_DATA,
                InsightKind.TASK_INDEPENDENCE):
        return Severity.INFO
    return Severity.INFO  # pragma: no cover - future kinds


@dataclass
class Finding:
    """One triaged insight."""

    severity: Severity
    insight: Insight

    def line(self) -> str:
        return (f"[{self.severity.tag}] {self.insight.kind.value}: "
                f"{self.insight.description}")


@dataclass
class AdvisorReport:
    """Triaged findings plus the recommendations that address them."""

    findings: List[Finding] = field(default_factory=list)
    recommendations: List["Recommendation"] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {s.name: 0 for s in Severity}
        for f in self.findings:
            out[f.severity.name] += 1
        return out

    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    def render(self, width: int = 78) -> str:
        """Operator-facing text report (Drishti-style)."""
        bar = "=" * width
        counts = self.counts()
        lines = [
            bar,
            "DaYu I/O Advisor".center(width),
            bar,
            (f" {counts['CRITICAL']} critical | {counts['WARNING']} warnings "
             f"| {counts['INFO']} informational"),
            "",
        ]
        for severity in (Severity.CRITICAL, Severity.WARNING, Severity.INFO):
            section = [f for f in self.findings if f.severity == severity]
            if not section:
                continue
            lines.append(f"--- {severity.name} ({len(section)}) " + "-" * max(
                width - len(severity.name) - 10, 0))
            for f in section:
                lines.append("  " + f.line())
            lines.append("")
        if self.recommendations:
            lines.append("--- RECOMMENDED ACTIONS " + "-" * (width - 24))
            for rec in self.recommendations:
                lines.append(f"  * {rec.action.value}: {rec.target}")
                if rec.rationale:
                    lines.append(f"      {rec.rationale}")
        lines.append(bar)
        return "\n".join(lines)


def advise(insights: Sequence[Insight]) -> AdvisorReport:
    """Triage insights and attach deduplicated recommendations, ordered by
    severity (most severe first)."""
    # Imported here: the guidelines engine consumes this package's insight
    # types, so a module-level import would be circular.
    from repro.guidelines.engine import recommend

    findings = sorted(
        (Finding(_triage(i), i) for i in insights),
        key=lambda f: -int(f.severity),
    )
    return AdvisorReport(
        findings=findings,
        recommendations=recommend(list(insights)),
    )
