"""The diagnostic report: running every detector and summarizing findings."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.diagnostics.detectors import (
    detect_data_reuse,
    detect_data_scattering,
    detect_disposable_data,
    detect_metadata_overhead,
    detect_partial_file_access,
    detect_readonly_sequential,
    detect_task_independence,
    detect_time_dependent_inputs,
    detect_vlen_layout,
)
from repro.diagnostics.insights import Insight, InsightKind
from repro.mapper.mapper import TaskProfile

__all__ = ["DiagnosticReport", "diagnose"]

_ALL_DETECTORS = (
    detect_data_reuse,
    detect_time_dependent_inputs,
    detect_disposable_data,
    detect_data_scattering,
    detect_partial_file_access,
    detect_metadata_overhead,
    detect_readonly_sequential,
    detect_task_independence,
    detect_vlen_layout,
)


@dataclass
class DiagnosticReport:
    """All insights found in a workflow's profiles."""

    insights: List[Insight] = field(default_factory=list)

    def by_kind(self, kind: InsightKind) -> List[Insight]:
        return [i for i in self.insights if i.kind == kind]

    def by_guideline(self) -> Dict[str, List[Insight]]:
        """Insights grouped by the guideline that addresses them."""
        grouped: Dict[str, List[Insight]] = {}
        for insight in self.insights:
            grouped.setdefault(insight.guideline, []).append(insight)
        return grouped

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for insight in self.insights:
            out[insight.kind.value] = out.get(insight.kind.value, 0) + 1
        return out

    def summary(self) -> str:
        """Human-readable multi-line findings summary."""
        if not self.insights:
            return "No dataflow issues detected."
        lines = [f"DaYu found {len(self.insights)} insight(s):"]
        for guideline, items in sorted(self.by_guideline().items()):
            lines.append(f"  guideline: {guideline} ({len(items)})")
            for insight in items:
                lines.append(f"    - {insight}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps([i.to_json_dict() for i in self.insights], indent=2)

    def __len__(self) -> int:
        return len(self.insights)


def diagnose(profiles: Sequence[TaskProfile], **thresholds) -> DiagnosticReport:
    """Run every detector over the workflow's task profiles.

    Keyword thresholds are routed to detectors by parameter name (e.g.
    ``min_datasets=16`` tightens the data-scattering detector); unknown
    names raise immediately.
    """
    import inspect

    profiles = list(profiles)
    known = {
        name
        for det in _ALL_DETECTORS
        for name in inspect.signature(det).parameters
        if name != "profiles"
    }
    unknown = set(thresholds) - known
    if unknown:
        raise TypeError(f"unknown diagnose() thresholds: {sorted(unknown)}")

    insights: List[Insight] = []
    for detector in _ALL_DETECTORS:
        params = inspect.signature(detector).parameters
        kwargs = {k: v for k, v in thresholds.items() if k in params}
        insights.extend(detector(profiles, **kwargs))
    return DiagnosticReport(insights=insights)
