"""Data Flow Diagnostics — DaYu core component #3 (paper Section VI).

Turns profiles and workflow graphs into actionable *insights*: the
observations the paper derives from its three case studies (data reuse,
time-dependent inputs, disposable data, data scattering, partial file
access, metadata overhead, read-only sequential access, task independence),
each tied to the optimization guideline that addresses it.

Entry point: :func:`~repro.diagnostics.report.diagnose` runs every detector
and returns a :class:`~repro.diagnostics.report.DiagnosticReport`.
"""

from repro.diagnostics.advisor import AdvisorReport, Finding, Severity, advise
from repro.diagnostics.insights import Insight, InsightKind
from repro.diagnostics.detectors import (
    detect_data_reuse,
    detect_data_scattering,
    detect_disposable_data,
    detect_metadata_overhead,
    detect_partial_file_access,
    detect_readonly_sequential,
    detect_task_independence,
    detect_time_dependent_inputs,
    detect_vlen_layout,
)
from repro.diagnostics.report import DiagnosticReport, diagnose

__all__ = [
    "Insight",
    "InsightKind",
    "Severity",
    "Finding",
    "AdvisorReport",
    "advise",
    "DiagnosticReport",
    "diagnose",
    "detect_data_reuse",
    "detect_time_dependent_inputs",
    "detect_disposable_data",
    "detect_data_scattering",
    "detect_partial_file_access",
    "detect_metadata_overhead",
    "detect_readonly_sequential",
    "detect_task_independence",
    "detect_vlen_layout",
]
