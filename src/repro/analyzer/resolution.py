"""Resolution adjustment: grouping and aggregating complex graphs.

When SDGs "become complex due to workflows with numerous tasks and parallel
execution", the Workflow Analyzer lets users group and aggregate nodes by
time, space, task, or location.  :func:`aggregate_by` condenses a graph
using an arbitrary node→group mapping; helpers provide the standard
dimensions.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

import networkx as nx

from repro.analyzer.graphs import NodeKind

__all__ = [
    "aggregate_by",
    "group_tasks_by_prefix",
    "group_by_time_bucket",
    "condense_regions",
]


def aggregate_by(
    g: nx.DiGraph,
    grouper: Callable[[str, dict], Hashable],
) -> nx.DiGraph:
    """Condense ``g`` by merging nodes that map to the same group key.

    ``grouper(node_id, attrs)`` returns a hashable group key; nodes sharing
    a key collapse into one node whose volume is summed, and parallel edges
    between groups merge with summed statistics.  Self-loops created by the
    merge are dropped.

    The condensed node keeps the ``kind`` of its members when they agree
    and ``"mixed"`` otherwise.
    """
    groups: Dict[Hashable, list] = {}
    for node, attrs in g.nodes(data=True):
        groups.setdefault(grouper(node, attrs), []).append(node)

    out = nx.DiGraph(**g.graph)
    member_of: Dict[str, Hashable] = {}
    for key, members in groups.items():
        kinds = {g.nodes[m]["kind"] for m in members}
        kind = kinds.pop() if len(kinds) == 1 else "mixed"
        volume = sum(g.nodes[m].get("volume", 0) for m in members)
        starts = [g.nodes[m]["start"] for m in members if g.nodes[m].get("start") is not None]
        ends = [g.nodes[m]["end"] for m in members if g.nodes[m].get("end") is not None]
        out.add_node(
            str(key),
            kind=kind,
            label=str(key),
            volume=volume,
            members=len(members),
            start=min(starts) if starts else None,
            end=max(ends) if ends else None,
        )
        for m in members:
            member_of[m] = str(key)

    for u, v, attrs in g.edges(data=True):
        gu, gv = member_of[u], member_of[v]
        if gu == gv:
            continue
        data = out.get_edge_data(gu, gv)
        if data is None:
            out.add_edge(gu, gv, **dict(attrs))
        else:
            for field in ("count", "volume", "io_time", "data_ops", "data_bytes",
                          "metadata_ops", "metadata_bytes"):
                data[field] = data.get(field, 0) + attrs.get(field, 0)
            data["bandwidth"] = (
                data["volume"] / data["io_time"] if data.get("io_time") else 0.0
            )
    return out


def group_tasks_by_prefix(separator: str = "_", keep_parts: int = 1):
    """Grouper collapsing parallel task instances (``sim_00``, ``sim_01`` →
    ``sim``); non-task nodes stay singleton groups."""

    def grouper(node: str, attrs: dict) -> str:
        if attrs["kind"] == NodeKind.TASK.value:
            label = attrs["label"]
            parts = label.split(separator)
            return "task:" + separator.join(parts[:keep_parts])
        return node

    return grouper


def group_by_time_bucket(bucket_seconds: float):
    """Grouper merging task nodes whose start times share a time bucket."""
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")

    def grouper(node: str, attrs: dict) -> str:
        if attrs["kind"] == NodeKind.TASK.value and attrs.get("start") is not None:
            return f"t[{int(attrs['start'] // bucket_seconds)}]"
        return node

    return grouper


def condense_regions(g: nx.DiGraph) -> nx.DiGraph:
    """Collapse all address-region nodes of each file into one node —
    a coarser SDG that keeps the dataset layer but hides address detail."""

    def grouper(node: str, attrs: dict) -> str:
        if attrs["kind"] == NodeKind.REGION.value:
            return f"regions:{attrs['file']}"
        return node

    return aggregate_by(g, grouper)
