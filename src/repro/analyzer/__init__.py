"""The Workflow Analyzer — DaYu core component #2 (paper Section V).

Connects data accesses to workflow tasks as decorated dependence graphs:

- :func:`~repro.analyzer.graphs.build_ftg` — **File-Task Graphs**: files
  and tasks as nodes, directed read/write edges carrying access statistics
  (the paper's Figure 4 and 6).
- :func:`~repro.analyzer.graphs.build_sdg` — **Semantic Dataflow Graphs**:
  FTGs enriched with a data-object layer and optional file-address-region
  nodes (the paper's Figures 3, 5, 7, 8).
- :mod:`~repro.analyzer.resolution` — resolution adjustment: grouping and
  aggregating nodes by task, stage, time, or location when graphs get
  complex.
- :mod:`~repro.analyzer.html_export` / :mod:`~repro.analyzer.dot_export` —
  interactive self-contained HTML/SVG and Graphviz DOT renderings.
"""

from repro.analyzer.compare import (
    RunComparison,
    RunSummary,
    compare_runs,
    summarize_run,
)
from repro.analyzer.dot_export import to_dot
from repro.analyzer.graphs import (
    GraphBuilder,
    NodeKind,
    build_ftg,
    build_sdg,
    dataset_node,
    file_node,
    finalize_graph,
    mark_data_reuse,
    merge_edge_stats,
    opt_max,
    opt_min,
    region_node,
    task_node,
)
from repro.analyzer.html_export import to_html
from repro.analyzer.parallel import (
    AnalysisResult,
    ParallelAnalyzer,
    merge_graph_inplace,
)
from repro.analyzer.ordering import (
    CyclicDependencyError,
    dependency_dag,
    find_dependency_cycle,
    infer_task_order,
)
from repro.analyzer.resolution import aggregate_by, condense_regions
from repro.analyzer.serialize import (
    graph_from_json,
    graph_from_json_dict,
    graph_to_json,
    graph_to_json_dict,
)

__all__ = [
    "NodeKind",
    "GraphBuilder",
    "build_ftg",
    "build_sdg",
    "finalize_graph",
    "merge_edge_stats",
    "opt_min",
    "opt_max",
    "task_node",
    "file_node",
    "dataset_node",
    "region_node",
    "mark_data_reuse",
    "AnalysisResult",
    "ParallelAnalyzer",
    "merge_graph_inplace",
    "aggregate_by",
    "condense_regions",
    "to_dot",
    "to_html",
    "compare_runs",
    "summarize_run",
    "RunComparison",
    "RunSummary",
    "dependency_dag",
    "find_dependency_cycle",
    "infer_task_order",
    "CyclicDependencyError",
    "graph_to_json",
    "graph_from_json",
    "graph_to_json_dict",
    "graph_from_json_dict",
]
