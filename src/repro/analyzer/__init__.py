"""The Workflow Analyzer — DaYu core component #2 (paper Section V).

Connects data accesses to workflow tasks as decorated dependence graphs:

- :func:`~repro.analyzer.graphs.build_ftg` — **File-Task Graphs**: files
  and tasks as nodes, directed read/write edges carrying access statistics
  (the paper's Figure 4 and 6).
- :func:`~repro.analyzer.graphs.build_sdg` — **Semantic Dataflow Graphs**:
  FTGs enriched with a data-object layer and optional file-address-region
  nodes (the paper's Figures 3, 5, 7, 8).
- :mod:`~repro.analyzer.resolution` — resolution adjustment: grouping and
  aggregating nodes by task, stage, time, or location when graphs get
  complex.
- :mod:`~repro.analyzer.html_export` / :mod:`~repro.analyzer.dot_export` —
  interactive self-contained HTML/SVG and Graphviz DOT renderings.
"""

from repro.analyzer.compare import RunComparison, compare_runs
from repro.analyzer.dot_export import to_dot
from repro.analyzer.graphs import (
    NodeKind,
    build_ftg,
    build_sdg,
    dataset_node,
    file_node,
    mark_data_reuse,
    region_node,
    task_node,
)
from repro.analyzer.html_export import to_html
from repro.analyzer.ordering import (
    CyclicDependencyError,
    dependency_dag,
    infer_task_order,
)
from repro.analyzer.resolution import aggregate_by, condense_regions
from repro.analyzer.serialize import (
    graph_from_json,
    graph_from_json_dict,
    graph_to_json,
    graph_to_json_dict,
)

__all__ = [
    "NodeKind",
    "build_ftg",
    "build_sdg",
    "task_node",
    "file_node",
    "dataset_node",
    "region_node",
    "mark_data_reuse",
    "aggregate_by",
    "condense_regions",
    "to_dot",
    "to_html",
    "compare_runs",
    "RunComparison",
    "dependency_dag",
    "infer_task_order",
    "CyclicDependencyError",
    "graph_to_json",
    "graph_from_json",
    "graph_to_json_dict",
    "graph_from_json_dict",
]
