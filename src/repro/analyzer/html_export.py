"""Self-contained interactive HTML/SVG rendering of FTGs and SDGs.

The paper's Workflow Analyzer emits interactive HTML graphs whose edges can
be inspected for detailed access statistics (the orange pop-up of its
Figure 7).  This module produces an equivalent single-file rendering with
zero external dependencies:

- nodes colored by kind (tasks red, files dark blue, address regions light
  blue, datasets yellow — the paper's palette);
- node and edge width scaled by data volume;
- edge darkness scaled by bandwidth (darker = higher bandwidth, lighter =
  lower);
- click any edge for a statistics pop-up (access volume/count, average
  sizes, HDF5 data vs. metadata split, operation, bandwidth).

Layout: nodes are placed in columns by dataflow depth (left → right) and
ordered vertically by first-event time, approximating the paper's
"vertically by event start time, horizontally by event end time" layout.
"""

from __future__ import annotations

import html
import json
import math
from typing import Dict, List, Tuple

import networkx as nx

from repro.analyzer.graphs import NodeKind

__all__ = ["to_html"]

_NODE_FILL = {
    NodeKind.TASK.value: "#c0392b",
    NodeKind.FILE.value: "#1f4e79",
    NodeKind.DATASET.value: "#f1c40f",
    NodeKind.REGION.value: "#7fb3d5",
    "mixed": "#888888",
}

_COL_W = 220
_ROW_H = 56
_MARGIN = 60
_NODE_W = 150
_NODE_H = 30


def _layout(g: nx.DiGraph) -> Dict[str, Tuple[float, float]]:
    """Layered layout: x = dataflow depth, y = order within the layer.

    Depth is computed by bounded relaxation so cycles (e.g. the 2-cycles a
    write-after-read task creates with its file) terminate cleanly.
    """
    depth = {n: 0 for n in g.nodes}
    n = max(len(g), 1)
    for _ in range(n):
        changed = False
        for u, v in g.edges:
            if depth[v] < depth[u] + 1 and depth[u] + 1 <= n:
                # Skip the back-edge of trivial 2-cycles so A<->B settles.
                if g.has_edge(v, u) and depth[u] > depth[v]:
                    continue
                depth[v] = depth[u] + 1
                changed = True
        if not changed:
            break

    layers: Dict[int, List[str]] = {}
    for node, d in depth.items():
        layers.setdefault(d, []).append(node)

    pos: Dict[str, Tuple[float, float]] = {}
    for d, members in layers.items():
        members.sort(
            key=lambda m: (
                g.nodes[m].get("start") if g.nodes[m].get("start") is not None else math.inf,
                g.nodes[m].get("label", m),
            )
        )
        for i, m in enumerate(members):
            pos[m] = (_MARGIN + d * _COL_W, _MARGIN + i * _ROW_H)
    return pos


def _human_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f} {unit}" if unit == "B" else f"{value:.2f} {unit}"
        value /= 1024
    return f"{value} B"  # pragma: no cover


def _edge_width(volume: int, max_volume: int) -> float:
    if max_volume <= 0:
        return 1.5
    return 1.5 + 6.0 * math.log1p(volume) / math.log1p(max_volume)


def _edge_color(bandwidth: float, max_bw: float, reuse: bool) -> str:
    if reuse:
        return "#e67e22"
    if max_bw <= 0:
        return "#9db8cc"
    # Darker = higher bandwidth.
    frac = math.log1p(bandwidth) / math.log1p(max_bw)
    light = int(200 - 150 * frac)
    return f"rgb({light - 60 if light > 60 else 0},{light},{min(light + 40, 255)})"


def _edge_info(attrs: dict) -> dict:
    volume = attrs.get("volume", 0)
    count = attrs.get("count", 0)
    return {
        "Access Volume": _human_bytes(volume),
        "Access Count": count,
        "Average Access Size": _human_bytes(volume / count) if count else "0 B",
        "HDF5 Data Access Count": attrs.get("data_ops", 0),
        "Average HDF5 Data Access Size": _human_bytes(
            attrs.get("data_bytes", 0) / attrs["data_ops"]
        ) if attrs.get("data_ops") else "0 B",
        "HDF5 Metadata Access Count": attrs.get("metadata_ops", 0),
        "Average HDF5 Metadata Access Size": _human_bytes(
            attrs.get("metadata_bytes", 0) / attrs["metadata_ops"]
        ) if attrs.get("metadata_ops") else "0 B",
        "Operation": attrs.get("operation", "?"),
        "Bandwidth": f"{_human_bytes(attrs.get('bandwidth', 0.0))}/s",
    }


def to_html(g: nx.DiGraph, title: str = "DaYu Workflow Graph") -> str:
    """Render the graph as a standalone interactive HTML document."""
    pos = _layout(g)
    width = max((x for x, _ in pos.values()), default=0) + _NODE_W + _MARGIN
    height = max((y for _, y in pos.values()), default=0) + _NODE_H + _MARGIN
    max_volume = max((a.get("volume", 0) for _, _, a in g.edges(data=True)), default=0)
    max_bw = max((a.get("bandwidth", 0.0) for _, _, a in g.edges(data=True)), default=0.0)

    svg: List[str] = []
    # Edges first (under the nodes).
    for u, v, attrs in g.edges(data=True):
        x1, y1 = pos[u]
        x2, y2 = pos[v]
        sx, sy = x1 + _NODE_W, y1 + _NODE_H / 2
        ex, ey = x2, y2 + _NODE_H / 2
        if x2 <= x1:  # back edge: arc over the right side
            sx, ex = x1 + _NODE_W, x2 + _NODE_W
        mx = (sx + ex) / 2
        w = _edge_width(attrs.get("volume", 0), max_volume)
        color = _edge_color(attrs.get("bandwidth", 0.0), max_bw, attrs.get("reuse", False))
        info = json.dumps(
            {"source": g.nodes[u].get("label", u),
             "target": g.nodes[v].get("label", v),
             **_edge_info(attrs)}
        )
        svg.append(
            f'<path class="edge" d="M {sx:.0f} {sy:.0f} C {mx:.0f} {sy:.0f}, '
            f'{mx:.0f} {ey:.0f}, {ex:.0f} {ey:.0f}" stroke="{color}" '
            f'stroke-width="{w:.1f}" fill="none" '
            f"data-info='{html.escape(info, quote=True)}'>"
            f"<title>{html.escape(g.nodes[u].get('label', u))} → "
            f"{html.escape(g.nodes[v].get('label', v))}</title></path>"
        )
    # Nodes.
    for node, attrs in g.nodes(data=True):
        x, y = pos[node]
        fill = _NODE_FILL.get(attrs.get("kind", "mixed"), "#888888")
        label = str(attrs.get("label", node))
        shown = label if len(label) <= 24 else "…" + label[-23:]
        stroke = "#e67e22" if attrs.get("reused") else "#222"
        text_fill = "#222" if attrs.get("kind") == NodeKind.DATASET.value else "#fff"
        svg.append(
            f'<g class="node"><rect x="{x:.0f}" y="{y:.0f}" width="{_NODE_W}" '
            f'height="{_NODE_H}" rx="5" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="1.5"><title>{html.escape(label)} '
            f"({_human_bytes(attrs.get('volume', 0))})</title></rect>"
            f'<text x="{x + _NODE_W / 2:.0f}" y="{y + _NODE_H / 2 + 4:.0f}" '
            f'text-anchor="middle" font-size="11" fill="{text_fill}">'
            f"{html.escape(shown)}</text></g>"
        )

    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:{color}">'
        f"</span>{kind}</span>"
        for kind, color in (
            ("tasks", _NODE_FILL[NodeKind.TASK.value]),
            ("files", _NODE_FILL[NodeKind.FILE.value]),
            ("datasets", _NODE_FILL[NodeKind.DATASET.value]),
            ("addr regions", _NODE_FILL[NodeKind.REGION.value]),
        )
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
 body {{ font-family: sans-serif; margin: 0; }}
 header {{ padding: 8px 16px; background: #f4f4f4; border-bottom: 1px solid #ddd; }}
 .key {{ margin-right: 14px; font-size: 12px; }}
 .swatch {{ display:inline-block; width:12px; height:12px; margin-right:4px;
            vertical-align:middle; border:1px solid #333; }}
 .edge {{ cursor: pointer; opacity: 0.85; }}
 .edge:hover {{ opacity: 1; stroke: #e74c3c; }}
 #popup {{ display:none; position:fixed; background:#fff; border:2px solid #e67e22;
          padding:10px 14px; font-size:12px; box-shadow:2px 2px 8px rgba(0,0,0,.3);
          max-width: 360px; z-index: 10; }}
 #popup table td {{ padding: 1px 6px; }}
</style></head>
<body>
<header><strong>{html.escape(title)}</strong> &nbsp; {legend}
 <span class="key">(click an edge for access statistics)</span></header>
<div id="popup"></div>
<svg width="{width:.0f}" height="{height:.0f}" xmlns="http://www.w3.org/2000/svg">
{chr(10).join(svg)}
</svg>
<script>
const popup = document.getElementById('popup');
document.querySelectorAll('.edge').forEach(e => {{
  e.addEventListener('click', ev => {{
    const info = JSON.parse(e.dataset.info);
    let rows = '';
    for (const [k, v] of Object.entries(info)) {{
      rows += `<tr><td><b>${{k}}</b></td><td>${{v}}</td></tr>`;
    }}
    popup.innerHTML = `<table>${{rows}}</table>`;
    popup.style.left = (ev.clientX + 12) + 'px';
    popup.style.top = (ev.clientY + 12) + 'px';
    popup.style.display = 'block';
    ev.stopPropagation();
  }});
}});
document.body.addEventListener('click', () => popup.style.display = 'none');
</script>
</body></html>
"""
