"""Run comparison: quantify what an optimization changed.

After applying DaYu's recommendations, the analyst wants to see *where*
the I/O went: which files lost operations, which tasks got faster, how the
metadata/data balance moved.  :func:`compare_runs` diffs two runs' task
profiles and reports per-task and per-file deltas.

Either side may be a pre-aggregated :class:`RunSummary` (from
:func:`summarize_run`) instead of raw profiles — so a baseline compared
against many candidate runs is walked once, not once per comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.mapper.mapper import TaskProfile

__all__ = ["RunComparison", "RunSummary", "compare_runs", "summarize_run"]


@dataclass(frozen=True)
class _Totals:
    ops: int = 0
    volume: int = 0
    metadata_ops: int = 0
    io_time: float = 0.0

    def __add__(self, other: "_Totals") -> "_Totals":
        return _Totals(
            self.ops + other.ops,
            self.volume + other.volume,
            self.metadata_ops + other.metadata_ops,
            self.io_time + other.io_time,
        )


def _per_task(profiles: Sequence[TaskProfile]) -> Dict[str, _Totals]:
    out: Dict[str, _Totals] = {}
    for p in profiles:
        total = _Totals()
        for s in p.dataset_stats:
            total = total + _Totals(s.access_count, s.access_volume,
                                    s.metadata_ops, s.io_time)
        out[p.task] = total
    return out


def _per_file(profiles: Sequence[TaskProfile]) -> Dict[str, _Totals]:
    out: Dict[str, _Totals] = {}
    for p in profiles:
        for s in p.dataset_stats:
            cur = out.get(s.file, _Totals())
            out[s.file] = cur + _Totals(s.access_count, s.access_volume,
                                        s.metadata_ops, s.io_time)
    return out


@dataclass(frozen=True)
class RunSummary:
    """Per-task and per-file aggregates of one run — the unit
    :func:`compare_runs` actually consumes.  Build once with
    :func:`summarize_run` and reuse across comparisons."""

    per_task: Dict[str, _Totals]
    per_file: Dict[str, _Totals]


def summarize_run(profiles: Sequence[TaskProfile]) -> RunSummary:
    """Aggregate a run's profiles for (repeated) comparison."""
    return RunSummary(per_task=_per_task(profiles), per_file=_per_file(profiles))


def _as_summary(run: Union[Sequence[TaskProfile], RunSummary]) -> RunSummary:
    if isinstance(run, RunSummary):
        return run
    return summarize_run(run)


def _delta(before: float, after: float) -> float:
    """Signed relative change; -0.5 means halved, +1.0 means doubled."""
    if before == 0:
        return 0.0 if after == 0 else float("inf")
    return (after - before) / before


@dataclass
class RunComparison:
    """Differences between a baseline run and an optimized run."""

    task_rows: List[dict] = field(default_factory=list)
    file_rows: List[dict] = field(default_factory=list)

    @property
    def total_io_time_delta(self) -> float:
        before = sum(r["io_time_before"] for r in self.task_rows)
        after = sum(r["io_time_after"] for r in self.task_rows)
        return _delta(before, after)

    @property
    def total_ops_delta(self) -> float:
        before = sum(r["ops_before"] for r in self.task_rows)
        after = sum(r["ops_after"] for r in self.task_rows)
        return _delta(before, after)

    def improved_files(self, metric: str = "io_time") -> List[str]:
        """Files whose ``metric`` decreased, most-improved first."""
        rows = [r for r in self.file_rows
                if r[f"{metric}_after"] < r[f"{metric}_before"]]
        rows.sort(key=lambda r: r[f"{metric}_after"] - r[f"{metric}_before"])
        return [r["file"] for r in rows]

    def regressed_files(self, metric: str = "io_time") -> List[str]:
        rows = [r for r in self.file_rows
                if r[f"{metric}_after"] > r[f"{metric}_before"]]
        rows.sort(key=lambda r: r[f"{metric}_before"] - r[f"{metric}_after"])
        return [r["file"] for r in rows]

    def to_markdown(self) -> str:
        def pct(x: float) -> str:
            if x == float("inf"):
                return "new"
            return f"{x * 100:+.1f}%"

        lines = ["### Run comparison (baseline → optimized)", ""]
        lines.append(
            f"Total I/O time {pct(self.total_io_time_delta)}, "
            f"operations {pct(self.total_ops_delta)}."
        )
        lines.append("")
        lines.append("| task | ops | volume | metadata ops | I/O time |")
        lines.append("|---|---|---|---|---|")
        for r in self.task_rows:
            lines.append(
                f"| {r['task']} | {pct(r['ops_delta'])} "
                f"| {pct(r['volume_delta'])} | {pct(r['metadata_delta'])} "
                f"| {pct(r['io_time_delta'])} |"
            )
        return "\n".join(lines)


def compare_runs(
    baseline: Union[Sequence[TaskProfile], RunSummary],
    optimized: Union[Sequence[TaskProfile], RunSummary],
) -> RunComparison:
    """Diff two runs.  Tasks/files present in only one run still appear
    (with zeros on the other side).  Either side may be raw profiles or a
    pre-built :class:`RunSummary`."""
    comparison = RunComparison()

    before, after = _as_summary(baseline), _as_summary(optimized)
    before_tasks, after_tasks = before.per_task, after.per_task
    for task in sorted(set(before_tasks) | set(after_tasks)):
        b = before_tasks.get(task, _Totals())
        a = after_tasks.get(task, _Totals())
        comparison.task_rows.append({
            "task": task,
            "ops_before": b.ops, "ops_after": a.ops,
            "ops_delta": _delta(b.ops, a.ops),
            "volume_before": b.volume, "volume_after": a.volume,
            "volume_delta": _delta(b.volume, a.volume),
            "metadata_before": b.metadata_ops, "metadata_after": a.metadata_ops,
            "metadata_delta": _delta(b.metadata_ops, a.metadata_ops),
            "io_time_before": b.io_time, "io_time_after": a.io_time,
            "io_time_delta": _delta(b.io_time, a.io_time),
        })

    before_files, after_files = before.per_file, after.per_file
    for file in sorted(set(before_files) | set(after_files)):
        b = before_files.get(file, _Totals())
        a = after_files.get(file, _Totals())
        comparison.file_rows.append({
            "file": file,
            "ops_before": b.ops, "ops_after": a.ops,
            "io_time_before": b.io_time, "io_time_after": a.io_time,
        })
    return comparison
