"""Parallel profile loading and sharded FTG/SDG construction.

The offline Workflow Analyzer reads one trace file per task.  For large
workflows the load-and-build step is embarrassingly parallel in two
places:

1. **Parsing** — each saved profile decodes independently; and
2. **Graph construction** — any contiguous shard of the execution-ordered
   profile sequence builds an independent sub-graph whose edge statistics
   merge commutatively (:func:`~repro.analyzer.graphs.merge_edge_stats`).

:class:`ParallelAnalyzer` fans both across a
:class:`concurrent.futures.ProcessPoolExecutor` and merges the shard
graphs **in shard order**, which preserves node/edge first-touch order —
so the merged result is *identical* (byte-for-byte after
:func:`~repro.analyzer.serialize.graph_to_json`) to a serial
:func:`build_ftg`/:func:`build_sdg` over the same profiles.  Per-edge
``io_time`` floats match too: contributions accumulate in lists and are
folded with the correctly-rounded :func:`math.fsum` at finalization.

With ``max_workers=1`` (or a single shard) everything runs in-process —
no pool, no pickling — which is also the fast path on small boxes where
the win comes from the binary codec and ``with_io_records=False`` rather
than from fan-out.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from repro.analyzer.graphs import (
    GraphBuilder,
    _ordered_profiles,
    finalize_graph,
    merge_edge_stats,
)
from repro.mapper.mapper import TaskProfile
from repro.mapper.persist import load_profiles_path, trace_paths

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import LintReport
    from repro.lint.rules import LintConfig

__all__ = ["AnalysisResult", "ParallelAnalyzer", "merge_graph_inplace"]


def merge_graph_inplace(target: nx.DiGraph, source: nx.DiGraph) -> nx.DiGraph:
    """Fold one unfinalized shard graph into ``target``, in place.

    Nodes new to ``target`` are adopted with their attributes; nodes
    present on both sides add their ``volume`` (every other shared node
    attribute is shard-invariant).  Edge statistics merge through
    :func:`merge_edge_stats`.  Merging shard graphs in shard order
    reproduces the serial builder's node/edge insertion order exactly.
    """
    for node, attrs in source.nodes(data=True):
        if node in target:
            target.nodes[node]["volume"] += attrs.get("volume", 0)
        else:
            target.add_node(node, **attrs)
    for u, v, attrs in source.edges(data=True):
        data = target.get_edge_data(u, v)
        if data is None:
            target.add_edge(u, v, **attrs)
        else:
            merge_edge_stats(data, attrs)
    return target


def _load_shard(paths: Sequence[str], with_io_records: bool) -> List[TaskProfile]:
    return [profile for p in paths
            for profile in load_profiles_path(
                p, with_io_records=with_io_records)]


def _build_shard(
    profiles: Sequence[TaskProfile],
    seq_base: int,
    kind: str,
    options: dict,
) -> nx.DiGraph:
    builder = GraphBuilder(kind, seq_base=seq_base, **options)
    builder.add_profiles(profiles)
    return builder.graph


def _lint_shard(profiles: Sequence[TaskProfile], config):
    """Worker-side lint unit: per-profile findings + cross-task digests.

    Imports lazily so worker processes only pay for ``repro.lint`` when
    linting is requested (and to keep ``repro.analyzer`` import-light).
    """
    from repro.lint.context import summarize_profile
    from repro.lint.engine import run_profile_rules

    return [(run_profile_rules(p, config),
             summarize_profile(p, config.page_size))
            for p in profiles]


def _diff_shard(profiles: Sequence[TaskProfile], contracts, config):
    """Worker-side drift unit: per-task contract-vs-trace findings.

    The DY45x rules are per-task (summary + that task's contract), so the
    whole join shards; only findings travel back.
    """
    from repro.lint.context import summarize_profile
    from repro.lint.engine import run_drift_rules

    out = []
    for p in profiles:
        summary = summarize_profile(p, config.page_size)
        out.append(run_drift_rules(summary, contracts.get(p.task), config))
    return out


@dataclass
class AnalysisResult:
    """Everything :meth:`ParallelAnalyzer.analyze` produces for one run."""

    profiles: List[TaskProfile]
    ftg: nx.DiGraph
    sdg: nx.DiGraph
    #: Present when :meth:`ParallelAnalyzer.analyze` ran with ``lint=True``.
    lint_report: Optional["LintReport"] = None


class ParallelAnalyzer:
    """Scale-out load + graph construction over saved task profiles.

    Args:
        max_workers: Process-pool width; defaults to ``os.cpu_count()``.
            ``1`` forces the in-process path (no pool, no pickling).
        shard_size: Profiles (or trace files) per shard; defaults to an
            even split across workers.
        with_io_records: Materialize per-operation records when loading.
            Graph construction and the diagnostics never read them, so the
            default ``False`` skips the dominant trace section entirely —
            an O(1) seek per profile in the binary format.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        with_io_records: bool = False,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if shard_size is not None and shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.shard_size = shard_size
        self.with_io_records = with_io_records

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        """True when every fan-out point must run in-process.

        ``--jobs 1`` means *no pool spawn, ever* — on single-core CI
        runners the process startup would dwarf the work.  All fan-out
        paths (:meth:`load`, :meth:`_build`, :meth:`lint`, :meth:`diff`)
        route through :meth:`_fan_out` or check this flag directly.
        """
        return self.max_workers <= 1

    def _chunks(self, items: Sequence) -> List[Sequence]:
        size = self.shard_size or max(1, math.ceil(len(items) / self.max_workers))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _fan_out(self, worker, shards: List[Sequence]) -> List:
        """Run ``worker`` over shards — pooled, or in-process when a pool
        cannot help (one worker / one shard)."""
        if self.inline or len(shards) <= 1:
            return [worker(shard) for shard in shards]
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.max_workers, len(shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, shards))

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, directory: str,
             trace_format: str = "auto") -> List[TaskProfile]:
        """Load every saved profile under a host directory, in parallel,
        ordered by task start time (execution order).  Formats are
        detected from magic bytes, so mixed directories work without
        flags; ``trace_format`` restricts to one format when given.
        Columnar run files are flattened into their profiles."""
        paths = trace_paths(directory, trace_format=trace_format)
        loaded = self._fan_out(
            partial(_load_shard, with_io_records=self.with_io_records),
            self._chunks(paths),
        )
        profiles = [p for shard in loaded for p in shard]
        profiles.sort(key=lambda p: p.span.start)
        return profiles

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _build(
        self,
        kind: str,
        profiles: Iterable[TaskProfile],
        task_order: Optional[Sequence[str]],
        options: dict,
    ) -> nx.DiGraph:
        ordered = _ordered_profiles(profiles, task_order)
        shards = self._chunks(ordered)
        if self.inline or len(shards) <= 1:
            builder = GraphBuilder(kind, **options)
            builder.add_profiles(ordered)
            return builder.build(copy=False)
        seq_bases: List[int] = []
        base = 0
        for shard in shards:
            seq_bases.append(base)
            base += len(shard)
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.max_workers, len(shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            graphs = list(pool.map(
                partial(_build_shard, kind=kind, options=options),
                shards, seq_bases,
            ))
        merged = graphs[0]
        for g in graphs[1:]:
            merge_graph_inplace(merged, g)
        return finalize_graph(merged,
                              with_regions=options.get("with_regions", False))

    def build_ftg(
        self,
        profiles: Iterable[TaskProfile],
        task_order: Optional[Sequence[str]] = None,
    ) -> nx.DiGraph:
        """Sharded :func:`~repro.analyzer.graphs.build_ftg` — same result."""
        return self._build("ftg", profiles, task_order, {})

    def build_sdg(
        self,
        profiles: Iterable[TaskProfile],
        task_order: Optional[Sequence[str]] = None,
        with_regions: bool = False,
        region_bytes: int = 65536,
        page_size: int = 4096,
    ) -> nx.DiGraph:
        """Sharded :func:`~repro.analyzer.graphs.build_sdg` — same result."""
        options = dict(with_regions=with_regions, region_bytes=region_bytes,
                       page_size=page_size)
        return self._build("sdg", profiles, task_order, options)

    # ------------------------------------------------------------------
    # Linting
    # ------------------------------------------------------------------
    def lint(
        self,
        profiles: Sequence[TaskProfile],
        config: Optional["LintConfig"] = None,
        attempts: Optional[Dict[str, int]] = None,
    ) -> "LintReport":
        """Sharded :func:`~repro.lint.engine.lint_profiles` — same report.

        Profile-scoped rules (the DY3xx sanitizer and per-task DY1xx
        checks) shard across the worker pool together with the per-profile
        cross-task digests; only the small findings and digests travel
        back, and the workflow- and race-scoped rules run in-process over
        them.  Race rules reuse the worker-computed summaries, so the
        report (and its fingerprints) is byte-identical to the serial
        :func:`~repro.lint.engine.lint_profiles`.  ``attempts`` feeds the
        DY505 retry-race rule.
        """
        from repro.lint.engine import (
            LintReport,
            run_race_rules,
            run_workflow_rules,
        )
        from repro.lint.findings import Finding
        from repro.lint.race import build_trace_race_context
        from repro.lint.rules import LintConfig

        config = config or LintConfig()
        profiles = list(profiles)
        results = self._fan_out(partial(_lint_shard, config=config),
                                self._chunks(profiles))
        findings = []
        summaries = []
        for shard in results:
            for shard_findings, summary in shard:
                findings.extend(shard_findings)
                summaries.append(summary)
        findings.extend(
            run_workflow_rules(profiles, config, summaries=summaries))
        if config.enabled_rules(scope="race"):
            ctx = build_trace_race_context(profiles, config,
                                           summaries=summaries,
                                           attempts=attempts)
            findings.extend(run_race_rules(ctx, config))
        findings.sort(key=Finding.sort_key)
        return LintReport(findings=findings,
                          tasks=sorted(p.task for p in profiles))

    def lint_run(
        self,
        source: str,
        config: Optional["LintConfig"] = None,
        stats_out: Optional[dict] = None,
        attempts: Optional[Dict[str, int]] = None,
    ) -> "LintReport":
        """Lint columnar traces with page-stats predicate pushdown.

        ``source`` is a ``.dayuc`` file (single trace or compacted run)
        or a directory of them.  Rules that declare a ``pushdown``
        predicate are skipped — per group for profile-scoped rules, for
        the whole run for workflow-scoped ones — whenever the chunk
        footer statistics prove they cannot fire; the surviving rules see
        exactly what :meth:`lint` would show them, so the report (and its
        finding fingerprints) is identical to the row path's.  When every
        workflow rule is pruned the cross-task index and happens-before
        ordering are never built at all.

        Runs in-process: the whole point is to *not* touch most of the
        data, so there is nothing worth shipping to a pool.  Pass
        ``stats_out`` (a dict) to receive skip counters.
        """
        import os as _os

        from repro.lint.context import (
            build_index,
            compute_ordering,
            summarize_profile,
        )
        from repro.lint.engine import LintReport
        from repro.lint.findings import Finding
        from repro.lint.rules import LintConfig
        from repro.mapper.columnar import (
            COLUMNAR_TRACE_SUFFIX,
            GroupStatsView,
            RunReader,
            RunStatsView,
        )

        config = config or LintConfig()
        if _os.path.isdir(source):
            paths = sorted(
                _os.path.join(source, name)
                for name in _os.listdir(source)
                if name.endswith(COLUMNAR_TRACE_SUFFIX))
        else:
            paths = [source]
        readers = [RunReader.open(p) for p in paths]
        try:
            groups = sorted((g for r in readers for g in r.groups),
                            key=lambda g: g.start)
            profile_rules = config.enabled_rules(scope="profile")
            evaluated = skipped = 0
            run_view = RunStatsView.over(groups)
            surviving = []
            for r in config.enabled_rules(scope="workflow"):
                if r.pushdown is not None and not r.pushdown(run_view,
                                                             config):
                    skipped += 1
                else:
                    surviving.append(r)
            # Race-scoped rules push down over the same whole-run view:
            # a run whose page statistics show no two tasks ever wrote
            # the same data object cannot hold a DY501, etc.
            surviving_race = []
            for r in config.enabled_rules(scope="race"):
                if r.pushdown is not None and not r.pushdown(run_view,
                                                             config):
                    skipped += 1
                else:
                    surviving_race.append(r)
            need_summaries = bool(surviving or surviving_race)
            findings: List = []
            profiles = []
            summaries = []
            for group in groups:
                profile = group.to_profile(
                    with_io_records=self.with_io_records)
                profiles.append(profile)
                if need_summaries:
                    summaries.append(
                        summarize_profile(profile, config.page_size))
                view = GroupStatsView(group)
                for r in profile_rules:
                    if r.pushdown is not None and not r.pushdown(view,
                                                                 config):
                        skipped += 1
                        continue
                    evaluated += 1
                    findings.extend(r.check(profile, config))
            if surviving:
                index = build_index(summaries)
                ordering = compute_ordering(profiles)
                for r in surviving:
                    evaluated += 1
                    findings.extend(r.check(index, ordering, config))
            if surviving_race:
                from repro.lint.race import build_trace_race_context

                ctx = build_trace_race_context(profiles, config,
                                               summaries=summaries,
                                               attempts=attempts)
                for r in surviving_race:
                    evaluated += 1
                    findings.extend(r.check(ctx, config))
            if stats_out is not None:
                stats_out["rules_evaluated"] = evaluated
                stats_out["rules_skipped"] = skipped
                stats_out["ordering_built"] = bool(surviving)
                stats_out["n_groups"] = len(groups)
            findings.sort(key=Finding.sort_key)
            return LintReport(findings=findings,
                              tasks=sorted(p.task for p in profiles))
        finally:
            for r in readers:
                r.close()

    def diff_run(
        self,
        source: str,
        contracts: Dict[str, object],
        config: Optional["LintConfig"] = None,
        stats_out: Optional[dict] = None,
        cost=None,
    ) -> "LintReport":
        """Drift (and cost-prophet) linting over columnar traces.

        The columnar sibling of :meth:`diff`: joins a ``.dayuc`` run (or
        a directory of them) against ``contracts`` through the DY45x
        drift rules.  When ``cost`` — a
        :class:`~repro.lint.cost.CostContext` — is supplied, the DY60x
        predicted-performance findings are appended and the DY65x
        prediction-drift rules run against the traced groups, with
        their pushdown predicates evaluated over the run footer view:
        footers record exact spans and byte sums, so a run whose traces
        provably match the prediction is cleared without decoding a
        column.  Findings and fingerprints are byte-identical to the
        row path's (:meth:`diff` plus
        :func:`~repro.lint.engine.cost_findings`).

        Runs in-process, like :meth:`lint_run`; pass ``stats_out`` (a
        dict) to receive skip counters.
        """
        import os as _os

        from repro.lint.context import summarize_profile
        from repro.lint.engine import (
            LintReport,
            run_drift_rules,
            run_perf_rules,
        )
        from repro.lint.findings import Finding
        from repro.lint.rules import LintConfig
        from repro.mapper.columnar import (
            COLUMNAR_TRACE_SUFFIX,
            RunReader,
            RunStatsView,
        )

        config = config or LintConfig()
        if _os.path.isdir(source):
            paths = sorted(
                _os.path.join(source, name)
                for name in _os.listdir(source)
                if name.endswith(COLUMNAR_TRACE_SUFFIX))
        else:
            paths = [source]
        readers = [RunReader.open(p) for p in paths]
        try:
            groups = sorted((g for r in readers for g in r.groups),
                            key=lambda g: g.start)
            drift_rules = config.enabled_rules(scope="drift")
            evaluated = skipped = 0
            findings: List = []
            profiles = []
            for group in groups:
                profile = group.to_profile(
                    with_io_records=self.with_io_records)
                profiles.append(profile)
                summary = summarize_profile(profile, config.page_size)
                contract = contracts.get(profile.task)
                for r in drift_rules:
                    evaluated += 1
                    findings.extend(r.check(summary, contract, config))
            if cost is not None:
                for r in config.enabled_rules(scope="perf"):
                    evaluated += 1
                findings.extend(run_perf_rules(cost, config))
                run_view = RunStatsView.over(groups)
                surviving = []
                for r in config.enabled_rules(scope="costdrift"):
                    if (r.pushdown is not None
                            and not r.pushdown(run_view, config,
                                               cost.report)):
                        skipped += 1
                    else:
                        surviving.append(r)
                if surviving:
                    from repro.lint.cost import build_cost_drift_context

                    dctx = build_cost_drift_context(cost.report, profiles)
                    for r in surviving:
                        evaluated += 1
                        findings.extend(r.check(dctx, config))
            if stats_out is not None:
                stats_out["rules_evaluated"] = evaluated
                stats_out["rules_skipped"] = skipped
                stats_out["n_groups"] = len(groups)
            findings.sort(key=Finding.sort_key)
            return LintReport(findings=findings,
                              tasks=sorted(p.task for p in profiles))
        finally:
            for r in readers:
                r.close()

    def diff(
        self,
        profiles: Sequence[TaskProfile],
        contracts: Dict[str, object],
        config: Optional["LintConfig"] = None,
    ) -> "LintReport":
        """Sharded :func:`~repro.lint.engine.diff_profiles` — same report.

        The drift (DY45x) join is per-task, so summaries and rule
        evaluation both run in the worker pool; the serial part is just
        the deterministic sort.  ``contracts`` maps task name to its
        effective :class:`~repro.workflow.contracts.TaskContract`.
        """
        from repro.lint.engine import LintReport
        from repro.lint.findings import Finding
        from repro.lint.rules import LintConfig

        config = config or LintConfig()
        profiles = list(profiles)
        results = self._fan_out(
            partial(_diff_shard, contracts=dict(contracts), config=config),
            self._chunks(profiles))
        findings = [f for shard in results
                    for task_findings in shard
                    for f in task_findings]
        findings.sort(key=Finding.sort_key)
        return LintReport(findings=findings,
                          tasks=sorted(p.task for p in profiles))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def analyze(
        self,
        directory: str,
        task_order: Optional[Sequence[str]] = None,
        with_regions: bool = False,
        region_bytes: int = 65536,
        page_size: int = 4096,
        lint: bool = False,
        lint_config: Optional["LintConfig"] = None,
    ) -> AnalysisResult:
        """Load a trace directory and build both graphs (and, optionally,
        the lint report in the same pass)."""
        profiles = self.load(directory)
        ftg = self.build_ftg(profiles, task_order)
        sdg = self.build_sdg(profiles, task_order, with_regions=with_regions,
                             region_bytes=region_bytes, page_size=page_size)
        lint_report = self.lint(profiles, lint_config) if lint else None
        return AnalysisResult(profiles=profiles, ftg=ftg, sdg=sdg,
                              lint_report=lint_report)
