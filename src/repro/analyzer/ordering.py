"""Task-order inference from dataflow.

The paper's FTG construction "requires manual input for task ordering;
future DaYu versions will automate this process by integrating with
workflow management tools".  This module provides that automation from
the traces themselves: producer→consumer constraints are recovered from
file-level read-after-write relations, and a stable topological sort
reconstructs an execution order — so profiles collected without ordering
metadata (e.g. from concurrently-logging tasks) can still be assembled
into a correct FTG.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.mapper.mapper import TaskProfile

__all__ = [
    "dependency_dag",
    "find_dependency_cycle",
    "infer_task_order",
    "CyclicDependencyError",
]


class CyclicDependencyError(ValueError):
    """The traces imply a dependency cycle (e.g. two tasks exchanging data
    through the same files in both directions).

    Attributes:
        cycle: The offending tasks in cycle order (the first task is not
            repeated at the end).
    """

    def __init__(self, cycle: Sequence[str]):
        self.cycle = list(cycle)
        path = " -> ".join([*self.cycle, self.cycle[0]]) if self.cycle else "?"
        super().__init__(f"tasks form a dependency cycle: {path}")


def find_dependency_cycle(dag: nx.DiGraph) -> List[str]:
    """Task names forming one dependency cycle of ``dag`` (empty if none)."""
    try:
        edges = nx.find_cycle(dag)
    except nx.NetworkXNoCycle:
        return []
    return [a for a, _b in edges]


def dependency_dag(profiles: Sequence[TaskProfile]) -> nx.DiGraph:
    """Build the task dependency DAG from producer→consumer file relations.

    An edge ``a → b`` means task ``b`` reads data task ``a`` wrote.  The
    timestamps inside each profile disambiguate tasks that both read and
    write the same file: only writes that *precede* another task's first
    read of the file create an edge.
    """
    g = nx.DiGraph()
    for p in profiles:
        g.add_node(p.task)

    # Per file: (task, first_write_time) and (task, first_read_time).
    writes: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
    reads: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
    for p in profiles:
        per_file_write: Dict[str, float] = {}
        per_file_read: Dict[str, float] = {}
        for s in p.dataset_stats:
            if s.first_start is None:
                continue
            if s.writes:
                cur = per_file_write.get(s.file)
                per_file_write[s.file] = (
                    s.first_start if cur is None else min(cur, s.first_start))
            if s.reads:
                cur = per_file_read.get(s.file)
                per_file_read[s.file] = (
                    s.first_start if cur is None else min(cur, s.first_start))
        for file, t in per_file_write.items():
            writes[file].append((p.task, t))
        for file, t in per_file_read.items():
            reads[file].append((p.task, t))

    for file, readers in reads.items():
        for reader, read_time in readers:
            for writer, write_time in writes.get(file, []):
                if writer != reader and write_time < read_time:
                    g.add_edge(writer, reader, file=file)
    return g


def infer_task_order(profiles: Sequence[TaskProfile]) -> List[str]:
    """Reconstruct an execution order consistent with the dataflow.

    Returns task names topologically sorted by the dependency DAG, with
    ties broken by each task's recorded start time (stable for tasks with
    no data relation at all).

    Raises:
        CyclicDependencyError: If the traces imply a dependency cycle.
    """
    dag = dependency_dag(profiles)
    start_of = {p.task: p.span.start for p in profiles}
    try:
        generations = list(nx.topological_generations(dag))
    except nx.NetworkXUnfeasible as exc:
        raise CyclicDependencyError(find_dependency_cycle(dag)) from exc
    order: List[str] = []
    for generation in generations:
        order.extend(sorted(generation, key=lambda t: (start_of.get(t, 0.0), t)))
    return order
