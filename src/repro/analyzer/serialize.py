"""Graph serialization: FTG/SDG as JSON for external tooling.

The HTML and DOT exports target humans; this codec targets programs —
dashboards, notebooks, or downstream optimizers that want the decorated
graph without re-parsing traces.  Round-trips every node and edge
attribute the builders set.
"""

from __future__ import annotations

import json
from typing import Union

import networkx as nx

__all__ = ["graph_to_json_dict", "graph_from_json_dict", "graph_to_json",
           "graph_from_json"]


def graph_to_json_dict(g: nx.DiGraph) -> dict:
    """Serialize a decorated workflow graph to plain JSON-safe structures."""
    def clean(attrs: dict) -> dict:
        out = {}
        for k, v in attrs.items():
            if isinstance(v, tuple):
                v = list(v)
            out[k] = v
        return out

    return {
        "graph": clean(dict(g.graph)),
        "nodes": [{"id": n, **clean(a)} for n, a in g.nodes(data=True)],
        "edges": [{"source": u, "target": v, **clean(a)}
                  for u, v, a in g.edges(data=True)],
    }


def graph_from_json_dict(payload: dict) -> nx.DiGraph:
    """Rebuild a workflow graph from :func:`graph_to_json_dict` output."""
    g = nx.DiGraph(**payload.get("graph", {}))
    for node in payload.get("nodes", []):
        attrs = dict(node)
        node_id = attrs.pop("id")
        g.add_node(node_id, **attrs)
    for edge in payload.get("edges", []):
        attrs = dict(edge)
        u = attrs.pop("source")
        v = attrs.pop("target")
        g.add_edge(u, v, **attrs)
    return g


def graph_to_json(g: nx.DiGraph, indent: Union[int, None] = None) -> str:
    return json.dumps(graph_to_json_dict(g), indent=indent)


def graph_from_json(text: str) -> nx.DiGraph:
    return graph_from_json_dict(json.loads(text))
