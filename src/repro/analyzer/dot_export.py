"""Graphviz DOT export of FTGs and SDGs.

A textual rendering useful for debugging and for piping into external
Graphviz tooling.  Node colors follow the paper's convention: tasks red,
files blue, datasets yellow, address regions light blue.
"""

from __future__ import annotations

import networkx as nx

from repro.analyzer.graphs import NodeKind

__all__ = ["to_dot"]

_NODE_STYLE = {
    NodeKind.TASK.value: ("box", "#c0392b"),
    NodeKind.FILE.value: ("folder", "#1f4e79"),
    NodeKind.DATASET.value: ("ellipse", "#f1c40f"),
    NodeKind.REGION.value: ("note", "#7fb3d5"),
    "mixed": ("box", "#888888"),
}


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _human_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if n < 1024 or unit == "TB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n} B"  # pragma: no cover


def to_dot(g: nx.DiGraph, title: str = "dayu") -> str:
    """Render the graph as Graphviz DOT text."""
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;", "  node [fontsize=10];"]
    for node, attrs in g.nodes(data=True):
        shape, color = _NODE_STYLE.get(attrs.get("kind", "mixed"), _NODE_STYLE["mixed"])
        label = attrs.get("label", node)
        vol = attrs.get("volume", 0)
        if vol:
            label = f"{label}\\n{_human_bytes(vol)}"
        style = "filled"
        if attrs.get("reused"):
            style = "filled,bold"
        lines.append(
            f"  {_quote(node)} [label={_quote(label)} shape={shape} "
            f'style="{style}" fillcolor="{color}" fontcolor=white];'
        )
    for u, v, attrs in g.edges(data=True):
        volume = attrs.get("volume", 0)
        count = attrs.get("count", 0)
        bw = attrs.get("bandwidth", 0.0)
        color = "#e67e22" if attrs.get("reuse") else "#2c3e50"
        label = f"{_human_bytes(volume)} / {count} ops"
        tooltip = (
            f"op={attrs.get('operation')} volume={volume} count={count} "
            f"bandwidth={bw:.0f} B/s metadata_ops={attrs.get('metadata_ops', 0)} "
            f"data_ops={attrs.get('data_ops', 0)}"
        )
        lines.append(
            f"  {_quote(u)} -> {_quote(v)} [label={_quote(label)} "
            f'color="{color}" tooltip={_quote(tooltip)}];'
        )
    lines.append("}")
    return "\n".join(lines)
