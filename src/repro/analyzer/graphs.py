"""FTG and SDG construction.

Both graphs are ``networkx.DiGraph`` instances with typed nodes and
statistics-decorated edges:

Node attributes:
    ``kind`` (:class:`NodeKind` value), ``label`` (display name), and for
    task nodes ``start``/``end`` (execution span); for data-bearing nodes
    ``volume`` (bytes moved through the node).

Edge attributes:
    ``operation`` (``"read"`` or ``"write"`` — the direction of data flow),
    ``count`` (I/O operations), ``volume`` (bytes), ``bandwidth``
    (bytes/second), ``data_ops``/``data_bytes`` and
    ``metadata_ops``/``metadata_bytes`` (the HDF5 raw vs. metadata split
    interactable in the paper's HTML graphs), and ``start``/``end``
    (first/last touch times, used for temporal layout).

Direction convention (matching the paper's left-to-right data flow):
    *reads* flow ``file → [region → dataset →] task`` and *writes* flow
    ``task → [dataset → region →] file``.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT, DatasetIoStats

__all__ = [
    "NodeKind",
    "task_node",
    "file_node",
    "dataset_node",
    "region_node",
    "build_ftg",
    "build_sdg",
    "mark_data_reuse",
]


class NodeKind(str, enum.Enum):
    """Typed graph node categories (drive colors in the visualizer)."""

    TASK = "task"
    FILE = "file"
    DATASET = "dataset"
    REGION = "region"


def task_node(name: str) -> str:
    return f"task:{name}"


def file_node(path: str) -> str:
    return f"file:{path}"


def dataset_node(file: str, obj: str) -> str:
    return f"dataset:{file}:{obj}"


def region_node(file: str, lo: int, hi: int) -> str:
    return f"region:{file}:[{lo}-{hi})"


def _ensure_node(g: nx.DiGraph, node: str, kind: NodeKind, label: str, **attrs) -> None:
    if node not in g:
        g.add_node(node, kind=kind.value, label=label, volume=0, **attrs)


def _bump_edge(g: nx.DiGraph, u: str, v: str, stats: DatasetIoStats, op: str) -> None:
    """Add/merge an edge carrying the given operation's share of ``stats``."""
    if op == "read":
        count, volume = stats.reads, stats.bytes_read
    else:
        count, volume = stats.writes, stats.bytes_written
    if count == 0:
        return
    data = g.get_edge_data(u, v)
    if data is None:
        g.add_edge(
            u, v,
            operation=op,
            count=count,
            volume=volume,
            io_time=stats.io_time,
            data_ops=stats.data_ops,
            data_bytes=stats.data_bytes,
            metadata_ops=stats.metadata_ops,
            metadata_bytes=stats.metadata_bytes,
            start=stats.first_start,
            end=stats.last_end,
        )
        data = g.get_edge_data(u, v)
    else:
        data["count"] += count
        data["volume"] += volume
        data["io_time"] += stats.io_time
        data["data_ops"] += stats.data_ops
        data["data_bytes"] += stats.data_bytes
        data["metadata_ops"] += stats.metadata_ops
        data["metadata_bytes"] += stats.metadata_bytes
        if stats.first_start is not None:
            data["start"] = min(x for x in (data["start"], stats.first_start) if x is not None) \
                if data["start"] is not None else stats.first_start
        if stats.last_end is not None:
            data["end"] = max(x for x in (data["end"], stats.last_end) if x is not None) \
                if data["end"] is not None else stats.last_end
    data["bandwidth"] = data["volume"] / data["io_time"] if data["io_time"] > 0 else 0.0
    g.nodes[u]["volume"] += volume
    g.nodes[v]["volume"] += volume


def _ordered_profiles(
    profiles: Iterable[TaskProfile], task_order: Optional[Sequence[str]]
) -> List[TaskProfile]:
    items = list(profiles)
    if task_order is not None:
        index = {name: i for i, name in enumerate(task_order)}
        missing = [p.task for p in items if p.task not in index]
        if missing:
            raise ValueError(f"task_order missing tasks: {missing}")
        items.sort(key=lambda p: index[p.task])
    return items


def build_ftg(
    profiles: Iterable[TaskProfile],
    task_order: Optional[Sequence[str]] = None,
) -> nx.DiGraph:
    """Build a File-Task Graph from per-task profiles.

    Files and tasks are nodes; a read becomes a ``file → task`` edge and a
    write a ``task → file`` edge, each decorated with the aggregated access
    statistics of every data object moved over it.

    Args:
        profiles: Task profiles, normally in execution order.
        task_order: Explicit execution order (the manual task ordering the
            paper's current FTG construction requires); validated against
            the profiles when given.
    """
    g = nx.DiGraph(graph_type="FTG")
    for seq, profile in enumerate(_ordered_profiles(profiles, task_order)):
        t = task_node(profile.task)
        _ensure_node(
            g, t, NodeKind.TASK, profile.task,
            start=profile.span.start, end=profile.span.end, order=seq,
        )
        # Aggregate object rows up to (file, direction).
        for stats in profile.dataset_stats:
            f = file_node(stats.file)
            _ensure_node(g, f, NodeKind.FILE, stats.file)
            if stats.reads:
                _bump_edge(g, f, t, stats, "read")
            if stats.writes:
                _bump_edge(g, t, f, stats, "write")
    mark_data_reuse(g)
    return g


def build_sdg(
    profiles: Iterable[TaskProfile],
    task_order: Optional[Sequence[str]] = None,
    with_regions: bool = False,
    region_bytes: int = 65536,
    page_size: int = 4096,
) -> nx.DiGraph:
    """Build a Semantic Dataflow Graph.

    Adds a data-object layer between files and tasks, and optionally file
    address-region nodes showing where each dataset's content lands in the
    file (the paper's Figure 3 / Figure 8 view).

    Args:
        profiles: Task profiles.
        task_order: Optional explicit execution order.
        with_regions: Insert ``addr[lo-hi)`` nodes between datasets and
            their files.
        region_bytes: Width of one address region in bytes.
        page_size: Page size the profiles' region histograms were recorded
            at (``DaYuConfig.page_size``); region membership is computed
            from those page indices.
    """
    if region_bytes % page_size != 0:
        raise ValueError(
            f"region_bytes ({region_bytes}) must be a multiple of the "
            f"profile page size ({page_size})"
        )
    pages_per_region = region_bytes // page_size
    g = nx.DiGraph(graph_type="SDG", region_bytes=region_bytes)
    for seq, profile in enumerate(_ordered_profiles(profiles, task_order)):
        t = task_node(profile.task)
        _ensure_node(
            g, t, NodeKind.TASK, profile.task,
            start=profile.span.start, end=profile.span.end, order=seq,
        )
        for stats in profile.dataset_stats:
            f = file_node(stats.file)
            _ensure_node(g, f, NodeKind.FILE, stats.file)
            d = dataset_node(stats.file, stats.data_object)
            label = stats.data_object.lstrip("/") or stats.data_object
            _ensure_node(g, d, NodeKind.DATASET, label, file=stats.file)
            if stats.reads:
                _bump_edge(g, f, d, stats, "read")
                _bump_edge(g, d, t, stats, "read")
            if stats.writes:
                _bump_edge(g, t, d, stats, "write")
                _bump_edge(g, d, f, stats, "write")
            if with_regions:
                _wire_regions(g, stats, d, f, pages_per_region, region_bytes)
    if with_regions:
        _strip_direct_dataset_file_edges(g)
    mark_data_reuse(g)
    return g


def _wire_regions(
    g: nx.DiGraph,
    stats: DatasetIoStats,
    d: str,
    f: str,
    pages_per_region: int,
    region_bytes: int,
) -> None:
    """Insert region nodes between a dataset and its file."""
    regions: Dict[int, int] = defaultdict(int)
    for page, count in stats.regions.items():
        regions[page // pages_per_region] += count
    for region_idx, count in sorted(regions.items()):
        lo = region_idx * region_bytes
        hi = lo + region_bytes
        r = region_node(stats.file, lo, hi)
        _ensure_node(
            g, r, NodeKind.REGION, f"addr[{lo}-{hi})", file=stats.file,
            region=(lo, hi),
        )
        share = count / max(sum(regions.values()), 1)
        if stats.writes:
            _bump_edge(g, d, r, _scaled(stats, share), "write")
            _bump_edge(g, r, f, _scaled(stats, share), "write")
        if stats.reads:
            _bump_edge(g, f, r, _scaled(stats, share), "read")
            _bump_edge(g, r, d, _scaled(stats, share), "read")


def _scaled(stats: DatasetIoStats, share: float) -> DatasetIoStats:
    """A proportional slice of ``stats`` for one address region."""
    out = DatasetIoStats(task=stats.task, file=stats.file, data_object=stats.data_object)
    out.reads = max(round(stats.reads * share), 1 if stats.reads else 0)
    out.writes = max(round(stats.writes * share), 1 if stats.writes else 0)
    out.bytes_read = round(stats.bytes_read * share)
    out.bytes_written = round(stats.bytes_written * share)
    out.data_ops = round(stats.data_ops * share)
    out.data_bytes = round(stats.data_bytes * share)
    out.metadata_ops = round(stats.metadata_ops * share)
    out.metadata_bytes = round(stats.metadata_bytes * share)
    out.io_time = stats.io_time * share
    out.first_start = stats.first_start
    out.last_end = stats.last_end
    return out


def _strip_direct_dataset_file_edges(g: nx.DiGraph) -> None:
    """With region nodes in place, remove redundant dataset↔file edges."""
    drop = []
    for u, v in g.edges:
        ku, kv = g.nodes[u]["kind"], g.nodes[v]["kind"]
        if {ku, kv} == {NodeKind.DATASET.value, NodeKind.FILE.value}:
            drop.append((u, v))
    g.remove_edges_from(drop)


def mark_data_reuse(g: nx.DiGraph) -> List[str]:
    """Flag data nodes consumed by multiple downstream consumers.

    A file or dataset node with more than one outgoing edge means its
    content is reused (the orange edges of the paper's Figure 4).  Sets
    ``reused=True`` on the node and ``reuse=True`` on its out-edges;
    returns the flagged node ids.
    """
    flagged = []
    for node, attrs in g.nodes(data=True):
        if attrs["kind"] in (NodeKind.FILE.value, NodeKind.DATASET.value):
            out = list(g.successors(node))
            reused = len(out) >= 2
            g.nodes[node]["reused"] = reused
            for v in out:
                g.edges[node, v]["reuse"] = reused
            if reused:
                flagged.append(node)
    return flagged
