"""FTG and SDG construction.

Both graphs are ``networkx.DiGraph`` instances with typed nodes and
statistics-decorated edges:

Node attributes:
    ``kind`` (:class:`NodeKind` value), ``label`` (display name), and for
    task nodes ``start``/``end`` (execution span); for data-bearing nodes
    ``volume`` (bytes moved through the node).

Edge attributes:
    ``operation`` (``"read"`` or ``"write"`` — the direction of data flow),
    ``count`` (I/O operations), ``volume`` (bytes), ``bandwidth``
    (bytes/second), ``data_ops``/``data_bytes`` and
    ``metadata_ops``/``metadata_bytes`` (the HDF5 raw vs. metadata split
    interactable in the paper's HTML graphs), and ``start``/``end``
    (first/last touch times, used for temporal layout).

Direction convention (matching the paper's left-to-right data flow):
    *reads* flow ``file → [region → dataset →] task`` and *writes* flow
    ``task → [dataset → region →] file``.

Construction is incremental: a :class:`GraphBuilder` accepts profiles one
at a time and can emit the finished graph at any point, so analyses over a
growing trace directory (or a baseline kept across :func:`compare_runs`
calls) never rebuild from scratch.  Edge statistics accumulate through the
commutative :func:`merge_edge_stats`, which is also how
:class:`~repro.analyzer.parallel.ParallelAnalyzer` merges independently
built sub-graphs — per-contribution ``io_time`` samples are kept in an
``_io_times`` list and folded with :func:`math.fsum` at finalization, so
serial and sharded builds produce identical floats.
"""

from __future__ import annotations

import enum
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import networkx as nx

from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT, DatasetIoStats

__all__ = [
    "NodeKind",
    "task_node",
    "file_node",
    "dataset_node",
    "region_node",
    "opt_min",
    "opt_max",
    "merge_edge_stats",
    "GraphBuilder",
    "finalize_graph",
    "build_ftg",
    "build_sdg",
    "mark_data_reuse",
]


class NodeKind(str, enum.Enum):
    """Typed graph node categories (drive colors in the visualizer)."""

    TASK = "task"
    FILE = "file"
    DATASET = "dataset"
    REGION = "region"


def task_node(name: str) -> str:
    return f"task:{name}"


def file_node(path: str) -> str:
    return f"file:{path}"


def dataset_node(file: str, obj: str) -> str:
    return f"dataset:{file}:{obj}"


def region_node(file: str, lo: int, hi: int) -> str:
    return f"region:{file}:[{lo}-{hi})"


_N = TypeVar("_N", int, float)


def opt_min(a: Optional[_N], b: Optional[_N]) -> Optional[_N]:
    """``min`` where ``None`` means "no observation", not zero."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b


def opt_max(a: Optional[_N], b: Optional[_N]) -> Optional[_N]:
    """``max`` where ``None`` means "no observation", not zero."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b


#: Additive edge-statistic keys (ints; merge by summation).
_COUNTER_KEYS = (
    "count",
    "volume",
    "data_ops",
    "data_bytes",
    "metadata_ops",
    "metadata_bytes",
)


def _edge_delta(stats: DatasetIoStats, op: str) -> dict:
    """One edge-stat contribution: the given operation's share of ``stats``."""
    if op == "read":
        count, volume = stats.reads, stats.bytes_read
    else:
        count, volume = stats.writes, stats.bytes_written
    return {
        "count": count,
        "volume": volume,
        "data_ops": stats.data_ops,
        "data_bytes": stats.data_bytes,
        "metadata_ops": stats.metadata_ops,
        "metadata_bytes": stats.metadata_bytes,
        "start": stats.first_start,
        "end": stats.last_end,
        "_io_times": [stats.io_time],
    }


def merge_edge_stats(data: dict, delta: dict) -> dict:
    """Fold one edge-stat contribution into ``data``, in place.

    Commutative and associative over contribution *sets*: counters add,
    spans widen via :func:`opt_min`/:func:`opt_max`, and per-contribution
    ``io_time`` samples accumulate in ``_io_times`` (summed with
    :func:`math.fsum` at finalization, which is correctly rounded and thus
    order-independent).  ``delta`` may be a raw delta from
    :func:`_edge_delta` or another edge's attribute dict, which is how
    sub-graphs built on disjoint profile shards merge.
    """
    for key in _COUNTER_KEYS:
        data[key] = data.get(key, 0) + delta.get(key, 0)
    data["start"] = opt_min(data.get("start"), delta.get("start"))
    data["end"] = opt_max(data.get("end"), delta.get("end"))
    data.setdefault("_io_times", []).extend(delta.get("_io_times", ()))
    return data


def _ensure_node(g: nx.DiGraph, node: str, kind: NodeKind, label: str, **attrs) -> None:
    if node not in g:
        g.add_node(node, kind=kind.value, label=label, volume=0, **attrs)


def _bump_edge(g: nx.DiGraph, u: str, v: str, op: str, delta: dict) -> None:
    """Add/merge an edge carrying one contribution (see :func:`_edge_delta`).

    ``delta`` is only read, never mutated — the columnar bulk path reuses
    one delta dict for both SDG edges of an operation.
    """
    if delta["count"] == 0 and delta["volume"] == 0:
        return
    data = g.get_edge_data(u, v)
    if data is None:
        g.add_edge(
            u, v,
            operation=op,
            count=0,
            volume=0,
            io_time=0.0,
            data_ops=0,
            data_bytes=0,
            metadata_ops=0,
            metadata_bytes=0,
            start=None,
            end=None,
            bandwidth=0.0,
        )
        data = g.get_edge_data(u, v)
    merge_edge_stats(data, delta)
    g.nodes[u]["volume"] += delta["volume"]
    g.nodes[v]["volume"] += delta["volume"]


def _finalize_edges(g: nx.DiGraph) -> None:
    """Resolve accumulated ``_io_times`` into ``io_time``/``bandwidth``."""
    for _, _, data in g.edges(data=True):
        times = data.pop("_io_times", None)
        if times is not None:
            data["io_time"] = math.fsum(times)
        io_time = data.get("io_time", 0.0)
        data["bandwidth"] = data["volume"] / io_time if io_time > 0 else 0.0


def finalize_graph(g: nx.DiGraph, with_regions: bool = False) -> nx.DiGraph:
    """Turn an accumulating graph into a finished FTG/SDG, in place.

    Strips the redundant dataset↔file edges (region view), resolves edge
    ``io_time``/``bandwidth``, and marks data reuse.  Used by
    :meth:`GraphBuilder.build` and by the parallel merger after combining
    shard graphs.
    """
    if with_regions:
        _strip_direct_dataset_file_edges(g)
    _finalize_edges(g)
    mark_data_reuse(g)
    return g


def _ordered_profiles(
    profiles: Iterable[TaskProfile], task_order: Optional[Sequence[str]]
) -> List[TaskProfile]:
    items = list(profiles)
    if task_order is not None:
        index = {name: i for i, name in enumerate(task_order)}
        missing = [p.task for p in items if p.task not in index]
        if missing:
            raise ValueError(f"task_order missing tasks: {missing}")
        items.sort(key=lambda p: index[p.task])
    return items


class GraphBuilder:
    """Incremental FTG/SDG constructor.

    Feed profiles with :meth:`add_profile` / :meth:`add_profiles` as they
    arrive; call :meth:`build` for a finished graph at any point and keep
    adding afterwards.  A builder with ``seq_base`` set builds the
    sub-graph for one contiguous shard of a larger profile sequence;
    :func:`repro.analyzer.parallel.merge_graph_inplace` combines such
    shard graphs into the same result a single builder would produce.

    Args:
        kind: ``"ftg"`` or ``"sdg"``.
        with_regions: (SDG only) insert file address-region nodes.
        region_bytes: Width of one address region in bytes.
        page_size: Page size of the profiles' region histograms.
        seq_base: Execution-order index of the first profile added.
    """

    def __init__(
        self,
        kind: str = "ftg",
        with_regions: bool = False,
        region_bytes: int = 65536,
        page_size: int = 4096,
        seq_base: int = 0,
    ) -> None:
        if kind not in ("ftg", "sdg"):
            raise ValueError(f"kind must be 'ftg' or 'sdg', got {kind!r}")
        self.kind = kind
        self.with_regions = with_regions and kind == "sdg"
        self.region_bytes = region_bytes
        self.page_size = page_size
        if kind == "sdg":
            if region_bytes % page_size != 0:
                raise ValueError(
                    f"region_bytes ({region_bytes}) must be a multiple of "
                    f"the profile page size ({page_size})"
                )
            self._pages_per_region = region_bytes // page_size
            self.graph = nx.DiGraph(graph_type="SDG", region_bytes=region_bytes)
        else:
            self.graph = nx.DiGraph(graph_type="FTG")
        self._seq = seq_base

    def add_profile(self, profile: TaskProfile) -> None:
        """Fold one task profile into the graph under construction."""
        g = self.graph
        t = task_node(profile.task)
        _ensure_node(
            g, t, NodeKind.TASK, profile.task,
            start=profile.span.start, end=profile.span.end, order=self._seq,
        )
        self._seq += 1
        if self.kind == "ftg":
            for stats in profile.dataset_stats:
                f = file_node(stats.file)
                _ensure_node(g, f, NodeKind.FILE, stats.file)
                if stats.reads:
                    _bump_edge(g, f, t, "read", _edge_delta(stats, "read"))
                if stats.writes:
                    _bump_edge(g, t, f, "write", _edge_delta(stats, "write"))
            return
        for stats in profile.dataset_stats:
            f = file_node(stats.file)
            _ensure_node(g, f, NodeKind.FILE, stats.file)
            d = dataset_node(stats.file, stats.data_object)
            label = stats.data_object.lstrip("/") or stats.data_object
            _ensure_node(g, d, NodeKind.DATASET, label, file=stats.file)
            if stats.reads:
                delta = _edge_delta(stats, "read")
                _bump_edge(g, f, d, "read", delta)
                _bump_edge(g, d, t, "read", delta)
            if stats.writes:
                delta = _edge_delta(stats, "write")
                _bump_edge(g, t, d, "write", delta)
                _bump_edge(g, d, f, "write", delta)
            if self.with_regions:
                _wire_regions(g, stats, d, f, self._pages_per_region,
                              self.region_bytes)

    def add_stats_columns(self, task: str, start: float, end: float,
                          cols) -> None:
        """Fold one profile's joined-stats *columns* into the graph.

        The bulk path for columnar traces: ``cols`` is a
        :class:`repro.mapper.columnar.StatsColumns` (parallel per-row
        lists) and edge contributions are assembled straight from the
        arrays — no :class:`DatasetIoStats` rows are materialized except,
        when ``with_regions`` is set, the transient slices region wiring
        needs.  Feeding the same profiles in the same order as
        :meth:`add_profile` produces a byte-identical graph.
        """
        g = self.graph
        t = task_node(task)
        _ensure_node(g, t, NodeKind.TASK, task, start=start, end=end,
                     order=self._seq)
        self._seq += 1
        is_ftg = self.kind == "ftg"
        files, objects = cols.file, cols.data_object
        for i in range(len(files)):
            reads, writes = cols.reads[i], cols.writes[i]
            file = files[i]
            f = file_node(file)
            _ensure_node(g, f, NodeKind.FILE, file)

            def delta(count: int, volume: int, i: int = i) -> dict:
                return {
                    "count": count,
                    "volume": volume,
                    "data_ops": cols.data_ops[i],
                    "data_bytes": cols.data_bytes[i],
                    "metadata_ops": cols.metadata_ops[i],
                    "metadata_bytes": cols.metadata_bytes[i],
                    "start": cols.first_start[i],
                    "end": cols.last_end[i],
                    "_io_times": [cols.io_time[i]],
                }

            if is_ftg:
                if reads:
                    _bump_edge(g, f, t, "read",
                               delta(reads, cols.bytes_read[i]))
                if writes:
                    _bump_edge(g, t, f, "write",
                               delta(writes, cols.bytes_written[i]))
                continue
            obj = objects[i]
            d = dataset_node(file, obj)
            label = obj.lstrip("/") or obj
            _ensure_node(g, d, NodeKind.DATASET, label, file=file)
            if reads:
                rd = delta(reads, cols.bytes_read[i])
                _bump_edge(g, f, d, "read", rd)
                _bump_edge(g, d, t, "read", rd)
            if writes:
                wd = delta(writes, cols.bytes_written[i])
                _bump_edge(g, t, d, "write", wd)
                _bump_edge(g, d, f, "write", wd)
            if self.with_regions:
                if cols.region_runs is None:
                    raise ValueError(
                        "with_regions build needs StatsColumns decoded "
                        "with region runs")
                stats = DatasetIoStats(
                    task=task, file=file, data_object=obj,
                    reads=reads, writes=writes,
                    bytes_read=cols.bytes_read[i],
                    bytes_written=cols.bytes_written[i],
                    data_ops=cols.data_ops[i],
                    data_bytes=cols.data_bytes[i],
                    metadata_ops=cols.metadata_ops[i],
                    metadata_bytes=cols.metadata_bytes[i],
                    io_time=cols.io_time[i],
                    first_start=cols.first_start[i],
                    last_end=cols.last_end[i],
                )
                stats.set_region_runs(cols.region_runs[i])
                _wire_regions(g, stats, d, f, self._pages_per_region,
                              self.region_bytes)

    def add_profiles(self, profiles: Iterable[TaskProfile]) -> None:
        for profile in profiles:
            self.add_profile(profile)

    def build(self, copy: bool = True) -> nx.DiGraph:
        """Finalize and return the graph.

        With ``copy=True`` (default) the builder stays usable: further
        :meth:`add_profile` calls keep accumulating and a later ``build``
        reflects them.  ``copy=False`` hands over the internal graph —
        cheaper, but the builder must not be fed afterwards.
        """
        g = self.graph.copy() if copy else self.graph
        return finalize_graph(g, with_regions=self.with_regions)


def build_ftg(
    profiles: Iterable[TaskProfile],
    task_order: Optional[Sequence[str]] = None,
) -> nx.DiGraph:
    """Build a File-Task Graph from per-task profiles.

    Files and tasks are nodes; a read becomes a ``file → task`` edge and a
    write a ``task → file`` edge, each decorated with the aggregated access
    statistics of every data object moved over it.

    Args:
        profiles: Task profiles, normally in execution order.
        task_order: Explicit execution order (the manual task ordering the
            paper's current FTG construction requires); validated against
            the profiles when given.
    """
    builder = GraphBuilder("ftg")
    builder.add_profiles(_ordered_profiles(profiles, task_order))
    return builder.build(copy=False)


def build_sdg(
    profiles: Iterable[TaskProfile],
    task_order: Optional[Sequence[str]] = None,
    with_regions: bool = False,
    region_bytes: int = 65536,
    page_size: int = 4096,
) -> nx.DiGraph:
    """Build a Semantic Dataflow Graph.

    Adds a data-object layer between files and tasks, and optionally file
    address-region nodes showing where each dataset's content lands in the
    file (the paper's Figure 3 / Figure 8 view).

    Args:
        profiles: Task profiles.
        task_order: Optional explicit execution order.
        with_regions: Insert ``addr[lo-hi)`` nodes between datasets and
            their files.
        region_bytes: Width of one address region in bytes.
        page_size: Page size the profiles' region histograms were recorded
            at (``DaYuConfig.page_size``); region membership is computed
            from those page indices.
    """
    builder = GraphBuilder(
        "sdg", with_regions=with_regions, region_bytes=region_bytes,
        page_size=page_size,
    )
    builder.add_profiles(_ordered_profiles(profiles, task_order))
    return builder.build(copy=False)


def _region_page_counts(
    stats: DatasetIoStats, pages_per_region: int
) -> Dict[int, int]:
    """Page-touch count per address region, from the coalesced page runs.

    Equivalent to summing the per-page histogram grouped by region, but
    O(runs) instead of O(pages): each uniform run is split arithmetically
    at region boundaries.
    """
    counts: Dict[int, int] = defaultdict(int)
    for first, last, count in stats.region_runs():
        r0 = first // pages_per_region
        r1 = last // pages_per_region
        if r0 == r1:
            counts[r0] += (last - first + 1) * count
            continue
        counts[r0] += ((r0 + 1) * pages_per_region - first) * count
        for r in range(r0 + 1, r1):
            counts[r] += pages_per_region * count
        counts[r1] += (last - r1 * pages_per_region + 1) * count
    return counts


def _apportion(total: int, weights: Sequence[int]) -> List[int]:
    """Split an integer ``total`` proportionally to ``weights``, exactly.

    Largest-remainder apportionment: each share gets the floor of its
    exact quota, and the leftover units go to the largest fractional
    remainders (ties broken toward the heavier weight, then the earlier
    index).  The shares always sum to ``total`` — unlike independent
    rounding, which drifts.
    """
    wsum = sum(weights)
    if total <= 0 or wsum <= 0:
        return [0] * len(weights)
    scaled = [total * w for w in weights]
    floors = [s // wsum for s in scaled]
    leftover = total - sum(floors)
    if leftover:
        order = sorted(
            range(len(weights)),
            key=lambda i: (scaled[i] % wsum, weights[i], -i),
            reverse=True,
        )
        for i in order[:leftover]:
            floors[i] += 1
    return floors


#: Integer DatasetIoStats fields sliced per region by :func:`_apportion`.
_APPORTIONED_FIELDS = (
    "reads",
    "writes",
    "bytes_read",
    "bytes_written",
    "data_ops",
    "data_bytes",
    "metadata_ops",
    "metadata_bytes",
)


def _region_slices(
    stats: DatasetIoStats, weights: Sequence[int]
) -> List[DatasetIoStats]:
    """Proportional slices of ``stats``, one per region, conserving totals."""
    wsum = sum(weights)
    shares = {
        name: _apportion(getattr(stats, name), weights)
        for name in _APPORTIONED_FIELDS
    }
    out = []
    for i, weight in enumerate(weights):
        part = DatasetIoStats(
            task=stats.task, file=stats.file, data_object=stats.data_object
        )
        for name, values in shares.items():
            setattr(part, name, values[i])
        part.io_time = stats.io_time * (weight / wsum) if wsum else 0.0
        part.first_start = stats.first_start
        part.last_end = stats.last_end
        out.append(part)
    return out


def _wire_regions(
    g: nx.DiGraph,
    stats: DatasetIoStats,
    d: str,
    f: str,
    pages_per_region: int,
    region_bytes: int,
) -> None:
    """Insert region nodes between a dataset and its file."""
    counts = _region_page_counts(stats, pages_per_region)
    if not counts:
        return
    region_ids = sorted(counts)
    slices = _region_slices(stats, [counts[r] for r in region_ids])
    for region_idx, part in zip(region_ids, slices):
        wants_write = stats.writes and (part.writes or part.bytes_written)
        wants_read = stats.reads and (part.reads or part.bytes_read)
        if not (wants_write or wants_read):
            continue
        lo = region_idx * region_bytes
        hi = lo + region_bytes
        r = region_node(stats.file, lo, hi)
        _ensure_node(
            g, r, NodeKind.REGION, f"addr[{lo}-{hi})", file=stats.file,
            region=(lo, hi),
        )
        if wants_write:
            delta = _edge_delta(part, "write")
            _bump_edge(g, d, r, "write", delta)
            _bump_edge(g, r, f, "write", delta)
        if wants_read:
            delta = _edge_delta(part, "read")
            _bump_edge(g, f, r, "read", delta)
            _bump_edge(g, r, d, "read", delta)


def _strip_direct_dataset_file_edges(g: nx.DiGraph) -> None:
    """With region nodes in place, remove redundant dataset↔file edges."""
    drop = []
    for u, v in g.edges:
        ku, kv = g.nodes[u]["kind"], g.nodes[v]["kind"]
        if {ku, kv} == {NodeKind.DATASET.value, NodeKind.FILE.value}:
            drop.append((u, v))
    g.remove_edges_from(drop)


def mark_data_reuse(g: nx.DiGraph) -> List[str]:
    """Flag data nodes consumed by multiple downstream consumers.

    A file or dataset node with more than one outgoing edge means its
    content is reused (the orange edges of the paper's Figure 4).  Sets
    ``reused=True`` on the node and ``reuse=True`` on its out-edges;
    returns the flagged node ids.
    """
    flagged = []
    for node, attrs in g.nodes(data=True):
        if attrs["kind"] in (NodeKind.FILE.value, NodeKind.DATASET.value):
            out = list(g.successors(node))
            reused = len(out) >= 2
            g.nodes[node]["reused"] = reused
            for v in out:
                g.edges[node, v]["reuse"] = reused
            if reused:
                flagged.append(node)
    return flagged
