"""Binary format primitives: addressing, the superblock, codec helpers.

The file address space is flat and byte-granular.  Addresses are unsigned
64-bit little-endian; :data:`UNDEF_ADDR` marks "no address yet" (HDF5 uses
all-ones the same way).

File anatomy::

    addr 0                superblock (fixed SUPERBLOCK_SIZE bytes)
    addr SUPERBLOCK_SIZE  first allocation (the root group's object header)
    ...                   object headers / B-tree nodes / heap collections /
                          raw data blocks, in allocation order

The superblock holds the format signature, version, the root group header
address, and the end-of-file address recorded at the last clean close.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hdf5.errors import H5FormatError

__all__ = [
    "UNDEF_ADDR",
    "SIGNATURE",
    "VERSION",
    "SUPERBLOCK_SIZE",
    "Superblock",
    "pack_u8",
    "unpack_u8",
    "pack_bytes",
    "unpack_bytes",
]

#: "No address" sentinel (matches HDF5's HADDR_UNDEF convention).
UNDEF_ADDR = 0xFFFF_FFFF_FFFF_FFFF

#: File signature. Deliberately distinct from real HDF5's so files are
#: never mistaken for the real format.
SIGNATURE = b"\x89RH5\r\n\x1a\n"

VERSION = 1

_SB_STRUCT = struct.Struct("<8sIQQI")
#: Fixed superblock allocation; the struct is padded up to this size so the
#: first real allocation lands at a stable address.
SUPERBLOCK_SIZE = 48


def pack_u8(value: int) -> bytes:
    """Encode an unsigned 64-bit little-endian integer."""
    return struct.pack("<Q", value)


def unpack_u8(data: bytes, offset: int = 0) -> int:
    """Decode an unsigned 64-bit little-endian integer."""
    return struct.unpack_from("<Q", data, offset)[0]


def pack_bytes(data: bytes) -> bytes:
    """Length-prefixed (u4) byte string."""
    return struct.pack("<I", len(data)) + data


def unpack_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns (value, next_offset)."""
    (length,) = struct.unpack_from("<I", data, offset)
    start = offset + 4
    end = start + length
    if end > len(data):
        raise H5FormatError("length-prefixed string overruns buffer")
    return data[start:end], end


@dataclass
class Superblock:
    """The file's anchor block at address 0.

    Attributes:
        root_addr: Address of the root group's object header.
        eof_addr: End-of-file address recorded at last clean close.
    """

    root_addr: int = UNDEF_ADDR
    eof_addr: int = SUPERBLOCK_SIZE

    def encode(self) -> bytes:
        body = _SB_STRUCT.pack(
            SIGNATURE, VERSION, self.root_addr, self.eof_addr, 0
        )
        if len(body) > SUPERBLOCK_SIZE:
            raise H5FormatError("superblock struct exceeds fixed size")
        return body.ljust(SUPERBLOCK_SIZE, b"\x00")

    @classmethod
    def decode(cls, data: bytes) -> "Superblock":
        if len(data) < _SB_STRUCT.size:
            raise H5FormatError("truncated superblock")
        sig, version, root_addr, eof_addr, _reserved = _SB_STRUCT.unpack_from(data)
        if sig != SIGNATURE:
            raise H5FormatError(f"bad file signature {sig!r}")
        if version != VERSION:
            raise H5FormatError(f"unsupported format version {version}")
        return cls(root_addr=root_addr, eof_addr=eof_addr)
