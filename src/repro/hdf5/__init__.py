"""A from-scratch HDF5-like self-describing data format.

The paper's subject is the *dual translation* descriptive formats perform:
logical datasets → file addresses → low-level I/O.  To study it we need a
format whose internals we control, so this package implements an
HDF5-inspired container from first principles:

- a superblock anchoring the file (:mod:`repro.hdf5.format`);
- object headers carrying typed messages — dataspace, datatype, layout,
  attributes, links (:mod:`repro.hdf5.oheader`);
- three dataset storage layouts — compact, contiguous, chunked
  (:mod:`repro.hdf5.layout`, :mod:`repro.hdf5.dataset`);
- a B-tree chunk index (:mod:`repro.hdf5.btree`);
- a global heap for variable-length data (:mod:`repro.hdf5.heap`);
- a free-space manager whose allocation decisions are the *source* of the
  fragmentation the paper visualizes (:mod:`repro.hdf5.freespace`);
- a metadata cache (:mod:`repro.hdf5.meta_cache`).

All I/O flows through a :class:`~repro.vfd.base.VirtualFileDriver`, with
every operation classified metadata vs. raw — the hooks DaYu's profilers
attach to.

The public API mirrors h5py::

    f = H5File(fs, "/pfs/data.h5", "w")
    d = f.create_dataset("grp/temps", shape=(1024,), dtype="f8",
                         layout="chunked", chunks=(256,))
    d.write(np.arange(1024.0))
    part = d.read(Selection.hyperslab(((128, 512),)))
    f.close()
"""

from repro.hdf5.dataset import Dataset
from repro.hdf5.dataspace import Dataspace, Selection
from repro.hdf5.datatype import Datatype
from repro.hdf5.errors import (
    H5Error,
    H5FormatError,
    H5LayoutError,
    H5NameError,
    H5StateError,
    H5TypeError,
)
from repro.hdf5.file import H5File
from repro.hdf5.group import Group

__all__ = [
    "H5File",
    "Group",
    "Dataset",
    "Dataspace",
    "Selection",
    "Datatype",
    "H5Error",
    "H5FormatError",
    "H5NameError",
    "H5TypeError",
    "H5LayoutError",
    "H5StateError",
]
