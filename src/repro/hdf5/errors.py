"""Exception hierarchy for the HDF5-like format."""

from __future__ import annotations

__all__ = [
    "H5Error",
    "H5FormatError",
    "H5NameError",
    "H5TypeError",
    "H5LayoutError",
    "H5StateError",
]


class H5Error(Exception):
    """Base class for all format-layer errors."""


class H5FormatError(H5Error):
    """The on-disk bytes do not match the expected format structures."""


class H5NameError(H5Error, KeyError):
    """A named object does not exist, or a name is already taken.

    Note: ``KeyError.__str__`` quotes its argument, so we keep Exception's.
    """

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return Exception.__str__(self)


class H5TypeError(H5Error, TypeError):
    """A value's type or dtype is incompatible with the target dataset."""


class H5LayoutError(H5Error):
    """An operation is invalid for the dataset's storage layout."""


class H5StateError(H5Error):
    """An operation was attempted on a closed or invalid object."""
