"""Object headers and their typed messages.

Every named object (group or dataset) is anchored by an *object header*: a
block of typed messages describing the object — its dataspace, datatype,
storage layout, attributes, and (for groups) links to children.  Object
headers are pure format metadata; every byte read or written here reaches
the VFD flagged :attr:`~repro.vfd.base.IoClass.METADATA`.

Headers are allocated with slack capacity.  When messages outgrow the
capacity the header must *relocate* to a larger block, freeing the old one —
one of the mechanisms by which descriptive formats fragment their files.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.hdf5.errors import H5FormatError
from repro.hdf5.format import pack_bytes, unpack_bytes

__all__ = ["MessageType", "Message", "ObjectKind", "ObjectHeader", "OHDR_PREFIX_SIZE"]

_OHDR_SIG = b"OHDR"
_PREFIX = struct.Struct("<4sBBHII")
#: Bytes of fixed prefix before the message stream.
OHDR_PREFIX_SIZE = _PREFIX.size

#: Initial slack: headers are allocated at this minimum so small additions
#: (an attribute, a link) do not immediately force relocation.
DEFAULT_HEADER_CAPACITY = 256


class MessageType(enum.IntEnum):
    """Typed header message tags."""

    DATASPACE = 1
    DATATYPE = 2
    LAYOUT = 3
    ATTRIBUTE = 4
    LINK = 5


class ObjectKind(enum.IntEnum):
    GROUP = 0
    DATASET = 1


@dataclass
class Message:
    """One typed message: a tag and an opaque payload."""

    type: MessageType
    payload: bytes

    def encode(self) -> bytes:
        return struct.pack("<HI", int(self.type), len(self.payload)) + self.payload

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["Message", int]:
        if offset + 6 > len(data):
            raise H5FormatError("truncated message prefix")
        mtype, length = struct.unpack_from("<HI", data, offset)
        start = offset + 6
        end = start + length
        if end > len(data):
            raise H5FormatError("message payload overruns header block")
        return cls(MessageType(mtype), data[start:end]), end

    @property
    def encoded_size(self) -> int:
        return 6 + len(self.payload)


@dataclass
class ObjectHeader:
    """An object header block: kind + message list + block capacity."""

    kind: ObjectKind
    messages: List[Message] = field(default_factory=list)
    capacity: int = DEFAULT_HEADER_CAPACITY

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes the prefix plus current messages occupy."""
        return OHDR_PREFIX_SIZE + sum(m.encoded_size for m in self.messages)

    def fits(self) -> bool:
        return self.used <= self.capacity

    @staticmethod
    def capacity_for(size: int) -> int:
        """Smallest power-of-two-ish capacity holding ``size`` bytes."""
        cap = DEFAULT_HEADER_CAPACITY
        while cap < size:
            cap *= 2
        return cap

    # ------------------------------------------------------------------
    # Message access
    # ------------------------------------------------------------------
    def find(self, mtype: MessageType) -> Optional[Message]:
        """First message of the given type, or None."""
        for m in self.messages:
            if m.type == mtype:
                return m
        return None

    def find_all(self, mtype: MessageType) -> List[Message]:
        return [m for m in self.messages if m.type == mtype]

    def replace(self, mtype: MessageType, payload: bytes) -> None:
        """Replace the first message of ``mtype`` (or append if absent)."""
        for m in self.messages:
            if m.type == mtype:
                m.payload = payload
                return
        self.messages.append(Message(mtype, payload))

    def remove(self, predicate) -> int:
        """Remove messages matching ``predicate(message)``; returns count."""
        before = len(self.messages)
        self.messages = [m for m in self.messages if not predicate(m)]
        return before - len(self.messages)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        body = b"".join(m.encode() for m in self.messages)
        used = OHDR_PREFIX_SIZE + len(body)
        if used > self.capacity:
            raise H5FormatError(
                f"header needs {used} bytes but capacity is {self.capacity}"
            )
        prefix = _PREFIX.pack(
            _OHDR_SIG, 1, int(self.kind), len(self.messages), used, self.capacity
        )
        return (prefix + body).ljust(self.capacity, b"\x00")

    @staticmethod
    def peek_capacity(data: bytes) -> int:
        """Read just the block capacity from a header prefix.

        Lets a reader discover how many bytes to fetch before decoding the
        full message stream.
        """
        if len(data) < OHDR_PREFIX_SIZE:
            raise H5FormatError("truncated object header prefix")
        sig, _version, _kind, _count, _used, capacity = _PREFIX.unpack_from(data)
        if sig != _OHDR_SIG:
            raise H5FormatError(f"bad object header signature {sig!r}")
        return capacity

    @classmethod
    def decode(cls, data: bytes) -> "ObjectHeader":
        if len(data) < OHDR_PREFIX_SIZE:
            raise H5FormatError("truncated object header")
        sig, version, kind, count, used, capacity = _PREFIX.unpack_from(data)
        if sig != _OHDR_SIG:
            raise H5FormatError(f"bad object header signature {sig!r}")
        if version != 1:
            raise H5FormatError(f"unsupported object header version {version}")
        if used > len(data):
            raise H5FormatError("object header 'used' exceeds available bytes")
        messages: List[Message] = []
        offset = OHDR_PREFIX_SIZE
        for _ in range(count):
            msg, offset = Message.decode(data, offset)
            messages.append(msg)
        return cls(kind=ObjectKind(kind), messages=messages, capacity=capacity)


# ----------------------------------------------------------------------
# Link message codec (used by groups)
# ----------------------------------------------------------------------

def encode_link(name: str, kind: ObjectKind, addr: int) -> bytes:
    """Payload of a LINK message: child name, kind, and header address."""
    return pack_bytes(name.encode("utf-8")) + struct.pack("<BQ", int(kind), addr)


def decode_link(payload: bytes) -> Tuple[str, ObjectKind, int]:
    raw, offset = unpack_bytes(payload, 0)
    kind, addr = struct.unpack_from("<BQ", payload, offset)
    return raw.decode("utf-8"), ObjectKind(kind), addr


# ----------------------------------------------------------------------
# Attribute message codec
# ----------------------------------------------------------------------

def encode_attribute(name: str, dtype_code: str, data: bytes) -> bytes:
    """Payload of an ATTRIBUTE message."""
    return (
        pack_bytes(name.encode("utf-8"))
        + pack_bytes(dtype_code.encode("ascii"))
        + pack_bytes(data)
    )


def decode_attribute(payload: bytes) -> Tuple[str, str, bytes]:
    name_raw, offset = unpack_bytes(payload, 0)
    code_raw, offset = unpack_bytes(payload, offset)
    data, _ = unpack_bytes(payload, offset)
    return name_raw.decode("utf-8"), code_raw.decode("ascii"), data
