"""Metadata block I/O interface shared by the format's index structures.

B-trees, heaps, and object headers all need the same four services: read a
metadata block (through the metadata cache), write one (write-through),
allocate file space, and free it.  :class:`MetaIO` bundles those over a VFD,
a :class:`~repro.hdf5.freespace.FreeSpaceManager`, and a
:class:`~repro.hdf5.meta_cache.MetadataCache`, classifying every access as
:attr:`~repro.vfd.base.IoClass.METADATA`.
"""

from __future__ import annotations

from repro.hdf5.freespace import FreeSpaceManager
from repro.hdf5.meta_cache import MetadataCache
from repro.vfd.base import IoClass, VirtualFileDriver

__all__ = ["MetaIO"]


class MetaIO:
    """Cached, metadata-classified block I/O over a VFD."""

    def __init__(
        self,
        vfd: VirtualFileDriver,
        allocator: FreeSpaceManager,
        cache: MetadataCache,
    ) -> None:
        self.vfd = vfd
        self.allocator = allocator
        self.cache = cache

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read a metadata block, served from cache when possible."""
        return self.cache.read(
            addr, nbytes, lambda: self.vfd.read(addr, nbytes, IoClass.METADATA)
        )

    def write(self, addr: int, data: bytes) -> None:
        """Write a metadata block and refresh the cache (write-through)."""
        self.vfd.write(addr, data, IoClass.METADATA)
        self.cache.put(addr, data)

    def allocate(self, size: int) -> int:
        return self.allocator.allocate(size)

    def free(self, addr: int, size: int) -> None:
        self.cache.invalidate(addr)
        self.allocator.free(addr, size)
