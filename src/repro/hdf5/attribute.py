"""Attributes: small named values attached to an object header.

Attributes enrich data-object semantics (the "Object Description" the VOL
profiler records).  Their values are stored *inline* in the owning object
header — reading or writing an attribute is pure metadata traffic, which is
why attribute-heavy files skew toward small metadata I/O.

Supported value types: ``int``, ``float``, ``str``, ``bytes``, and 1-D NumPy
arrays of fixed dtypes.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype
from repro.hdf5.errors import H5NameError, H5TypeError
from repro.hdf5.oheader import (
    Message,
    MessageType,
    decode_attribute,
    encode_attribute,
)

__all__ = ["AttributeManager"]


def _encode_value(value: object) -> Tuple[str, bytes]:
    """Map a Python value to (dtype_code, payload bytes).

    The payload embeds a dataspace so array shapes round-trip.
    """
    if isinstance(value, bool):
        raise H5TypeError("boolean attributes are not supported")
    if isinstance(value, (int, np.integer)):
        return "i8", Dataspace(()).encode() + np.int64(value).tobytes()
    if isinstance(value, (float, np.floating)):
        return "f8", Dataspace(()).encode() + np.float64(value).tobytes()
    if isinstance(value, str):
        return "vlen-str", Dataspace(()).encode() + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return "vlen-bytes", Dataspace(()).encode() + bytes(value)
    if isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise H5TypeError("only 1-D array attributes are supported")
        dt = Datatype.of(value.dtype)
        return dt.code, Dataspace(value.shape).encode() + np.ascontiguousarray(value).tobytes()
    if isinstance(value, (list, tuple)):
        return _encode_value(np.asarray(value))
    raise H5TypeError(f"unsupported attribute value type {type(value).__name__}")


def _decode_value(dtype_code: str, payload: bytes) -> object:
    space, offset = Dataspace.decode(payload, 0)
    raw = payload[offset:]
    if dtype_code == "vlen-str":
        return raw.decode("utf-8")
    if dtype_code == "vlen-bytes":
        return raw
    dt = Datatype(dtype_code)
    arr = np.frombuffer(raw, dtype=dt.numpy_dtype)
    if space.ndim == 0:
        return arr[0].item() if dt.code.startswith(("i", "u")) else float(arr[0])
    return arr.reshape(space.shape).copy()


class AttributeManager:
    """Dict-like view over an object's ATTRIBUTE messages.

    Obtained as ``obj.attrs``; mutations mark the owning header dirty so the
    file flushes it (metadata write) at close.
    """

    def __init__(self, owner) -> None:
        # owner is a Dataset or Group exposing ._header and ._touch().
        self._owner = owner

    def _messages(self) -> List[Message]:
        return self._owner._header.find_all(MessageType.ATTRIBUTE)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __setitem__(self, name: str, value: object) -> None:
        dtype_code, payload = _encode_value(value)
        new_payload = encode_attribute(name, dtype_code, payload)
        header = self._owner._header
        for m in self._messages():
            attr_name, _, _ = decode_attribute(m.payload)
            if attr_name == name:
                m.payload = new_payload
                self._owner._touch()
                return
        header.messages.append(Message(MessageType.ATTRIBUTE, new_payload))
        self._owner._touch()

    def __getitem__(self, name: str) -> object:
        for m in self._messages():
            attr_name, dtype_code, data = decode_attribute(m.payload)
            if attr_name == name:
                return _decode_value(dtype_code, data)
        raise H5NameError(f"no attribute named {name!r}")

    def __delitem__(self, name: str) -> None:
        def is_target(m: Message) -> bool:
            if m.type != MessageType.ATTRIBUTE:
                return False
            attr_name, _, _ = decode_attribute(m.payload)
            return attr_name == name

        removed = self._owner._header.remove(is_target)
        if not removed:
            raise H5NameError(f"no attribute named {name!r}")
        self._owner._touch()

    def __contains__(self, name: str) -> bool:
        return name in self.keys()

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._messages())

    def keys(self) -> List[str]:
        return [decode_attribute(m.payload)[0] for m in self._messages()]

    def items(self) -> List[Tuple[str, object]]:
        return [(k, self[k]) for k in self.keys()]

    def get(self, name: str, default: object = None) -> object:
        try:
            return self[name]
        except H5NameError:
            return default
