"""Datatypes: fixed-size scalars, fixed-length strings, variable-length data.

A :class:`Datatype` describes the element type of a dataset or attribute.
Three classes exist:

- **fixed** numeric types, named by NumPy-style codes (``"i1"``..``"i8"``,
  ``"u1"``..``"u8"``, ``"f4"``, ``"f8"``) — stored inline in the dataset's
  raw data blocks;
- **fixed-length strings** ``"S<n>"`` — also stored inline, padded;
- **variable-length** types ``"vlen-bytes"`` / ``"vlen-str"`` — each element
  lives in the file's *global heap* and the dataset stores heap references.
  This is the storage class whose fragmentation behaviour the paper's
  ARLDM study (its Figure 8 / Figure 13c) revolves around.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

import numpy as np

from repro.hdf5.errors import H5TypeError
from repro.hdf5.format import pack_bytes, unpack_bytes

__all__ = ["Datatype"]

_FIXED_CODES = {
    "i1": 1, "i2": 2, "i4": 4, "i8": 8,
    "u1": 1, "u2": 2, "u4": 4, "u8": 8,
    "f4": 4, "f8": 8,
}
_VLEN_CODES = ("vlen-bytes", "vlen-str")
_FIXED_STR_RE = re.compile(r"^S([1-9][0-9]*)$")

#: Size of one heap reference stored inline for a variable-length element:
#: collection address (u8) + object index (u2) + object size (u4).
VLEN_REF_SIZE = 14


@dataclass(frozen=True)
class Datatype:
    """An element type.  Construct via :meth:`of` (or directly by code)."""

    code: str

    def __post_init__(self) -> None:
        if (
            self.code not in _FIXED_CODES
            and self.code not in _VLEN_CODES
            and not _FIXED_STR_RE.match(self.code)
        ):
            raise H5TypeError(f"unknown datatype code {self.code!r}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, spec: "Datatype | str | np.dtype | type") -> "Datatype":
        """Coerce a user-facing spec to a Datatype.

        Accepts an existing Datatype, a code string, a NumPy dtype, or the
        Python types ``bytes`` / ``str`` (meaning variable-length).
        """
        if isinstance(spec, cls):
            return spec
        if spec is bytes:
            return cls("vlen-bytes")
        if spec is str:
            return cls("vlen-str")
        if isinstance(spec, str):
            return cls(spec)
        if isinstance(spec, np.dtype) or isinstance(spec, type):
            dt = np.dtype(spec)
            if dt.kind in "iuf":
                return cls(f"{dt.kind}{dt.itemsize}")
            if dt.kind == "S":
                return cls(f"S{dt.itemsize}")
            raise H5TypeError(f"unsupported numpy dtype {dt!r}")
        raise H5TypeError(f"cannot interpret {spec!r} as a datatype")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_vlen(self) -> bool:
        """True for variable-length types."""
        return self.code in _VLEN_CODES

    @property
    def is_string(self) -> bool:
        return self.code == "vlen-str" or self.code.startswith("S")

    @property
    def itemsize(self) -> int:
        """Inline bytes per element (heap-reference size for vlen types)."""
        if self.is_vlen:
            return VLEN_REF_SIZE
        if self.code in _FIXED_CODES:
            return _FIXED_CODES[self.code]
        return int(_FIXED_STR_RE.match(self.code).group(1))

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype of in-memory fixed elements.

        Raises:
            H5TypeError: For variable-length types, which have no fixed
                NumPy representation.
        """
        if self.is_vlen:
            raise H5TypeError(f"{self.code} has no fixed numpy dtype")
        return np.dtype(self.code)

    # ------------------------------------------------------------------
    # Element codecs (vlen)
    # ------------------------------------------------------------------
    def to_heap_bytes(self, element: object) -> bytes:
        """Encode one vlen element to the bytes stored in the global heap."""
        if self.code == "vlen-bytes":
            if not isinstance(element, (bytes, bytearray, memoryview)):
                raise H5TypeError(f"vlen-bytes element must be bytes-like, got {type(element).__name__}")
            return bytes(element)
        if self.code == "vlen-str":
            if not isinstance(element, str):
                raise H5TypeError(f"vlen-str element must be str, got {type(element).__name__}")
            return element.encode("utf-8")
        raise H5TypeError(f"{self.code} is not a variable-length type")

    def from_heap_bytes(self, data: bytes) -> object:
        """Decode one vlen element from its heap bytes."""
        if self.code == "vlen-bytes":
            return data
        if self.code == "vlen-str":
            return data.decode("utf-8")
        raise H5TypeError(f"{self.code} is not a variable-length type")

    # ------------------------------------------------------------------
    # Serialization (datatype message payload)
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        return pack_bytes(self.code.encode("ascii"))

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["Datatype", int]:
        raw, end = unpack_bytes(data, offset)
        return cls(raw.decode("ascii")), end

    def __str__(self) -> str:
        return self.code
