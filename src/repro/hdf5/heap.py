"""The global heap: storage for variable-length data elements.

Variable-length (VL) elements do not fit a dataset's fixed-stride raw block,
so — exactly like HDF5 — each element's bytes live in a *global heap
collection* and the dataset stores small fixed-size references.  This
double indirection is the root of the VL fragmentation behaviour the paper
studies (its Challenge 3 and the ARLDM case).

Two write paths with very different I/O shapes:

- :meth:`GlobalHeap.insert` — one element at a time, each written
  immediately at its final address.  Contiguous-layout VL datasets use this
  path, producing one small raw write per element.
- :meth:`GlobalHeap.insert_batch` — a whole group of elements placed in one
  collection and written with a single raw operation.  Chunked-layout VL
  datasets batch per chunk, which is precisely why the paper measures
  roughly *half* the POSIX writes for chunked VL data.

Each collection keeps an on-disk directory (object index → offset, size);
directories are metadata, written when the collection seals and read
(through the metadata cache) when a reference from a previous session is
dereferenced.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hdf5.errors import H5FormatError
from repro.hdf5.metaio import MetaIO
from repro.vfd.base import IoClass

__all__ = ["HeapRef", "GlobalHeap"]

_DIR_SIG = b"GCOL"
# sig, version, reserved, object count, directory capacity (max objects)
_DIR_PREFIX = struct.Struct("<4sBBHH")


@dataclass(frozen=True)
class HeapRef:
    """A 14-byte reference to one heap object: (collection, index, size)."""

    collection_addr: int
    index: int
    size: int

    STRUCT = struct.Struct("<QHI")

    def encode(self) -> bytes:
        return self.STRUCT.pack(self.collection_addr, self.index, self.size)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "HeapRef":
        addr, index, size = cls.STRUCT.unpack_from(data, offset)
        return cls(addr, index, size)

    @classmethod
    def nbytes(cls) -> int:
        return cls.STRUCT.size


class _Collection:
    """In-memory state of one heap collection being filled."""

    __slots__ = ("addr", "dir_capacity", "data_capacity", "entries", "used")

    def __init__(self, addr: int, dir_capacity: int, data_capacity: int) -> None:
        self.addr = addr
        self.dir_capacity = dir_capacity
        self.data_capacity = data_capacity
        self.entries: List[Tuple[int, int]] = []  # (data_offset, size)
        self.used = 0

    def fits(self, size: int) -> bool:
        return (
            len(self.entries) < self.dir_capacity
            and self.used + size <= self.data_capacity
        )


def _dir_size(dir_capacity: int) -> int:
    """On-disk bytes of a directory with room for ``dir_capacity`` objects."""
    return _DIR_PREFIX.size + dir_capacity * 8


class GlobalHeap:
    """Manager of all heap collections in one file.

    Args:
        io: Metadata I/O (directories) and the underlying VFD (object data).
        dir_entries: Maximum objects per standard collection directory.
        data_capacity: Data bytes per standard collection; oversized objects
            get a dedicated collection sized to fit.
    """

    def __init__(
        self,
        io: MetaIO,
        dir_entries: int = 64,
        data_capacity: int = 4096,
    ) -> None:
        if dir_entries < 1 or data_capacity < 1:
            raise H5FormatError("heap capacities must be positive")
        self._io = io
        self._dir_entries = dir_entries
        self._data_capacity = data_capacity
        self._open: _Collection | None = None
        self._dirty: Dict[int, _Collection] = {}
        #: Parsed directories: addr -> (entries, dir_capacity).
        self._known: Dict[int, Tuple[List[Tuple[int, int]], int]] = {}

    # ------------------------------------------------------------------
    # Collection management
    # ------------------------------------------------------------------
    def _new_collection(self, data_capacity: int, dir_capacity: int) -> _Collection:
        addr = self._io.allocate(_dir_size(dir_capacity) + data_capacity)
        coll = _Collection(addr, dir_capacity, data_capacity)
        self._dirty[addr] = coll
        return coll

    @staticmethod
    def _data_base(addr: int, dir_capacity: int) -> int:
        return addr + _dir_size(dir_capacity)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def insert(self, data: bytes) -> HeapRef:
        """Store one element now; returns its reference.

        Issues one raw write per call — the per-element I/O pattern of
        contiguous-layout variable-length datasets.
        """
        size = len(data)
        if size > self._data_capacity:
            coll = self._new_collection(size, 1)
        else:
            if self._open is None or not self._open.fits(size):
                self._open = self._new_collection(
                    self._data_capacity, self._dir_entries
                )
            coll = self._open
        offset = coll.used
        coll.entries.append((offset, size))
        coll.used += size
        self._io.vfd.write(
            self._data_base(coll.addr, coll.dir_capacity) + offset, data, IoClass.RAW
        )
        return HeapRef(coll.addr, len(coll.entries) - 1, size)

    def insert_batch(self, items: Sequence[bytes]) -> List[HeapRef]:
        """Store a group of elements in one collection with one raw write.

        The batched path of chunked-layout variable-length datasets.
        """
        if not items:
            return []
        total = sum(len(d) for d in items)
        coll = self._new_collection(max(total, 1), len(items))
        refs: List[HeapRef] = []
        blob = bytearray()
        for data in items:
            coll.entries.append((coll.used, len(data)))
            coll.used += len(data)
            refs.append(HeapRef(coll.addr, len(refs), len(data)))
            blob.extend(data)
        self._io.vfd.write(
            self._data_base(coll.addr, coll.dir_capacity), bytes(blob), IoClass.RAW
        )
        return refs

    def flush(self) -> None:
        """Seal every dirty collection by writing its directory (metadata)."""
        for addr, coll in sorted(self._dirty.items()):
            header = _DIR_PREFIX.pack(
                _DIR_SIG, 1, 0, len(coll.entries), coll.dir_capacity
            )
            body = b"".join(struct.pack("<II", off, sz) for off, sz in coll.entries)
            self._io.write(addr, (header + body).ljust(_dir_size(coll.dir_capacity), b"\x00"))
            self._known[addr] = (list(coll.entries), coll.dir_capacity)
        self._dirty.clear()
        self._open = None

    @property
    def dirty_collections(self) -> int:
        """Number of collections awaiting a directory flush."""
        return len(self._dirty)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _directory(self, addr: int) -> Tuple[List[Tuple[int, int]], int]:
        known = self._known.get(addr)
        if known is not None:
            return known
        coll = self._dirty.get(addr)
        if coll is not None:
            return coll.entries, coll.dir_capacity
        # Cold path: parse the on-disk directory (cached metadata read).
        prefix = self._io.read(addr, _DIR_PREFIX.size)
        sig, version, _reserved, count, dir_capacity = _DIR_PREFIX.unpack_from(prefix)
        if sig != _DIR_SIG:
            raise H5FormatError(f"bad heap collection signature {sig!r} at {addr}")
        if version != 1:
            raise H5FormatError(f"unsupported heap collection version {version}")
        body = self._io.read(addr + _DIR_PREFIX.size, count * 8)
        entries = [
            tuple(struct.unpack_from("<II", body, i * 8)) for i in range(count)
        ]
        self._known[addr] = (entries, dir_capacity)
        return entries, dir_capacity

    def read(self, ref: HeapRef) -> bytes:
        """Dereference: directory lookup (metadata) + raw read of the bytes."""
        entries, dir_capacity = self._directory(ref.collection_addr)
        if not (0 <= ref.index < len(entries)):
            raise H5FormatError(
                f"heap reference index {ref.index} outside collection "
                f"({len(entries)} objects)"
            )
        offset, size = entries[ref.index]
        base = self._data_base(ref.collection_addr, dir_capacity)
        return self._io.vfd.read(base + offset, size, IoClass.RAW)
