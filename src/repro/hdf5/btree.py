"""B-tree chunk index.

Chunked datasets locate their chunks through a B-tree keyed by the chunk's
coordinate in the chunk grid.  Every node the tree touches is a metadata
block read/written through :class:`~repro.hdf5.metaio.MetaIO` — so index
traffic shows up in DaYu's VFD trace as the metadata I/O the paper's
"metadata overhead" observations are about.

Nodes hold up to :data:`MAX_ENTRIES` entries and are allocated at their
maximum serialized size, so in-place rewrites never relocate a node; splits
allocate fresh nodes (more metadata churn, exactly like the real format).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.hdf5.errors import H5FormatError
from repro.hdf5.metaio import MetaIO

__all__ = ["ChunkBTree", "MAX_ENTRIES", "node_capacity"]

_NODE_SIG = b"BTND"
_NODE_PREFIX = struct.Struct("<4sBBH")

#: Maximum entries per node before it splits.
MAX_ENTRIES = 32

Coords = Tuple[int, ...]


@dataclass
class _Entry:
    key: Coords
    addr: int      # leaf: chunk address | internal: child node address
    size: int = 0  # leaf only: chunk byte size


@dataclass
class _Node:
    is_leaf: bool
    ndim: int
    entries: List[_Entry] = field(default_factory=list)
    addr: int = -1  # file address, set when persisted

    def encode(self, capacity: int) -> bytes:
        out = _NODE_PREFIX.pack(_NODE_SIG, 1 if self.is_leaf else 0, self.ndim, len(self.entries))
        for e in self.entries:
            for c in e.key:
                out += struct.pack("<Q", c)
            out += struct.pack("<QQ", e.addr, e.size)
        if len(out) > capacity:
            raise H5FormatError("B-tree node exceeds its allocation")
        return out.ljust(capacity, b"\x00")

    @classmethod
    def decode(cls, data: bytes) -> "_Node":
        if len(data) < _NODE_PREFIX.size:
            raise H5FormatError("truncated B-tree node")
        sig, is_leaf, ndim, count = _NODE_PREFIX.unpack_from(data)
        if sig != _NODE_SIG:
            raise H5FormatError(f"bad B-tree node signature {sig!r}")
        node = cls(is_leaf=bool(is_leaf), ndim=ndim)
        offset = _NODE_PREFIX.size
        for _ in range(count):
            key = tuple(
                struct.unpack_from("<Q", data, offset + 8 * i)[0] for i in range(ndim)
            )
            offset += 8 * ndim
            addr, size = struct.unpack_from("<QQ", data, offset)
            offset += 16
            node.entries.append(_Entry(key, addr, size))
        return node


def node_capacity(ndim: int) -> int:
    """Fixed allocation size of a node for a given key rank."""
    return _NODE_PREFIX.size + MAX_ENTRIES * (8 * ndim + 16)


_node_capacity = node_capacity  # internal alias


class ChunkBTree:
    """A persistent B-tree mapping chunk coordinates to (address, size).

    Args:
        io: Metadata block I/O services.
        ndim: Rank of the chunk-coordinate keys.
        root_addr: Address of an existing root node, or None to create an
            empty tree (allocates the root immediately so the dataset's
            layout message can reference it).
    """

    def __init__(self, io: MetaIO, ndim: int, root_addr: Optional[int] = None) -> None:
        if ndim < 1:
            raise H5FormatError("B-tree key rank must be >= 1")
        self._io = io
        self._ndim = ndim
        self._capacity = _node_capacity(ndim)
        if root_addr is None:
            root = _Node(is_leaf=True, ndim=ndim)
            root.addr = io.allocate(self._capacity)
            self._write_node(root)
            self._root_addr = root.addr
        else:
            self._root_addr = root_addr

    @property
    def root_addr(self) -> int:
        return self._root_addr

    @property
    def ndim(self) -> int:
        return self._ndim

    # ------------------------------------------------------------------
    # Node persistence
    # ------------------------------------------------------------------
    def _read_node(self, addr: int) -> _Node:
        node = _Node.decode(self._io.read(addr, self._capacity))
        node.addr = addr
        if node.ndim != self._ndim:
            raise H5FormatError(
                f"B-tree node rank {node.ndim} != tree rank {self._ndim}"
            )
        return node

    def _write_node(self, node: _Node) -> None:
        self._io.write(node.addr, node.encode(self._capacity))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: Coords) -> Optional[Tuple[int, int]]:
        """Return (chunk_addr, chunk_size) for ``key``, or None."""
        key = self._check_key(key)
        node = self._read_node(self._root_addr)
        while not node.is_leaf:
            child = self._descend_entry(node, key)
            if child is None:
                return None
            node = self._read_node(child.addr)
        for e in node.entries:
            if e.key == key:
                return (e.addr, e.size)
        return None

    @staticmethod
    def _descend_entry(node: _Node, key: Coords) -> Optional[_Entry]:
        """The child entry whose subtree may hold ``key``."""
        candidate = None
        for e in node.entries:
            if e.key <= key:
                candidate = e
            else:
                break
        return candidate

    # ------------------------------------------------------------------
    # Insert / update
    # ------------------------------------------------------------------
    def insert(self, key: Coords, addr: int, size: int) -> None:
        """Insert ``key → (addr, size)``, replacing an existing mapping."""
        key = self._check_key(key)
        split = self._insert_into(self._root_addr, key, addr, size)
        if split is not None:
            # Root split: grow the tree by one level.
            sep_key, new_addr = split
            old_root = self._read_node(self._root_addr)
            new_root = _Node(is_leaf=False, ndim=self._ndim)
            new_root.addr = self._io.allocate(self._capacity)
            first_key = old_root.entries[0].key if old_root.entries else (0,) * self._ndim
            new_root.entries = [
                _Entry(first_key, self._root_addr),
                _Entry(sep_key, new_addr),
            ]
            self._write_node(new_root)
            self._root_addr = new_root.addr

    def _insert_into(
        self, node_addr: int, key: Coords, addr: int, size: int
    ) -> Optional[Tuple[Coords, int]]:
        """Insert below ``node_addr``; returns (sep_key, new_node_addr) on split."""
        node = self._read_node(node_addr)
        if node.is_leaf:
            for e in node.entries:
                if e.key == key:
                    e.addr, e.size = addr, size
                    self._write_node(node)
                    return None
            node.entries.append(_Entry(key, addr, size))
            node.entries.sort(key=lambda e: e.key)
        else:
            child = self._descend_entry(node, key)
            if child is None:
                # Key sorts before every separator: route to the first child
                # and lower that separator.
                child = node.entries[0]
                child.key = key
                node.entries.sort(key=lambda e: e.key)
                self._write_node(node)
            split = self._insert_into(child.addr, key, addr, size)
            if split is None:
                return None
            sep_key, new_addr = split
            node.entries.append(_Entry(sep_key, new_addr))
            node.entries.sort(key=lambda e: e.key)
        if len(node.entries) <= MAX_ENTRIES:
            self._write_node(node)
            return None
        # Split: move the upper half to a fresh node.
        mid = len(node.entries) // 2
        sibling = _Node(is_leaf=node.is_leaf, ndim=self._ndim)
        sibling.entries = node.entries[mid:]
        node.entries = node.entries[:mid]
        sibling.addr = self._io.allocate(self._capacity)
        self._write_node(node)
        self._write_node(sibling)
        return (sibling.entries[0].key, sibling.addr)

    # ------------------------------------------------------------------
    # Iteration / stats
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Coords, int, int]]:
        """Yield (key, addr, size) for every chunk, in key order."""
        yield from self._items_under(self._root_addr)

    def _items_under(self, node_addr: int) -> Iterator[Tuple[Coords, int, int]]:
        node = self._read_node(node_addr)
        if node.is_leaf:
            for e in node.entries:
                yield (e.key, e.addr, e.size)
        else:
            for e in node.entries:
                yield from self._items_under(e.addr)

    def node_addrs(self) -> List[int]:
        """File addresses of every node in the tree (root first)."""
        out: List[int] = []
        stack = [self._root_addr]
        while stack:
            addr = stack.pop()
            out.append(addr)
            node = self._read_node(addr)
            if not node.is_leaf:
                stack.extend(e.addr for e in node.entries)
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        levels = 1
        node = self._read_node(self._root_addr)
        while not node.is_leaf:
            levels += 1
            node = self._read_node(node.entries[0].addr)
        return levels

    def _check_key(self, key: Coords) -> Coords:
        key = tuple(int(k) for k in key)
        if len(key) != self._ndim:
            raise H5FormatError(f"key rank {len(key)} != tree rank {self._ndim}")
        return key
