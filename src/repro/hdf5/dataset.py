"""Datasets: the data path from logical selections to file addresses.

This module performs the format's second translation step: a resolved
selection (contiguous element runs) becomes, depending on the storage
layout,

- an in-header byte splice (**compact**),
- one raw I/O per run against a single extent (**contiguous**), or
- per-chunk raw I/O behind B-tree index lookups (**chunked**),

with variable-length elements adding a hop through the global heap.

The resulting low-level operation stream — how many, how large, how
scattered — is precisely what DaYu's VFD profiler observes and what the
paper's layout experiments (its Figure 13) measure.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hdf5.dataspace import Dataspace, Selection, selection_runs
from repro.hdf5.datatype import Datatype
from repro.hdf5.errors import H5LayoutError, H5StateError, H5TypeError
from repro.hdf5.heap import HeapRef
from repro.hdf5.layout import (
    ChunkedLayout,
    CompactLayout,
    ContiguousLayout,
    Layout,
    decode_layout,
    encode_layout,
)
from repro.hdf5.attribute import AttributeManager
from repro.hdf5.btree import ChunkBTree
from repro.hdf5.oheader import MessageType
from repro.vfd.base import IoClass

__all__ = ["Dataset"]


class Dataset:
    """A named array object.  Obtain via ``Group.create_dataset`` / lookup."""

    def __init__(self, file, oid: int, path: str) -> None:
        self._file = file
        self._oid = oid
        self._path = path
        header = file._record(oid).header
        space_msg = header.find(MessageType.DATASPACE)
        type_msg = header.find(MessageType.DATATYPE)
        layout_msg = header.find(MessageType.LAYOUT)
        if space_msg is None or type_msg is None or layout_msg is None:
            raise H5StateError(f"object at {path!r} is not a complete dataset")
        self._space, _ = Dataspace.decode(space_msg.payload)
        self._dtype, _ = Datatype.decode(type_msg.payload)
        self._layout: Layout = decode_layout(layout_msg.payload)
        self._btree: Optional[ChunkBTree] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Full path of the dataset within the file, e.g. ``"/grp/dset"``."""
        return self._path

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._space.shape

    @property
    def dtype(self) -> Datatype:
        return self._dtype

    @property
    def size(self) -> int:
        """Number of elements."""
        return self._space.npoints

    @property
    def nbytes(self) -> int:
        """Inline storage footprint (reference bytes for vlen types)."""
        return self.size * self._dtype.itemsize

    @property
    def layout_name(self) -> str:
        return self._layout.name

    @property
    def chunks(self) -> Optional[Tuple[int, ...]]:
        if isinstance(self._layout, ChunkedLayout):
            return self._layout.chunk_shape
        return None

    @property
    def compression(self) -> Optional[str]:
        """The chunk filter in effect (``"zlib"`` or None)."""
        if isinstance(self._layout, ChunkedLayout):
            return self._layout.compression
        return None

    @property
    def attrs(self) -> AttributeManager:
        return AttributeManager(self)

    @property
    def _header(self):
        return self._file._record(self._oid).header

    def _touch(self) -> None:
        self._file.mark_dirty(self._oid)

    def _sync_layout(self) -> None:
        """Persist the in-memory layout descriptor into the header message."""
        self._header.replace(MessageType.LAYOUT, encode_layout(self._layout))
        self._touch()

    # ------------------------------------------------------------------
    # Chunk helpers
    # ------------------------------------------------------------------
    def _chunk_index(self) -> ChunkBTree:
        layout = self._layout
        if not isinstance(layout, ChunkedLayout):
            raise H5LayoutError("dataset is not chunked")
        if self._btree is None:
            if layout.indexed:
                self._btree = ChunkBTree(
                    self._file.metaio, len(layout.chunk_shape), layout.btree_addr
                )
            else:
                self._btree = ChunkBTree(self._file.metaio, len(layout.chunk_shape))
                layout.btree_addr = self._btree.root_addr
                self._sync_layout()
        return self._btree

    def _chunks_overlapping(
        self, slabs: Tuple[Tuple[int, int], ...]
    ) -> List[Tuple[int, ...]]:
        """Grid coordinates of every chunk intersecting the selection."""
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        ranges = []
        for (start, count), csize in zip(slabs, layout.chunk_shape):
            if count == 0:
                return []
            first = start // csize
            last = (start + count - 1) // csize
            ranges.append(range(first, last + 1))
        return [tuple(c) for c in itertools.product(*ranges)]

    def _chunk_box(
        self, coords: Tuple[int, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """The dataset-coordinate box a chunk covers (clipped to the shape)."""
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        box = []
        for c, csize, dim in zip(coords, layout.chunk_shape, self.shape):
            lo = c * csize
            hi = min(lo + csize, dim)
            box.append((lo, hi - lo))
        return tuple(box)

    @property
    def _chunk_npoints(self) -> int:
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        n = 1
        for c in layout.chunk_shape:
            n *= c
        return n

    # ==================================================================
    # WRITE
    # ==================================================================
    def write(self, data, selection: Selection | None = None) -> None:
        """Write ``data`` into the selected region (default: everything).

        Fixed-type datasets accept anything ``np.asarray`` does; the data
        must match the selection's shape (broadcast of scalars is allowed).
        Variable-length datasets accept a sequence of elements in row-major
        selection order.
        """
        self._file._check_writable()
        self._file._record(self._oid)  # liveness: raises on deleted objects
        selection = selection or Selection.all()
        if self._dtype.is_vlen:
            self._write_vlen(list(data), selection)
        else:
            self._write_fixed(data, selection)

    def _coerce_fixed(self, data, selection: Selection) -> np.ndarray:
        out_shape = selection.out_shape(self._space)
        arr = np.asarray(data)
        if self._dtype.code.startswith("S"):
            arr = arr.astype(f"S{self._dtype.itemsize}")
        else:
            arr = arr.astype(self._dtype.numpy_dtype, copy=False)
        if arr.shape == () and out_shape:
            arr = np.broadcast_to(arr, out_shape)
        expected = int(np.prod(out_shape, dtype=np.int64)) if out_shape else 1
        if arr.size != expected:
            raise H5TypeError(
                f"data of size {arr.size} does not fill selection shape {out_shape}"
            )
        return np.ascontiguousarray(arr).reshape(out_shape)

    def _write_fixed(self, data, selection: Selection) -> None:
        arr = self._coerce_fixed(data, selection)
        layout = self._layout
        if isinstance(layout, CompactLayout):
            self._write_compact(arr, selection)
        elif isinstance(layout, ContiguousLayout):
            self._write_contiguous(arr, selection)
        elif isinstance(layout, ChunkedLayout):
            self._write_chunked(arr, selection)
        else:  # pragma: no cover - exhaustive
            raise H5LayoutError(f"unknown layout {layout!r}")

    # ----------------------------- compact ---------------------------
    def _write_compact(self, arr: np.ndarray, selection: Selection) -> None:
        layout = self._layout
        assert isinstance(layout, CompactLayout)
        itemsize = self._dtype.itemsize
        buf = bytearray(layout.data.ljust(self.size * itemsize, b"\x00"))
        flat = arr.reshape(-1).tobytes()
        pos = 0
        for start, length in selection_runs(self._space, selection):
            buf[start * itemsize : (start + length) * itemsize] = flat[
                pos : pos + length * itemsize
            ]
            pos += length * itemsize
        layout.data = bytes(buf)
        self._sync_layout()

    # --------------------------- contiguous --------------------------
    def _ensure_contiguous_alloc(self) -> ContiguousLayout:
        layout = self._layout
        assert isinstance(layout, ContiguousLayout)
        if not layout.allocated:
            size = max(self.size * self._dtype.itemsize, 1)
            layout.addr = self._file.allocator.allocate_at_eof(size)
            layout.size = size
            self._sync_layout()
        return layout

    def _write_contiguous(self, arr: np.ndarray, selection: Selection) -> None:
        layout = self._ensure_contiguous_alloc()
        itemsize = self._dtype.itemsize
        flat = arr.reshape(-1).tobytes()
        pos = 0
        for start, length in selection_runs(self._space, selection):
            nbytes = length * itemsize
            self._raw_write(layout.addr + start * itemsize, flat[pos : pos + nbytes])
            pos += nbytes

    # --------------------------- filters -----------------------------
    def _encode_chunk(self, raw: bytes) -> bytes:
        """Run the chunk through the filter pipeline on its way to disk."""
        layout = self._layout
        if isinstance(layout, ChunkedLayout) and layout.compression == "zlib":
            import zlib

            return zlib.compress(raw, layout.compression_level)
        return raw

    def _decode_chunk(self, stored: bytes) -> bytes:
        """Undo the filter pipeline on a chunk read from disk."""
        layout = self._layout
        if isinstance(layout, ChunkedLayout) and layout.compression == "zlib":
            import zlib

            return zlib.decompress(stored)
        return stored

    # ---------------------------- chunked ----------------------------
    def _write_chunked(self, arr: np.ndarray, selection: Selection) -> None:
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        btree = self._chunk_index()
        slabs = selection.resolve(self._space)
        itemsize = self._dtype.itemsize
        chunk_nbytes = self._chunk_npoints * itemsize
        np_dtype = (
            np.dtype(f"S{itemsize}")
            if self._dtype.code.startswith("S")
            else self._dtype.numpy_dtype
        )
        for coords in self._chunks_overlapping(slabs):
            box = self._chunk_box(coords)
            inter = _intersect(slabs, box)
            if inter is None:
                continue
            # The write covers the whole (shape-clipped) chunk box when the
            # intersection equals the box — no read-modify-write needed.
            full_chunk = inter == box
            found = btree.lookup(coords)
            if found is None or full_chunk:
                chunk_arr = np.zeros(layout.chunk_shape, dtype=np_dtype)
            else:
                addr, stored_size = found
                raw = self._decode_chunk(self._raw_read(addr, stored_size))
                chunk_arr = (
                    np.frombuffer(raw, dtype=np_dtype)
                    .reshape(layout.chunk_shape)
                    .copy()
                )
            chunk_slices = tuple(
                slice(istart - b[0], istart - b[0] + icount)
                for (istart, icount), b in zip(inter, box)
            )
            arr_slices = tuple(
                slice(istart - s[0], istart - s[0] + icount)
                for (istart, icount), s in zip(inter, slabs)
            )
            chunk_arr[chunk_slices] = arr[arr_slices]
            stored = self._encode_chunk(chunk_arr.tobytes())
            if found is not None and len(stored) == found[1]:
                # Same on-disk size: rewrite in place.
                addr = found[0]
            else:
                # New chunk, or a filtered chunk whose size changed — it
                # relocates, leaving the old extent as a hole (the
                # fragmentation cost of filtered datasets).
                addr = self._file.allocator.allocate_at_eof(len(stored))
                if found is not None:
                    self._file.allocator.free(found[0], found[1])
            self._raw_write(addr, stored)
            if found is None or found[0] != addr or found[1] != len(stored):
                btree.insert(coords, addr, len(stored))
        if layout.btree_addr != btree.root_addr:
            layout.btree_addr = btree.root_addr
            self._sync_layout()

    # ------------------------------ vlen -----------------------------
    def _require_vlen_1d(self) -> None:
        if self._space.ndim != 1:
            raise H5LayoutError(
                "variable-length datasets must be one-dimensional "
                f"(got shape {self.shape})"
            )

    def _write_vlen(self, elements: List[object], selection: Selection) -> None:
        self._require_vlen_1d()
        n = selection.npoints(self._space)
        if len(elements) != n:
            raise H5TypeError(
                f"{len(elements)} elements supplied for a selection of {n}"
            )
        encoded = [self._dtype.to_heap_bytes(e) for e in elements]
        layout = self._layout
        if isinstance(layout, ContiguousLayout):
            # Per-element heap insert (one raw write each), then the
            # reference array region for the selection in one write.
            refs = [self._file.heap.insert(e) for e in encoded]
            self._write_refs_contiguous(refs, selection)
        elif isinstance(layout, ChunkedLayout):
            self._write_vlen_chunked(encoded, selection)
        else:
            raise H5LayoutError(
                f"variable-length data unsupported for {layout.name} layout"
            )

    def _write_refs_contiguous(
        self, refs: List[HeapRef], selection: Selection
    ) -> None:
        layout = self._ensure_contiguous_alloc()
        itemsize = self._dtype.itemsize
        blob = b"".join(r.encode() for r in refs)
        pos = 0
        for start, length in selection_runs(self._space, selection):
            nbytes = length * itemsize
            self._raw_write(layout.addr + start * itemsize, blob[pos : pos + nbytes])
            pos += nbytes

    def _write_vlen_chunked(
        self, encoded: List[bytes], selection: Selection
    ) -> None:
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        btree = self._chunk_index()
        (sel_start, sel_count) = selection.resolve(self._space)[0]
        csize = layout.chunk_shape[0]
        itemsize = self._dtype.itemsize
        chunk_nbytes = csize * itemsize
        for coords in self._chunks_overlapping(((sel_start, sel_count),)):
            (c,) = coords
            lo = max(c * csize, sel_start)
            hi = min((c + 1) * csize, sel_start + sel_count, self.shape[0])
            batch = encoded[lo - sel_start : hi - sel_start]
            # One heap collection per chunk: single raw write for the data.
            refs = self._file.heap.insert_batch(batch)
            found = btree.lookup(coords)
            if found is None:
                addr = self._file.allocator.allocate_at_eof(chunk_nbytes)
            else:
                addr, _ = found
            ref_blob = bytearray()
            if lo > c * csize or hi < min((c + 1) * csize, self.shape[0]):
                # Partial chunk of references: read-modify-write.
                existing = bytearray(
                    self._raw_read(addr, chunk_nbytes)
                    if found is not None
                    else b"\x00" * chunk_nbytes
                )
                for i, r in enumerate(refs):
                    off = (lo - c * csize + i) * itemsize
                    existing[off : off + itemsize] = r.encode()
                ref_blob = existing
            else:
                ref_blob = bytearray(b"".join(r.encode() for r in refs)).ljust(
                    chunk_nbytes, b"\x00"
                )
            self._raw_write(addr, bytes(ref_blob))
            if found is None:
                btree.insert(coords, addr, chunk_nbytes)
        if layout.btree_addr != btree.root_addr:
            layout.btree_addr = btree.root_addr
            self._sync_layout()

    # ==================================================================
    # READ
    # ==================================================================
    def read(self, selection: Selection | None = None):
        """Read the selected region (default: everything).

        Returns a NumPy array shaped like the selection for fixed types, or
        a list of elements for variable-length types.
        """
        self._file._record(self._oid)  # liveness: raises on deleted objects
        selection = selection or Selection.all()
        if self._dtype.is_vlen:
            return self._read_vlen(selection)
        return self._read_fixed(selection)

    def _read_fixed(self, selection: Selection) -> np.ndarray:
        layout = self._layout
        itemsize = self._dtype.itemsize
        np_dtype = (
            np.dtype(f"S{itemsize}")
            if self._dtype.code.startswith("S")
            else self._dtype.numpy_dtype
        )
        out_shape = selection.out_shape(self._space)
        if isinstance(layout, CompactLayout):
            buf = layout.data.ljust(self.size * itemsize, b"\x00")
            parts = [
                buf[start * itemsize : (start + length) * itemsize]
                for start, length in selection_runs(self._space, selection)
            ]
            flat = b"".join(parts)
        elif isinstance(layout, ContiguousLayout):
            if not layout.allocated:
                return np.zeros(out_shape, dtype=np_dtype)
            parts = [
                self._raw_read(layout.addr + start * itemsize, length * itemsize)
                for start, length in selection_runs(self._space, selection)
            ]
            flat = b"".join(parts)
        elif isinstance(layout, ChunkedLayout):
            return self._read_chunked(selection, np_dtype)
        else:  # pragma: no cover - exhaustive
            raise H5LayoutError(f"unknown layout {layout!r}")
        return np.frombuffer(flat, dtype=np_dtype).reshape(out_shape).copy()

    def _read_chunked(self, selection: Selection, np_dtype) -> np.ndarray:
        layout = self._layout
        assert isinstance(layout, ChunkedLayout)
        btree = self._chunk_index()
        slabs = selection.resolve(self._space)
        out = np.zeros(tuple(c for _, c in slabs), dtype=np_dtype)
        for coords in self._chunks_overlapping(slabs):
            found = btree.lookup(coords)
            if found is None:
                continue  # unwritten chunk reads as fill (zeros)
            box = self._chunk_box(coords)
            inter = _intersect(slabs, box)
            if inter is None:
                continue
            addr, stored_size = found
            raw = self._decode_chunk(self._raw_read(addr, stored_size))
            chunk_arr = np.frombuffer(raw, dtype=np_dtype).reshape(layout.chunk_shape)
            chunk_slices = tuple(
                slice(istart - b[0], istart - b[0] + icount)
                for (istart, icount), b in zip(inter, box)
            )
            out_slices = tuple(
                slice(istart - s[0], istart - s[0] + icount)
                for (istart, icount), s in zip(inter, slabs)
            )
            out[out_slices] = chunk_arr[chunk_slices]
        return out

    def _read_vlen(self, selection: Selection) -> List[object]:
        self._require_vlen_1d()
        layout = self._layout
        itemsize = self._dtype.itemsize
        refs: List[HeapRef] = []
        if isinstance(layout, ContiguousLayout):
            if not layout.allocated:
                raise H5LayoutError("variable-length dataset has no data yet")
            for start, length in selection_runs(self._space, selection):
                blob = self._raw_read(layout.addr + start * itemsize, length * itemsize)
                refs.extend(
                    HeapRef.decode(blob, i * itemsize) for i in range(length)
                )
        elif isinstance(layout, ChunkedLayout):
            btree = self._chunk_index()
            (sel_start, sel_count) = selection.resolve(self._space)[0]
            csize = layout.chunk_shape[0]
            chunk_nbytes = csize * itemsize
            for coords in self._chunks_overlapping(((sel_start, sel_count),)):
                (c,) = coords
                found = btree.lookup(coords)
                if found is None:
                    raise H5LayoutError(f"chunk {coords} has no data")
                addr, _ = found
                blob = self._raw_read(addr, chunk_nbytes)
                lo = max(c * csize, sel_start)
                hi = min((c + 1) * csize, sel_start + sel_count, self.shape[0])
                for i in range(lo, hi):
                    refs.append(HeapRef.decode(blob, (i - c * csize) * itemsize))
        else:
            raise H5LayoutError(
                f"variable-length data unsupported for {layout.name} layout"
            )
        return [self._dtype.from_heap_bytes(self._file.heap.read(r)) for r in refs]

    # ------------------------------------------------------------------
    # Raw I/O (classified RAW at the VFD)
    # ------------------------------------------------------------------
    def _raw_write(self, addr: int, data: bytes) -> None:
        self._file.vfd.write(addr, data, IoClass.RAW)

    def _raw_read(self, addr: int, nbytes: int) -> bytes:
        return self._file.vfd.read(addr, nbytes, IoClass.RAW)

    # ------------------------------------------------------------------
    # Resizing (chunked datasets only, like HDF5)
    # ------------------------------------------------------------------
    def resize(self, new_shape: Tuple[int, ...] | int) -> None:
        """Change the dataspace extent of a *chunked* dataset.

        Growing exposes fresh fill-value (zero) elements; new chunks are
        allocated lazily on write.  Shrinking narrows the logical extent —
        like HDF5, chunks falling outside the new shape are *not*
        reclaimed, which is one more way real files accumulate dead space.
        """
        if not isinstance(self._layout, ChunkedLayout):
            raise H5LayoutError(
                f"only chunked datasets are resizable (layout is "
                f"{self.layout_name})"
            )
        if isinstance(new_shape, int):
            new_shape = (new_shape,)
        new_shape = tuple(int(d) for d in new_shape)
        if len(new_shape) != self._space.ndim:
            raise H5TypeError(
                f"resize rank {len(new_shape)} != dataspace rank "
                f"{self._space.ndim}"
            )
        if any(d < 0 for d in new_shape):
            raise H5TypeError(f"negative extent in {new_shape}")
        self._space = Dataspace(new_shape)
        self._header.replace(MessageType.DATASPACE, self._space.encode())
        self._touch()

    # ------------------------------------------------------------------
    # Convenience indexing (full reads/writes only)
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if key is Ellipsis:
            return self.read()
        raise TypeError("only ds[...] full reads are supported; use read()")

    def __setitem__(self, key, value) -> None:
        if key is Ellipsis:
            self.write(value)
            return
        raise TypeError("only ds[...] full writes are supported; use write()")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Dataset {self._path!r} shape={self.shape} dtype={self._dtype.code} "
            f"layout={self.layout_name}>"
        )


def _intersect(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Intersection of two per-dimension (start, count) boxes, or None."""
    out = []
    for (astart, acount), (bstart, bcount) in zip(a, b):
        lo = max(astart, bstart)
        hi = min(astart + acount, bstart + bcount)
        if hi <= lo:
            return None
        out.append((lo, hi - lo))
    return tuple(out)
