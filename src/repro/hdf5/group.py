"""Groups: the hierarchical namespace.

A group is an object header whose LINK messages name its children.  Links
carry the child's kind and header address; traversing a path therefore
reads one header per component (metadata I/O, cached after first touch).

``create_dataset`` accepts nested paths (``"a/b/dset"``), creating
intermediate groups like h5py.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from repro.hdf5.dataset import Dataset
from repro.hdf5.dataspace import Dataspace
from repro.hdf5.datatype import Datatype
from repro.hdf5.errors import H5LayoutError, H5NameError, H5TypeError
from repro.hdf5.attribute import AttributeManager
from repro.hdf5.layout import (
    ChunkedLayout,
    CompactLayout,
    ContiguousLayout,
    encode_layout,
)
from repro.hdf5.oheader import (
    Message,
    MessageType,
    ObjectKind,
    decode_link,
    encode_link,
)

__all__ = ["Group"]


class Group:
    """A container of named children (groups and datasets)."""

    def __init__(self, file, oid: int, path: str) -> None:
        self._file = file
        self._oid = oid
        self._path = path

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Full path, e.g. ``"/"`` or ``"/results"``."""
        return self._path

    @property
    def attrs(self) -> AttributeManager:
        return AttributeManager(self)

    @property
    def _header(self):
        return self._file._record(self._oid).header

    def _touch(self) -> None:
        self._file.mark_dirty(self._oid)

    def _child_path(self, name: str) -> str:
        return (self._path.rstrip("/") + "/" + name) if name else self._path

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _links(self) -> List[Tuple[str, ObjectKind, int]]:
        return [
            decode_link(m.payload)
            for m in self._header.find_all(MessageType.LINK)
        ]

    def keys(self) -> List[str]:
        """Child names in link order."""
        return [name for name, _, _ in self._links()]

    def __contains__(self, name: str) -> bool:
        head, _, rest = name.strip("/").partition("/")
        for link_name, _, _ in self._links():
            if link_name == head:
                if not rest:
                    return True
                child = self._open_child(head)
                return isinstance(child, Group) and rest in child
        return False

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def _find_link(self, name: str) -> Optional[Tuple[ObjectKind, int]]:
        for link_name, kind, addr in self._links():
            if link_name == name:
                return kind, addr
        return None

    def _add_link(self, name: str, kind: ObjectKind, addr: int) -> None:
        if self._find_link(name) is not None:
            raise H5NameError(f"name {name!r} already exists in {self._path!r}")
        self._header.messages.append(
            Message(MessageType.LINK, encode_link(name, kind, addr))
        )
        self._touch()

    def _update_link(self, name: str, new_addr: int) -> None:
        """Re-point a child link after its header relocated."""
        for m in self._header.find_all(MessageType.LINK):
            link_name, kind, _ = decode_link(m.payload)
            if link_name == name:
                m.payload = encode_link(link_name, kind, new_addr)
                self._touch()
                return
        raise H5NameError(f"no link named {name!r} in {self._path!r}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _open_child(self, name: str) -> Union["Group", Dataset]:
        found = self._find_link(name)
        if found is None:
            raise H5NameError(f"no object named {name!r} in {self._path!r}")
        kind, addr = found
        oid = self._file.adopt(addr, parent_oid=self._oid, name=name, kind=kind)
        path = self._child_path(name)
        if kind == ObjectKind.GROUP:
            return Group(self._file, oid, path)
        return Dataset(self._file, oid, path)

    def __getitem__(self, path: str) -> Union["Group", Dataset]:
        obj: Union[Group, Dataset] = self
        for part in path.strip("/").split("/"):
            if not part:
                continue
            if not isinstance(obj, Group):
                raise H5NameError(f"{obj.name!r} is not a group")
            obj = obj._open_child(part)
        return obj

    def get(self, path: str, default=None):
        try:
            return self[path]
        except H5NameError:
            return default

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def create_group(self, path: str) -> "Group":
        """Create (and return) a sub-group; intermediate groups are made."""
        parent, leaf = self._descend_for_create(path)
        if parent._find_link(leaf) is not None:
            raise H5NameError(f"name {leaf!r} already exists in {parent.name!r}")
        oid = self._file.new_object(
            ObjectKind.GROUP, parent_oid=parent._oid, name=leaf, messages=[]
        )
        parent._add_link(leaf, ObjectKind.GROUP, self._file._record(oid).addr)
        return Group(self._file, oid, parent._child_path(leaf))

    def require_group(self, path: str) -> "Group":
        """Return the group at ``path``, creating it if absent."""
        existing = self.get(path)
        if existing is not None:
            if not isinstance(existing, Group):
                raise H5NameError(f"{path!r} exists and is not a group")
            return existing
        return self.create_group(path)

    def create_dataset(
        self,
        path: str,
        shape: Tuple[int, ...] | int,
        dtype="f8",
        layout: str = "contiguous",
        chunks: Optional[Tuple[int, ...] | int] = None,
        data=None,
        compression: Optional[str] = None,
        compression_level: int = 4,
    ) -> Dataset:
        """Create a dataset.

        Args:
            path: Name, possibly nested (``"grp/dset"``).
            shape: Dataspace shape (an int means a 1-D shape).
            dtype: Anything :meth:`Datatype.of` accepts.
            layout: ``"contiguous"``, ``"chunked"``, or ``"compact"``.
            chunks: Chunk shape; required when ``layout="chunked"``.
            data: Optional initial contents, written immediately.
            compression: ``"zlib"`` to filter chunks (chunked fixed-dtype
                datasets only, like HDF5's filter pipeline).
            compression_level: zlib level 1-9.
        """
        parent, leaf = self._descend_for_create(path)
        if parent._find_link(leaf) is not None:
            raise H5NameError(f"name {leaf!r} already exists in {parent.name!r}")
        if isinstance(shape, int):
            shape = (shape,)
        space = Dataspace(tuple(int(d) for d in shape))
        dt = Datatype.of(dtype)

        if compression is not None and (layout != "chunked" or dt.is_vlen):
            raise H5LayoutError(
                "compression requires a chunked, fixed-dtype dataset"
            )
        if layout == "contiguous":
            lay = ContiguousLayout()
        elif layout == "compact":
            if dt.is_vlen:
                raise H5LayoutError("compact layout cannot hold variable-length data")
            lay = CompactLayout()
        elif layout == "chunked":
            if chunks is None:
                raise H5LayoutError("chunked layout requires a chunk shape")
            if isinstance(chunks, int):
                chunks = (chunks,)
            if len(chunks) != space.ndim:
                raise H5LayoutError(
                    f"chunk rank {len(chunks)} != dataspace rank {space.ndim}"
                )
            lay = ChunkedLayout(
                tuple(int(c) for c in chunks),
                compression=compression,
                compression_level=compression_level,
            )
        else:
            raise H5LayoutError(f"unknown layout {layout!r}")

        messages = [
            Message(MessageType.DATASPACE, space.encode()),
            Message(MessageType.DATATYPE, dt.encode()),
            Message(MessageType.LAYOUT, encode_layout(lay)),
        ]
        oid = self._file.new_object(
            ObjectKind.DATASET, parent_oid=parent._oid, name=leaf, messages=messages
        )
        parent._add_link(leaf, ObjectKind.DATASET, self._file._record(oid).addr)
        ds = Dataset(self._file, oid, parent._child_path(leaf))
        if data is not None:
            ds.write(data)
        return ds

    def _descend_for_create(self, path: str) -> Tuple["Group", str]:
        """Resolve intermediate groups of ``path`` (creating them) and
        return (parent_group, leaf_name)."""
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts:
            raise H5NameError("empty object name")
        group: Group = self
        for part in parts[:-1]:
            group = group.require_group(part)
        return group, parts[-1]

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, name: str) -> None:
        """Unlink and reclaim a direct child (groups delete recursively).

        Frees the child's header block, raw-data extents, and chunk-index
        nodes back to the file's free-space manager.  Global-heap
        collections referenced by variable-length data are *not* reclaimed
        (collections may be shared), matching HDF5's default behaviour —
        deletion is a fragmentation source, not a compaction.
        """
        if self._find_link(name) is None:
            raise H5NameError(f"no object named {name!r} in {self._path!r}")
        child = self._open_child(name)
        self._file.reclaim_object(child._oid)
        removed = self._header.remove(
            lambda m: m.type == MessageType.LINK
            and decode_link(m.payload)[0] == name
        )
        assert removed == 1
        self._touch()

    def __delitem__(self, name: str) -> None:
        self.delete(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def datasets(self) -> List[Dataset]:
        """All immediate child datasets (in link order)."""
        return [
            self._open_child(name)
            for name, kind, _ in self._links()
            if kind == ObjectKind.DATASET
        ]

    def visit(self, func) -> None:
        """Call ``func(path, object)`` for every descendant, depth-first."""
        for name, kind, _ in self._links():
            child = self._open_child(name)
            func(child.name, child)
            if isinstance(child, Group):
                child.visit(func)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self._path!r} ({len(self)} members)>"
