"""Metadata cache.

HDF5 keeps hot format metadata (object headers, B-tree nodes, heap
collection headers) in an in-memory cache so repeated logical operations do
not re-read the same blocks.  :class:`MetadataCache` reproduces that:
read-through with write-through semantics, FIFO eviction bounded by a byte
budget, and hit/miss counters the overhead experiments inspect.

The cache is keyed by file address.  Writers must invalidate or update the
cached bytes when a structure moves (the format layer does this when it
relocates a grown object header).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["MetadataCache"]


class MetadataCache:
    """Byte-budgeted FIFO cache of metadata blocks keyed by file address."""

    def __init__(self, capacity_bytes: int = 2 * 1024 * 1024, enabled: bool = True) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.enabled = enabled
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int, loader: Callable[[], bytes]) -> bytes:
        """Return the block at ``addr``, loading through ``loader`` on miss.

        ``nbytes`` is advisory: a cached block longer than the request is
        served truncated; a shorter cached block is treated as a miss (the
        structure grew on disk).
        """
        if not self.enabled:
            self.misses += 1
            return loader()
        cached = self._entries.get(addr)
        if cached is not None and len(cached) >= nbytes:
            self.hits += 1
            return cached[:nbytes] if nbytes else cached
        self.misses += 1
        data = loader()
        self._insert(addr, data)
        return data

    def peek(self, addr: int) -> Optional[bytes]:
        """The cached bytes at ``addr`` without counting a hit/miss."""
        return self._entries.get(addr)

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def put(self, addr: int, data: bytes) -> None:
        """Install/refresh the block at ``addr`` (write-through companions
        call this right after writing the bytes to the file)."""
        if not self.enabled:
            return
        self._insert(addr, data)

    def invalidate(self, addr: int) -> None:
        """Drop the block at ``addr`` (e.g. after the structure relocated)."""
        old = self._entries.pop(addr, None)
        if old is not None:
            self._bytes -= len(old)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def _insert(self, addr: int, data: bytes) -> None:
        old = self._entries.pop(addr, None)
        if old is not None:
            self._bytes -= len(old)
        if len(data) > self.capacity_bytes:
            return  # oversized blocks bypass the cache entirely
        self._entries[addr] = data
        self._bytes += len(data)
        while self._bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
