"""File-space allocation.

The free-space manager decides where every format structure lands in the
file's address space, and is therefore the direct *cause* of the physical
layouts the paper studies: object headers created early cluster near the
file's start ("the default location for metadata", its Figure 8), while raw
data blocks allocated at write time interleave with later metadata, and
relocated (grown) structures leave holes behind.

Policy: first-fit from the free list, falling back to extending end-of-file.
Freed extents are merged with adjacent free neighbours.  Like HDF5's default
behaviour, the free list lives only for the duration of the open file; space
freed in an earlier session is not reclaimed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hdf5.errors import H5FormatError
from repro.hdf5.format import SUPERBLOCK_SIZE

__all__ = ["FreeSpaceManager"]


class FreeSpaceManager:
    """First-fit allocator over a flat file address space."""

    def __init__(self, eof: int = SUPERBLOCK_SIZE) -> None:
        if eof < SUPERBLOCK_SIZE:
            raise H5FormatError(
                f"eof {eof} would overlap the superblock ({SUPERBLOCK_SIZE} bytes)"
            )
        self._eof = eof
        self._free: List[Tuple[int, int]] = []  # (addr, size), sorted by addr
        self.alloc_count = 0
        self.free_count = 0

    @property
    def eof(self) -> int:
        """Current end of allocated address space."""
        return self._eof

    @property
    def free_extents(self) -> List[Tuple[int, int]]:
        """Current free list as (addr, size) pairs, ascending by address."""
        return list(self._free)

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    def fragmentation(self) -> float:
        """Fraction of the allocated address space sitting in holes."""
        span = self._eof - SUPERBLOCK_SIZE
        return self.free_bytes / span if span > 0 else 0.0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the starting address."""
        if size <= 0:
            raise H5FormatError(f"cannot allocate {size} bytes")
        self.alloc_count += 1
        for i, (addr, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (addr + size, extent - size)
                return addr
        addr = self._eof
        self._eof += size
        return addr

    def allocate_at_eof(self, size: int) -> int:
        """Reserve ``size`` bytes strictly at end-of-file (never reuses holes).

        Raw data appends use this: HDF5 large-block allocation behaves the
        same way, which is why freed metadata holes persist as fragmentation.
        """
        if size <= 0:
            raise H5FormatError(f"cannot allocate {size} bytes")
        self.alloc_count += 1
        addr = self._eof
        self._eof += size
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return an extent to the free list, merging adjacent holes."""
        if size <= 0:
            return
        if addr < SUPERBLOCK_SIZE:
            raise H5FormatError("cannot free the superblock region")
        self.free_count += 1
        self._free.append((addr, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for a, s in self._free:
            if merged and merged[-1][0] + merged[-1][1] == a:
                merged[-1] = (merged[-1][0], merged[-1][1] + s)
            else:
                merged.append((a, s))
        # Shrink EOF if the last hole touches it.
        if merged and merged[-1][0] + merged[-1][1] == self._eof:
            a, s = merged.pop()
            self._eof = a
        self._free = merged
