"""Dataspaces and selections.

A :class:`Dataspace` is the logical shape of a dataset.  A
:class:`Selection` names a rectangular sub-region (a hyperslab) of that
shape — or the whole of it.  The key service this module provides is
*linearization*: translating a hyperslab into the maximal contiguous
row-major element runs it covers (:func:`selection_runs`).  Those runs are
exactly what the format layer turns into file addresses, i.e. the first of
the paper's two translation steps.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hdf5.errors import H5FormatError, H5TypeError

__all__ = ["Dataspace", "Selection", "selection_runs"]


@dataclass(frozen=True)
class Dataspace:
    """The logical, fixed shape of a dataset."""

    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.shape):
            raise H5TypeError(f"negative dimension in shape {self.shape}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def npoints(self) -> int:
        """Total number of elements (1 for a scalar dataspace)."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    # ------------------------------------------------------------------
    # Serialization (dataspace message payload)
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        out = struct.pack("<B", self.ndim)
        for d in self.shape:
            out += struct.pack("<Q", d)
        return out

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["Dataspace", int]:
        if offset >= len(data):
            raise H5FormatError("truncated dataspace message")
        (ndim,) = struct.unpack_from("<B", data, offset)
        offset += 1
        dims = []
        for _ in range(ndim):
            (d,) = struct.unpack_from("<Q", data, offset)
            dims.append(d)
            offset += 8
        return cls(tuple(dims)), offset


@dataclass(frozen=True)
class Selection:
    """A hyperslab: per-dimension ``(start, count)`` pairs, or ALL.

    Use :meth:`all` for the full dataspace and :meth:`hyperslab` for a
    sub-region.  ``Selection.hyperslab(((start, count),))`` selects a 1-D
    range; higher dimensions nest naturally.
    """

    slabs: Optional[Tuple[Tuple[int, int], ...]]  # None means ALL

    @classmethod
    def all(cls) -> "Selection":
        """Select every element."""
        return cls(None)

    @classmethod
    def hyperslab(cls, slabs: Sequence[Sequence[int]]) -> "Selection":
        """Select the block with per-dimension (start, count)."""
        norm = tuple((int(s), int(c)) for s, c in slabs)
        for start, count in norm:
            if start < 0 or count < 0:
                raise H5TypeError(f"negative start/count in hyperslab {norm}")
        return cls(norm)

    @property
    def is_all(self) -> bool:
        return self.slabs is None

    def resolve(self, space: Dataspace) -> Tuple[Tuple[int, int], ...]:
        """Concrete per-dimension (start, count) against ``space``.

        Raises:
            H5TypeError: When the slab rank mismatches or overruns the shape.
        """
        if self.slabs is None:
            return tuple((0, d) for d in space.shape)
        if len(self.slabs) != space.ndim:
            raise H5TypeError(
                f"selection rank {len(self.slabs)} != dataspace rank {space.ndim}"
            )
        for (start, count), dim in zip(self.slabs, space.shape):
            if start + count > dim:
                raise H5TypeError(
                    f"selection ({start}, {count}) exceeds dimension {dim}"
                )
        return self.slabs

    def npoints(self, space: Dataspace) -> int:
        """Number of selected elements."""
        n = 1
        for _, count in self.resolve(space):
            n *= count
        return n

    def out_shape(self, space: Dataspace) -> Tuple[int, ...]:
        """Shape of the array a read of this selection produces."""
        return tuple(count for _, count in self.resolve(space))


def selection_runs(space: Dataspace, selection: Selection) -> List[Tuple[int, int]]:
    """Contiguous row-major element runs covered by ``selection``.

    Returns a list of ``(flat_start, length)`` pairs in increasing order.
    A full selection — or one whose trailing dimensions are fully selected —
    coalesces into a single run; scattered hyperslabs produce one run per
    innermost contiguous block.  This is the translation that determines
    how many I/O operations a logical access costs.
    """
    slabs = selection.resolve(space)
    if space.ndim == 0:
        return [(0, 1)]
    if any(count == 0 for _, count in slabs):
        return []

    # Row-major strides in elements.
    strides = [1] * space.ndim
    for axis in range(space.ndim - 2, -1, -1):
        strides[axis] = strides[axis + 1] * space.shape[axis + 1]

    # Find the longest fully-selected suffix: those dims fold into the run.
    split = space.ndim
    while split > 0:
        start, count = slabs[split - 1]
        if start == 0 and count == space.shape[split - 1]:
            split -= 1
        else:
            break

    # The innermost partially-selected dim bounds each contiguous run: the
    # run covers [inner_start, inner_start + inner_count) on that axis with
    # everything below it fully selected.
    if split == 0:
        return [(0, space.npoints)]
    inner_axis = split - 1
    inner_start, inner_count = slabs[inner_axis]
    below = strides[inner_axis]  # elements per step along the inner axis
    run_len = inner_count * below

    runs: List[Tuple[int, int]] = []

    def rec(axis: int, base: int) -> None:
        if axis == inner_axis:
            runs.append((base + inner_start * below, run_len))
            return
        start, count = slabs[axis]
        for i in range(start, start + count):
            rec(axis + 1, base + i * strides[axis])

    rec(0, 0)
    return runs
