"""Dataset storage layouts.

The format offers the three layouts HDF5 does, with the I/O consequences
the paper's Challenge 2 describes:

- **compact** — raw data lives inside the object header itself.  Reads and
  writes are metadata operations; only sensible for tiny datasets.
- **contiguous** — one extent of raw data.  A full-dataset access is a
  single large I/O; partial accesses map to at most one run per selection
  row.
- **chunked** — the dataspace is tiled into fixed-shape chunks, each an
  independently allocated block found through a B-tree index.  Random and
  partial access touch only the intersecting chunks, at the price of index
  metadata I/O and per-chunk fragmentation.

This module only defines the layout *descriptors* and their serialization
(the LAYOUT header message payload); the data-path logic lives in
:mod:`repro.hdf5.dataset`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from repro.hdf5.errors import H5FormatError, H5LayoutError
from repro.hdf5.format import UNDEF_ADDR

__all__ = [
    "CompactLayout",
    "ContiguousLayout",
    "ChunkedLayout",
    "Layout",
    "encode_layout",
    "decode_layout",
]

_COMPACT, _CONTIGUOUS, _CHUNKED = 0, 1, 2


@dataclass
class CompactLayout:
    """Raw data stored inside the object header."""

    data: bytes = b""

    name = "compact"


@dataclass
class ContiguousLayout:
    """Raw data in a single extent at ``addr`` (UNDEF until first write)."""

    addr: int = UNDEF_ADDR
    size: int = 0

    name = "contiguous"

    @property
    def allocated(self) -> bool:
        return self.addr != UNDEF_ADDR


@dataclass
class ChunkedLayout:
    """Dataspace tiled into ``chunk_shape`` blocks indexed by a B-tree.

    Chunked layouts optionally carry a *filter pipeline* (like HDF5's):
    ``compression="zlib"`` passes every chunk through zlib on the way to
    disk.  Compressed chunks have data-dependent on-disk sizes, recorded in
    the B-tree; a rewritten chunk that no longer fits its old allocation
    must relocate — one more fragmentation mechanism of real files.
    """

    chunk_shape: Tuple[int, ...]
    btree_addr: int = UNDEF_ADDR
    compression: str | None = None
    compression_level: int = 4

    name = "chunked"

    def __post_init__(self) -> None:
        if not self.chunk_shape or any(c <= 0 for c in self.chunk_shape):
            raise H5LayoutError(
                f"chunk shape must have positive extents, got {self.chunk_shape}"
            )
        if self.compression not in (None, "zlib"):
            raise H5LayoutError(
                f"unknown compression filter {self.compression!r}"
            )
        if not (1 <= self.compression_level <= 9):
            raise H5LayoutError(
                f"compression level must be 1-9, got {self.compression_level}"
            )

    @property
    def indexed(self) -> bool:
        return self.btree_addr != UNDEF_ADDR

    def chunk_grid(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Number of chunks along each dimension for a dataspace ``shape``."""
        if len(shape) != len(self.chunk_shape):
            raise H5LayoutError(
                f"chunk rank {len(self.chunk_shape)} != dataspace rank {len(shape)}"
            )
        return tuple(
            (dim + c - 1) // c for dim, c in zip(shape, self.chunk_shape)
        )


Layout = Union[CompactLayout, ContiguousLayout, ChunkedLayout]


def encode_layout(layout: Layout) -> bytes:
    """Serialize a layout descriptor to a LAYOUT message payload."""
    if isinstance(layout, CompactLayout):
        return struct.pack("<BI", _COMPACT, len(layout.data)) + layout.data
    if isinstance(layout, ContiguousLayout):
        return struct.pack("<BQQ", _CONTIGUOUS, layout.addr, layout.size)
    if isinstance(layout, ChunkedLayout):
        head = struct.pack("<BB", _CHUNKED, len(layout.chunk_shape))
        dims = b"".join(struct.pack("<Q", c) for c in layout.chunk_shape)
        filt = 1 if layout.compression == "zlib" else 0
        return (head + dims + struct.pack("<Q", layout.btree_addr)
                + struct.pack("<BB", filt, layout.compression_level))
    raise H5LayoutError(f"unknown layout object {layout!r}")


def decode_layout(payload: bytes) -> Layout:
    """Parse a LAYOUT message payload back into a descriptor."""
    if not payload:
        raise H5FormatError("empty layout message")
    cls = payload[0]
    if cls == _COMPACT:
        (length,) = struct.unpack_from("<I", payload, 1)
        data = payload[5 : 5 + length]
        if len(data) != length:
            raise H5FormatError("compact layout data truncated")
        return CompactLayout(data)
    if cls == _CONTIGUOUS:
        _, addr, size = struct.unpack_from("<BQQ", payload, 0)
        return ContiguousLayout(addr=addr, size=size)
    if cls == _CHUNKED:
        ndim = payload[1]
        offset = 2
        dims = []
        for _ in range(ndim):
            (d,) = struct.unpack_from("<Q", payload, offset)
            dims.append(d)
            offset += 8
        (btree_addr,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        compression = None
        level = 4
        if offset < len(payload):  # filter pipeline fields
            filt, level = struct.unpack_from("<BB", payload, offset)
            compression = "zlib" if filt == 1 else None
        return ChunkedLayout(chunk_shape=tuple(dims), btree_addr=btree_addr,
                             compression=compression, compression_level=level)
    raise H5FormatError(f"unknown layout class {cls}")
