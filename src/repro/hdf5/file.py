"""The file object: superblock, object registry, and header persistence.

:class:`H5File` owns the pieces every other format module plugs into — the
VFD, the free-space allocator, the metadata cache, and the global heap —
and manages the life cycle of object headers:

- creation writes the header immediately (so the file is structurally valid
  and header blocks cluster near the start of the address space, the
  "default location for metadata" visible in the paper's Figure 8);
- mutations (new links, attributes, layout updates) only mark the header
  dirty;
- :meth:`flush` rewrites dirty headers, *relocating* any that outgrew their
  block — freeing the old block and re-pointing the parent's link, the
  format-level mechanism behind metadata fragmentation.

A :class:`TracingVFD <repro.vfd.tracing.TracingVFD>` can be interposed via
``vfd_wrap`` — that is exactly where DaYu's VFD profiler plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hdf5.dataset import Dataset
from repro.hdf5.errors import H5FormatError, H5StateError
from repro.hdf5.format import SUPERBLOCK_SIZE, UNDEF_ADDR, Superblock
from repro.hdf5.freespace import FreeSpaceManager
from repro.hdf5.group import Group
from repro.hdf5.heap import GlobalHeap
from repro.hdf5.meta_cache import MetadataCache
from repro.hdf5.metaio import MetaIO
from repro.hdf5.oheader import (
    OHDR_PREFIX_SIZE,
    Message,
    MessageType,
    ObjectHeader,
    ObjectKind,
    decode_link,
    encode_link,
)
from repro.posix.simfs import SimFS
from repro.vfd.base import IoClass, VirtualFileDriver
from repro.vfd.sec2 import Sec2VFD

__all__ = ["H5File"]


@dataclass
class _ObjectRecord:
    oid: int
    addr: int
    kind: ObjectKind
    header: ObjectHeader
    parent_oid: Optional[int]
    name: str  # link name within the parent ("" for the root)
    dirty: bool = False


class H5File:
    """An open container file.

    Args:
        fs: The simulated filesystem the file lives on.
        path: File path.
        mode: ``"r"`` read-only, ``"r+"`` read/write, ``"w"``
            create-or-truncate, ``"x"`` exclusive create.
        vfd_wrap: Optional callable wrapping the base driver — pass
            ``lambda v: TracingVFD(v, tracer)`` to attach DaYu's profiler.
        cache_enabled: Toggle the metadata cache.
        heap_data_capacity: Data bytes per standard global-heap collection.
    """

    def __init__(
        self,
        fs: SimFS,
        path: str,
        mode: str = "r",
        *,
        vfd_wrap: Optional[Callable[[VirtualFileDriver], VirtualFileDriver]] = None,
        cache_enabled: bool = True,
        heap_data_capacity: int = 4096,
    ) -> None:
        if mode not in ("r", "r+", "w", "x"):
            raise ValueError(f"unsupported file mode {mode!r}")
        self._path = path
        self._mode = mode
        base: VirtualFileDriver = Sec2VFD(fs, path, mode)
        self.vfd: VirtualFileDriver = vfd_wrap(base) if vfd_wrap else base
        self.cache = MetadataCache(enabled=cache_enabled)
        self._objects: Dict[int, _ObjectRecord] = {}
        self._by_addr: Dict[int, int] = {}
        self._next_oid = 1
        self._closed = False

        if mode in ("w", "x"):
            self.allocator = FreeSpaceManager()
            self.metaio = MetaIO(self.vfd, self.allocator, self.cache)
            self.heap = GlobalHeap(self.metaio, data_capacity=heap_data_capacity)
            self._superblock = Superblock()
            self._write_superblock()
            root_oid = self.new_object(ObjectKind.GROUP, None, "", [])
            self._superblock.root_addr = self._objects[root_oid].addr
            self._root_oid = root_oid
            self._write_superblock()
        else:
            raw = self.vfd.read(0, SUPERBLOCK_SIZE, IoClass.METADATA)
            self._superblock = Superblock.decode(raw)
            if self._superblock.root_addr == UNDEF_ADDR:
                raise H5FormatError(f"{path!r} has no root group")
            self.allocator = FreeSpaceManager(eof=self._superblock.eof_addr)
            self.metaio = MetaIO(self.vfd, self.allocator, self.cache)
            self.heap = GlobalHeap(self.metaio, data_capacity=heap_data_capacity)
            self._root_oid = self.adopt(
                self._superblock.root_addr, parent_oid=None, name="",
                kind=ObjectKind.GROUP,
            )

    # ------------------------------------------------------------------
    # Identity / state
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def writable(self) -> bool:
        return self._mode != "r"

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise H5StateError(f"file {self._path!r} is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if not self.writable:
            raise H5StateError(f"file {self._path!r} is read-only")

    # ------------------------------------------------------------------
    # Object registry
    # ------------------------------------------------------------------
    def _record(self, oid: int) -> _ObjectRecord:
        self._check_open()
        rec = self._objects.get(oid)
        if rec is None:
            raise H5StateError(f"stale object id {oid}")
        return rec

    def new_object(
        self,
        kind: ObjectKind,
        parent_oid: Optional[int],
        name: str,
        messages: List[Message],
    ) -> int:
        """Create a new object header, write it, and register it."""
        self._check_writable()
        header = ObjectHeader(kind=kind, messages=messages)
        header.capacity = ObjectHeader.capacity_for(header.used)
        addr = self.allocator.allocate(header.capacity)
        self.metaio.write(addr, header.encode())
        oid = self._next_oid
        self._next_oid += 1
        rec = _ObjectRecord(
            oid=oid, addr=addr, kind=kind, header=header,
            parent_oid=parent_oid, name=name,
        )
        self._objects[oid] = rec
        self._by_addr[addr] = oid
        return oid

    def adopt(
        self,
        addr: int,
        parent_oid: Optional[int],
        name: str,
        kind: Optional[ObjectKind] = None,
    ) -> int:
        """Register (or find) the object whose header lives at ``addr``."""
        self._check_open()
        existing = self._by_addr.get(addr)
        if existing is not None:
            return existing
        # Peek the prefix to learn the block size, then read it whole.
        capacity = ObjectHeader.peek_capacity(self.metaio.read(addr, OHDR_PREFIX_SIZE))
        header = ObjectHeader.decode(self.metaio.read(addr, capacity))
        if kind is not None and header.kind != kind:
            raise H5FormatError(
                f"object at {addr} is a {header.kind.name}, expected {kind.name}"
            )
        oid = self._next_oid
        self._next_oid += 1
        rec = _ObjectRecord(
            oid=oid, addr=addr, kind=header.kind, header=header,
            parent_oid=parent_oid, name=name,
        )
        self._objects[oid] = rec
        self._by_addr[addr] = oid
        return oid

    def mark_dirty(self, oid: int) -> None:
        self._check_writable()
        self._record(oid).dirty = True

    def reclaim_object(self, oid: int) -> None:
        """Free an object's storage and drop it from the registry.

        Datasets release their raw-data extents and chunk-index nodes;
        groups recurse through their children first.  The caller (the
        parent group) removes the link message.
        """
        self._check_writable()
        rec = self._record(oid)
        header = rec.header
        if rec.kind == ObjectKind.GROUP:
            for m in header.find_all(MessageType.LINK):
                name, kind, child_addr = decode_link(m.payload)
                child_oid = self.adopt(child_addr, parent_oid=oid,
                                       name=name, kind=kind)
                self.reclaim_object(child_oid)
        else:
            self._reclaim_dataset_storage(header)
        self.metaio.free(rec.addr, header.capacity)
        del self._objects[oid]
        self._by_addr.pop(rec.addr, None)

    def _reclaim_dataset_storage(self, header: ObjectHeader) -> None:
        from repro.hdf5.btree import ChunkBTree, node_capacity
        from repro.hdf5.layout import (
            ChunkedLayout,
            ContiguousLayout,
            decode_layout,
        )

        msg = header.find(MessageType.LAYOUT)
        if msg is None:
            return
        layout = decode_layout(msg.payload)
        if isinstance(layout, ContiguousLayout) and layout.allocated:
            self.allocator.free(layout.addr, layout.size)
        elif isinstance(layout, ChunkedLayout) and layout.indexed:
            tree = ChunkBTree(self.metaio, len(layout.chunk_shape),
                              layout.btree_addr)
            for _, addr, size in tree.items():
                if size:
                    self.allocator.free(addr, size)
            cap = node_capacity(len(layout.chunk_shape))
            for node_addr in tree.node_addrs():
                self.metaio.free(node_addr, cap)

    # ------------------------------------------------------------------
    # Root access and h5py-style conveniences
    # ------------------------------------------------------------------
    @property
    def root(self) -> Group:
        self._check_open()
        return Group(self, self._root_oid, "/")

    def __getitem__(self, path: str):
        return self.root[path]

    def __contains__(self, path: str) -> bool:
        return path.strip("/") in self.root

    def create_group(self, path: str) -> Group:
        return self.root.create_group(path)

    def require_group(self, path: str) -> Group:
        return self.root.require_group(path)

    def create_dataset(self, path: str, shape, dtype="f8", **kwargs) -> Dataset:
        return self.root.create_dataset(path, shape, dtype, **kwargs)

    def keys(self) -> List[str]:
        return self.root.keys()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _write_superblock(self) -> None:
        self.vfd.write(0, self._superblock.encode(), IoClass.METADATA)

    def _repoint_parent_link(self, rec: _ObjectRecord, new_addr: int) -> None:
        if rec.parent_oid is None:
            self._superblock.root_addr = new_addr
            return
        parent = self._record(rec.parent_oid)
        for m in parent.header.find_all(MessageType.LINK):
            link_name, kind, _ = decode_link(m.payload)
            if link_name == rec.name:
                m.payload = encode_link(link_name, kind, new_addr)
                parent.dirty = True
                return
        raise H5FormatError(
            f"parent of {rec.name!r} has no link to it (corrupt registry)"
        )

    def flush(self) -> None:
        """Write all pending state: heap directories, dirty headers, superblock."""
        self._check_open()
        if not self.writable:
            return
        self.heap.flush()
        # Dirty headers may dirty their parents (relocation), so iterate.
        while True:
            dirty = [rec for rec in self._objects.values() if rec.dirty]
            if not dirty:
                break
            for rec in dirty:
                if rec.header.used > rec.header.capacity:
                    old_addr, old_cap = rec.addr, rec.header.capacity
                    rec.header.capacity = ObjectHeader.capacity_for(rec.header.used)
                    new_addr = self.allocator.allocate(rec.header.capacity)
                    del self._by_addr[old_addr]
                    self._by_addr[new_addr] = rec.oid
                    rec.addr = new_addr
                    self.metaio.free(old_addr, old_cap)
                    self._repoint_parent_link(rec, new_addr)
                self.metaio.write(rec.addr, rec.header.encode())
                rec.dirty = False
        self._superblock.eof_addr = self.allocator.eof
        self._write_superblock()

    def close(self) -> None:
        """Flush and release the file.  Idempotent."""
        if self._closed:
            return
        if self.writable:
            self.flush()
        self._closed = True
        self.vfd.close()

    def __enter__(self) -> "H5File":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else self._mode
        return f"<H5File {self._path!r} ({state})>"
