"""The HDF5 data-format optimization rules (paper Section III-A.4).

Verbatim decision table:

- *Small, fixed-length data*: contiguous — the whole dataset moves in one
  I/O operation.
- *Large, fixed-length data*: contiguous when access is sequential;
  chunked when access is random or parallel.
- *Variable-length data*: chunked at any size — the chunk metadata indexes
  the variable-length records, enabling efficient random file access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hdf5.datatype import Datatype

__all__ = ["AccessPattern", "LayoutAdvice", "advise_layout", "SMALL_DATA_BYTES"]

#: Below this size a fixed-length dataset counts as "small" — one I/O op
#: moves it all, so contiguous always wins.
SMALL_DATA_BYTES = 1 << 20  # 1 MiB


class AccessPattern(str, enum.Enum):
    """How tasks access the dataset, from DaYu's profiles."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class LayoutAdvice:
    """A layout recommendation with its rationale."""

    layout: str  # "contiguous" | "chunked"
    chunk_elements: int | None
    rationale: str


def advise_layout(
    dtype: "Datatype | str",
    total_elements: int,
    access: AccessPattern = AccessPattern.SEQUENTIAL,
    target_chunks: int = 10,
) -> LayoutAdvice:
    """Recommend a storage layout per the Section III-A.4 guidelines.

    Args:
        dtype: The dataset's element type.
        total_elements: Number of elements in the dataset.
        access: Dominant access pattern observed by DaYu.
        target_chunks: When chunking, aim for about this many chunks.

    Returns:
        A :class:`LayoutAdvice` with the chosen layout, a suggested chunk
        size (elements) when chunked, and the guideline rationale.
    """
    if total_elements < 0:
        raise ValueError("total_elements must be non-negative")
    dt = Datatype.of(dtype)
    chunk = max(1, total_elements // max(target_chunks, 1))

    if dt.is_vlen:
        return LayoutAdvice(
            layout="chunked",
            chunk_elements=chunk,
            rationale=(
                "variable-length data: chunked layout at any size leverages "
                "chunk metadata to index records for efficient random access"
            ),
        )

    nbytes = total_elements * dt.itemsize
    if nbytes <= SMALL_DATA_BYTES:
        return LayoutAdvice(
            layout="contiguous",
            chunk_elements=None,
            rationale=(
                "small fixed-length data: contiguous layout reads the whole "
                "dataset in a single I/O operation"
            ),
        )
    if access is AccessPattern.SEQUENTIAL:
        return LayoutAdvice(
            layout="contiguous",
            chunk_elements=None,
            rationale=(
                "large fixed-length data with sequential access: contiguous "
                "layout optimizes for the sequential scan"
            ),
        )
    return LayoutAdvice(
        layout="chunked",
        chunk_elements=chunk,
        rationale=(
            f"large fixed-length data with {access.value} access: chunked "
            "layout enables partial and parallel access"
        ),
    )
