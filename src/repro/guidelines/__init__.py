"""DaYu's optimization guidelines (paper Section III-A).

The paper pairs its diagnostic insights with four guideline families —
customized caching, partial file access, customized prefetching, and data
format optimization — plus the scheduling moves its evaluation applies
(co-scheduling, stage-out, parallelization).  This package encodes them:

- :func:`~repro.guidelines.layout.advise_layout` — the Section III-A.4
  data-layout decision rules.
- :func:`~repro.guidelines.engine.recommend` — map a diagnostic report to
  concrete :class:`~repro.guidelines.engine.Recommendation` actions.
"""

from repro.guidelines.engine import Action, Recommendation, recommend
from repro.guidelines.layout import AccessPattern, advise_layout

__all__ = [
    "Action",
    "Recommendation",
    "recommend",
    "AccessPattern",
    "advise_layout",
]
