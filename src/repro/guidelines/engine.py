"""The recommendation engine: diagnostic insights → concrete actions.

Every insight carries the *name* of the guideline addressing it; this
module turns each into an executable :class:`Recommendation` — the action
vocabulary the paper's evaluation applies (cache, prefetch, rolling
stage-in, stage-out, consolidate, convert layout, co-schedule,
parallelize, skip-unused).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.diagnostics.insights import Insight, InsightKind

__all__ = ["Action", "Recommendation", "recommend"]


class Action(str, enum.Enum):
    """Concrete optimization moves DaYu can suggest."""

    CACHE_IN_FAST_TIER = "cache_in_fast_tier"
    PREFETCH_BEFORE_USE = "prefetch_before_use"
    ROLLING_STAGE_IN = "rolling_stage_in"
    STAGE_OUT = "stage_out"
    CONSOLIDATE_DATASETS = "consolidate_datasets"
    CONVERT_TO_CONTIGUOUS = "convert_to_contiguous"
    CONVERT_TO_CHUNKED = "convert_to_chunked"
    SKIP_UNUSED_DATA = "skip_unused_data"
    CO_SCHEDULE = "co_schedule"
    PARALLELIZE = "parallelize"


#: Which action each insight kind maps to.
_ACTION_FOR: Dict[InsightKind, Action] = {
    InsightKind.DATA_REUSE: Action.CACHE_IN_FAST_TIER,
    InsightKind.WRITE_AFTER_READ: Action.CACHE_IN_FAST_TIER,
    InsightKind.READ_AFTER_WRITE: Action.CACHE_IN_FAST_TIER,
    InsightKind.TIME_DEPENDENT_INPUT: Action.PREFETCH_BEFORE_USE,
    InsightKind.DISPOSABLE_DATA: Action.STAGE_OUT,
    InsightKind.DATA_SCATTERING: Action.CONSOLIDATE_DATASETS,
    InsightKind.PARTIAL_FILE_ACCESS: Action.SKIP_UNUSED_DATA,
    InsightKind.METADATA_OVERHEAD: Action.CONVERT_TO_CONTIGUOUS,
    InsightKind.READONLY_SEQUENTIAL: Action.ROLLING_STAGE_IN,
    InsightKind.TASK_INDEPENDENCE: Action.PARALLELIZE,
    InsightKind.VLEN_LAYOUT: Action.CONVERT_TO_CHUNKED,
}


@dataclass
class Recommendation:
    """One actionable optimization derived from an insight."""

    action: Action
    target: str
    tasks: List[str] = field(default_factory=list)
    rationale: str = ""
    insight_kind: InsightKind | None = None

    def to_json_dict(self) -> dict:
        return {
            "action": self.action.value,
            "target": self.target,
            "tasks": self.tasks,
            "rationale": self.rationale,
            "insight_kind": self.insight_kind.value if self.insight_kind else None,
        }

    def __str__(self) -> str:
        return f"{self.action.value}({self.target}) — {self.rationale}"


def recommend(insights: Sequence[Insight]) -> List[Recommendation]:
    """Translate insights into deduplicated, ordered recommendations.

    Recommendations are deduplicated by (action, target) — many insights
    can point at the same fix — and ordered by how many insights support
    each, strongest first.
    """
    merged: Dict[tuple, Recommendation] = {}
    support: Dict[tuple, int] = {}
    for insight in insights:
        action = _ACTION_FOR[insight.kind]
        key = (action, insight.subject)
        if key not in merged:
            merged[key] = Recommendation(
                action=action,
                target=insight.subject,
                tasks=list(insight.tasks),
                rationale=insight.description,
                insight_kind=insight.kind,
            )
            support[key] = 0
        else:
            for t in insight.tasks:
                if t not in merged[key].tasks:
                    merged[key].tasks.append(t)
        support[key] += 1
    return sorted(merged.values(), key=lambda r: -support[(r.action, r.target)])
