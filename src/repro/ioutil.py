"""Atomic artifact writers shared by every DaYu component that persists
JSON/text/binary outputs.

Rationale: every ``dayu-*`` tool hands its results to another process
through the filesystem — ``BENCH_*.json`` to CI gates, ``lint.json`` to
diff steps, run files to a restarted ``dayu-serve``.  A plain
``open(...).write(...)`` interrupted by a crash (or ``kill -9``) leaves a
truncated file that the *consumer* then trips over, far from the fault.
Writing to a temporary file in the same directory and ``os.replace``-ing
it over the destination makes every artifact either absent or complete:
POSIX renames within a filesystem are atomic, so no reader ever observes
a half-written artifact.

The temporary file carries a ``.tmp-`` prefix, so recovery scans (the
service run store in particular) can both ignore and garbage-collect
droppings from a writer that died before its rename.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = [
    "TMP_PREFIX",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "is_tmp_dropping",
]

#: Prefix of in-flight temporary files (never valid artifacts).
TMP_PREFIX = ".tmp-"

PathLike = Union[str, os.PathLike]


def is_tmp_dropping(name: str) -> bool:
    """True for a basename left behind by an interrupted atomic write."""
    return name.startswith(TMP_PREFIX)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses a filesystem boundary.  On any failure the
    temporary file is removed and the destination is untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=TMP_PREFIX, suffix=path.suffix,
                               dir=str(path.parent) or ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomic counterpart of ``Path.write_text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, payload, indent: int = 2,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` as JSON and write it atomically.

    Serialization happens *before* any file is touched, so a
    non-JSON-safe payload can never leave a partial artifact either.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
