"""The Virtual File Driver interface.

The HDF5-like format layer (:mod:`repro.hdf5`) addresses a flat "file
address space" and never touches the filesystem directly; it issues reads
and writes through a :class:`VirtualFileDriver`.  Each operation carries an
:class:`IoClass` declaring whether the bytes are *format metadata*
(superblock, object headers, B-tree nodes, heaps) or *raw dataset data*.
That classification is what lets DaYu "categorize I/O operations into
metadata and raw data operations" (paper, Section IV).
"""

from __future__ import annotations

import abc
import enum

__all__ = ["IoClass", "VirtualFileDriver"]


class IoClass(enum.Enum):
    """Classification of an I/O operation at the VFD boundary."""

    METADATA = "metadata"
    RAW = "raw"


class VirtualFileDriver(abc.ABC):
    """Abstract driver for a single open file's address space."""

    @property
    @abc.abstractmethod
    def path(self) -> str:
        """Path of the underlying file."""

    @abc.abstractmethod
    def read(self, addr: int, nbytes: int, io_class: IoClass) -> bytes:
        """Read ``nbytes`` at file address ``addr``."""

    @abc.abstractmethod
    def write(self, addr: int, data: bytes, io_class: IoClass) -> None:
        """Write ``data`` at file address ``addr``."""

    @abc.abstractmethod
    def get_eof(self) -> int:
        """Current end-of-file address (one past the last byte)."""

    @abc.abstractmethod
    def truncate(self, size: int) -> None:
        """Set the file size to exactly ``size`` bytes."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the underlying descriptor.  Idempotent."""
