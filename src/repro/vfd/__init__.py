"""Virtual File Driver (VFD) layer.

HDF5 performs all of its file I/O through a pluggable driver abstraction —
the Virtual File Driver.  DaYu's low-level profiler is implemented as a VFD
plugin wrapped around the real driver.  This package reproduces that stack:

- :class:`~repro.vfd.base.VirtualFileDriver` — the driver interface the
  HDF5-like format layer programs against.  Every call is tagged with an
  :class:`~repro.vfd.base.IoClass` so metadata and raw-data I/O are
  distinguishable (parameter 6 of the paper's Table II).
- :class:`~repro.vfd.sec2.Sec2VFD` — the "sec2"-style POSIX driver over the
  simulated filesystem.
- :class:`~repro.vfd.tracing.TracingVFD` /
  :class:`~repro.vfd.tracing.VfdTracer` — DaYu's VFD profiler, recording the
  file-level semantics of Table II.
- :class:`~repro.vfd.channel.VolVfdChannel` — the shared-memory channel
  through which the VOL layer tells the VFD layer which data object the
  current I/O belongs to.
"""

from repro.vfd.base import IoClass, VirtualFileDriver
from repro.vfd.channel import VolVfdChannel
from repro.vfd.sec2 import Sec2VFD
from repro.vfd.tracing import FileSession, TracingVFD, VfdIoRecord, VfdTracer

__all__ = [
    "IoClass",
    "VirtualFileDriver",
    "VolVfdChannel",
    "Sec2VFD",
    "TracingVFD",
    "VfdTracer",
    "VfdIoRecord",
    "FileSession",
]
