"""The "sec2"-style POSIX file driver.

HDF5's default driver (named *sec2* after the POSIX section-2 syscalls)
maps the format's flat address space one-to-one onto file offsets and issues
plain ``pread``/``pwrite`` calls.  :class:`Sec2VFD` does exactly that over
the simulated filesystem, so every format-level address materializes as a
POSIX operation with a modeled device cost.
"""

from __future__ import annotations

from repro.posix.simfs import SimFS
from repro.vfd.base import IoClass, VirtualFileDriver

__all__ = ["Sec2VFD"]


class Sec2VFD(VirtualFileDriver):
    """POSIX passthrough driver over :class:`~repro.posix.simfs.SimFS`.

    Args:
        fs: The simulated filesystem.
        path: File path to open.
        mode: A :meth:`SimFS.open` mode (``"r"``, ``"r+"``, ``"w"``...).
    """

    def __init__(self, fs: SimFS, path: str, mode: str = "r") -> None:
        self._fs = fs
        self._path = path
        self._fd: int | None = fs.open(path, mode)

    @property
    def path(self) -> str:
        return self._path

    @property
    def fs(self) -> SimFS:
        """The filesystem this driver operates on."""
        return self._fs

    def _require_open(self) -> int:
        if self._fd is None:
            raise ValueError(f"VFD for {self._path!r} is closed")
        return self._fd

    def read(self, addr: int, nbytes: int, io_class: IoClass) -> bytes:
        return self._fs.pread(self._require_open(), nbytes, addr)

    def write(self, addr: int, data: bytes, io_class: IoClass) -> None:
        self._fs.pwrite(self._require_open(), data, addr)

    def get_eof(self) -> int:
        return self._fs.file_size(self._require_open())

    def truncate(self, size: int) -> None:
        self._fs.truncate(self._require_open(), size)

    def close(self) -> None:
        if self._fd is not None:
            self._fs.close(self._fd)
            self._fd = None
