"""DaYu's VFD profiler: low-level, file-oriented I/O tracing.

This module reproduces the lower layer of the paper's two-layer HDF5 plugin.
Wrapping any :class:`~repro.vfd.base.VirtualFileDriver` in a
:class:`TracingVFD` records, for every I/O operation, the file-level
semantics of the paper's Table II:

1. task name (from the :class:`~repro.vfd.channel.VolVfdChannel`);
2. file name;
3. file lifetime (``T_close - T_open``, kept per :class:`FileSession`);
4. file statistics (size, count, sequentiality);
5. the I/O operation with its file address region;
6. the access-type flag (metadata vs. raw data);
7. the data object the operation belongs to (from the channel).

Tracing itself costs time.  The paper measures that cost (Figures 9 and 10);
we model it by charging a small per-record cost to the simulated clock under
the ``dayu.vfd.access_tracker`` account, so the overhead experiments are
deterministic and the component breakdown is exact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.simclock import SimClock
from repro.vfd.base import IoClass, VirtualFileDriver
from repro.vfd.channel import VolVfdChannel

__all__ = ["VfdIoRecord", "FileSession", "VfdTracer", "TracingVFD", "TracerCosts"]

#: Account names used on the simulated clock.
ACCESS_TRACKER_ACCOUNT = "dayu.vfd.access_tracker"


@dataclass(frozen=True)
class TracerCosts:
    """Modeled per-event cost of the VFD profiler, in simulated seconds.

    The base values are small constants — DaYu's tracker appends one
    hash-table entry per event.  ``per_record_growth`` models the
    accumulating cost of a growing trace (hash-table chains, buffer
    reallocation): the i-th record costs ``per_io_record + i *
    per_record_growth``.  Together they land the overhead fractions in the
    regimes the paper reports — well under 0.25% for data-heavy runs,
    climbing toward ~3% (VFD) only when thousands of operations accumulate
    within one file's open/close period (its corner case).
    """

    per_io_record: float = 0.6e-6
    per_session_event: float = 2.0e-6  # file open / close bookkeeping
    per_record_growth: float = 2.5e-9


@dataclass(frozen=True)
class VfdIoRecord:
    """One traced low-level I/O operation (Table II, parameters 5-7).

    The compact on-disk form (varint fields, interned string ids) is
    produced by :mod:`repro.mapper.codec`.
    """

    task: Optional[str]
    file: str
    op: str  # "read" | "write"
    offset: int
    nbytes: int
    start: float
    duration: float
    access_type: IoClass
    data_object: Optional[str]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def bandwidth(self) -> float:
        """Achieved bytes/second (0 for zero-duration or zero-byte ops)."""
        if self.duration <= 0.0:
            return 0.0
        return self.nbytes / self.duration

    def region(self, page_size: int) -> Tuple[int, int]:
        """The page-aligned address region ``[first_page, last_page]``."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        last = max(self.offset, self.offset + self.nbytes - 1)
        return (self.offset // page_size, last // page_size)

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "file": self.file,
            "op": self.op,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "start": self.start,
            "duration": self.duration,
            "access_type": self.access_type.value,
            "data_object": self.data_object,
        }


@dataclass
class FileSession:
    """One open→close interval of a file (Table II, parameters 1-4)."""

    task: Optional[str]
    file: str
    open_time: float
    close_time: Optional[float] = None
    read_ops: int = 0
    write_ops: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    sequential_ops: int = 0
    sequential_raw_ops: int = 0
    metadata_ops: int = 0
    raw_ops: int = 0
    data_objects: List[str] = field(default_factory=list)
    _last_end: Optional[int] = None
    _last_raw_end: Optional[int] = None

    @property
    def lifetime(self) -> Optional[float]:
        """``T_close - T_open``, or None while the file is still open."""
        if self.close_time is None:
            return None
        return self.close_time - self.open_time

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def sequential_fraction(self) -> float:
        """Fraction of operations continuing where the previous one ended."""
        return self.sequential_ops / self.total_ops if self.total_ops else 0.0

    @property
    def raw_sequential_fraction(self) -> float:
        """Sequential fraction over raw-data operations only — the access
        pattern signal, undiluted by metadata hops."""
        return self.sequential_raw_ops / self.raw_ops if self.raw_ops else 0.0

    def observe(self, record: VfdIoRecord) -> None:
        """Fold one I/O record into the session statistics."""
        if record.op == "read":
            self.read_ops += 1
            self.read_bytes += record.nbytes
        else:
            self.write_ops += 1
            self.write_bytes += record.nbytes
        if record.access_type is IoClass.METADATA:
            self.metadata_ops += 1
        else:
            if (
                self._last_raw_end is not None
                and self._last_raw_end == record.offset
            ):
                self.sequential_raw_ops += 1
            elif self.raw_ops == 0:
                # The first raw op of a session counts as sequential: a
                # whole-dataset scan is one op and *is* the sequential case.
                self.sequential_raw_ops += 1
            self._last_raw_end = record.offset + record.nbytes
            self.raw_ops += 1
        if self._last_end is not None and self._last_end == record.offset:
            self.sequential_ops += 1
        self._last_end = record.offset + record.nbytes
        if record.data_object and record.data_object not in self.data_objects:
            self.data_objects.append(record.data_object)

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "file": self.file,
            "open_time": self.open_time,
            "close_time": self.close_time,
            "lifetime": self.lifetime,
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "sequential_ops": self.sequential_ops,
            "sequential_raw_ops": self.sequential_raw_ops,
            "metadata_ops": self.metadata_ops,
            "raw_ops": self.raw_ops,
            "data_objects": list(self.data_objects),
        }


class VfdTracer:
    """Collector shared by all :class:`TracingVFD` instances of one task.

    Args:
        clock: Simulated clock; tracer overhead is charged here.
        channel: The VOL↔VFD shared channel supplying task and object names.
        trace_io: When False, per-operation records are not kept — only the
            per-session aggregates — giving the constant storage overhead the
            paper describes for non-time-sensitive analyses.
        skip_ops: Number of initial I/O operations per file session to skip
            recording (the Input Parser's granularity knob).
        costs: Modeled profiler costs.
        emit: Optional live-event sink (``repro.monitor`` bus publish);
            when set, every low-level operation is also published as a
            :class:`~repro.monitor.events.VfdOp` event, with ``recorded``
            marking whether it entered the saved per-op trace.
    """

    def __init__(
        self,
        clock: SimClock,
        channel: VolVfdChannel,
        trace_io: bool = True,
        skip_ops: int = 0,
        costs: TracerCosts = TracerCosts(),
        emit: Optional[Callable] = None,
    ) -> None:
        if skip_ops < 0:
            raise ValueError("skip_ops must be non-negative")
        self.clock = clock
        self.channel = channel
        self.trace_io = trace_io
        self.skip_ops = skip_ops
        self.costs = costs
        self.emit = emit
        self._VfdOp = None
        if emit is not None:
            # Safe only at runtime with a live sink (the monitor package
            # is fully imported by whoever built the sink); a module-level
            # import would cycle back through repro.monitor.  Bound once
            # here to keep the per-op path free of import-system lookups.
            from repro.monitor.events import VfdOp

            self._VfdOp = VfdOp
        self.records: List[VfdIoRecord] = []
        self.sessions: List[FileSession] = []
        self._open_sessions: Dict[str, FileSession] = {}
        self._session_op_seen: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def on_open(self, path: str) -> None:
        session = FileSession(
            task=self.channel.current_task, file=path, open_time=self.clock.now
        )
        self._open_sessions[path] = session
        self._session_op_seen[path] = 0
        self.sessions.append(session)
        self.clock.advance(self.costs.per_session_event, ACCESS_TRACKER_ACCOUNT)

    def on_close(self, path: str) -> None:
        session = self._open_sessions.pop(path, None)
        if session is not None:
            session.close_time = self.clock.now
        self._session_op_seen.pop(path, None)
        self.clock.advance(self.costs.per_session_event, ACCESS_TRACKER_ACCOUNT)

    # ------------------------------------------------------------------
    # Per-operation tracing
    # ------------------------------------------------------------------
    def on_io(
        self,
        path: str,
        op: str,
        offset: int,
        nbytes: int,
        start: float,
        duration: float,
        io_class: IoClass,
    ) -> None:
        record = VfdIoRecord(
            task=self.channel.current_task,
            file=path,
            op=op,
            offset=offset,
            nbytes=nbytes,
            start=start,
            duration=duration,
            access_type=io_class,
            data_object=self.channel.current_object,
        )
        session = self._open_sessions.get(path)
        if session is not None:
            session.observe(record)
        seen = self._session_op_seen.get(path, 0)
        self._session_op_seen[path] = seen + 1
        cost = self.costs.per_io_record + len(self.records) * self.costs.per_record_growth
        recorded = self.trace_io and seen >= self.skip_ops
        if recorded:
            self.records.append(record)
        self.clock.advance(cost, ACCESS_TRACKER_ACCOUNT)
        if self.emit is not None:
            self.emit(self._VfdOp(
                time=self.clock.now, task=record.task, file=path, op=op,
                offset=offset, nbytes=nbytes, start=start,
                duration=duration, io_class=io_class,
                data_object=record.data_object, recorded=recorded))

    # ------------------------------------------------------------------
    # Post-processing helpers
    # ------------------------------------------------------------------
    def records_for(self, path: str) -> List[VfdIoRecord]:
        return [r for r in self.records if r.file == path]

    def region_histogram(self, path: str, page_size: int) -> Dict[int, int]:
        """Operation count per page-aligned region for one file."""
        hist: Dict[int, int] = {}
        for rec in self.records_for(path):
            first, last = rec.region(page_size)
            for page in range(first, last + 1):
                hist[page] = hist.get(page, 0) + 1
        return hist

    def serialize(self) -> bytes:
        """Trace as JSON bytes — the unit of the storage-overhead metric."""
        payload = {
            "sessions": [s.to_json_dict() for s in self.sessions],
            "records": [r.to_json_dict() for r in self.records],
        }
        return json.dumps(payload).encode()

    @property
    def storage_bytes(self) -> int:
        """Bytes of serialized (JSON interchange) trace output."""
        return len(self.serialize())

    @property
    def binary_trace_bytes(self) -> int:
        """Bytes of the compact on-disk trace — the storage-overhead
        metric of the paper's Figure 9d.  Measured by actually encoding
        the trace with :mod:`repro.mapper.codec`."""
        from repro.mapper.codec import vfd_trace_nbytes

        return vfd_trace_nbytes(self.records, self.sessions)


class TracingVFD(VirtualFileDriver):
    """DaYu's VFD profiler plugin: a transparent tracing wrapper."""

    def __init__(self, inner: VirtualFileDriver, tracer: VfdTracer) -> None:
        self._inner = inner
        self._tracer = tracer
        self._closed = False
        tracer.on_open(inner.path)

    @property
    def path(self) -> str:
        return self._inner.path

    @property
    def inner(self) -> VirtualFileDriver:
        return self._inner

    def read(self, addr: int, nbytes: int, io_class: IoClass) -> bytes:
        start = self._tracer.clock.now
        data = self._inner.read(addr, nbytes, io_class)
        self._tracer.on_io(
            self.path, "read", addr, len(data), start,
            self._tracer.clock.now - start, io_class,
        )
        return data

    def write(self, addr: int, data: bytes, io_class: IoClass) -> None:
        start = self._tracer.clock.now
        self._inner.write(addr, data, io_class)
        self._tracer.on_io(
            self.path, "write", addr, len(data), start,
            self._tracer.clock.now - start, io_class,
        )

    def get_eof(self) -> int:
        return self._inner.get_eof()

    def truncate(self, size: int) -> None:
        self._inner.truncate(size)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tracer.on_close(self.path)
            self._inner.close()
