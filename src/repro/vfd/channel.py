"""Shared-memory channel between the VOL and VFD profiling layers.

HDF5's abstraction makes direct communication between a VOL plugin and a
VFD plugin "inherently difficult"; DaYu bridges them with a small shared
memory region through which the VOL announces the data object currently
being accessed, so the VFD can tag the low-level I/O it observes (paper,
Section IV, "Characteristic (VOL-VFD) Mapper").

:class:`VolVfdChannel` reproduces that design: a tiny mutable slot holding
the current task name and a *stack* of current data objects.  A stack (not a
single slot) is needed because object operations nest — e.g. writing a
dataset may force a B-tree node flush that belongs to the same object, while
file-level metadata flushes happen with no object in scope.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

__all__ = ["VolVfdChannel"]


class VolVfdChannel:
    """Mutable rendez-vous point shared by the VOL and VFD profilers."""

    def __init__(self) -> None:
        self._task: Optional[str] = None
        self._objects: List[str] = []

    # ------------------------------------------------------------------
    # Task context (set by the workflow runner / application)
    # ------------------------------------------------------------------
    @property
    def current_task(self) -> Optional[str]:
        """Name of the task currently executing, or None outside any task."""
        return self._task

    def set_task(self, name: Optional[str]) -> None:
        """Announce the current task (the paper requires the launcher or
        application to inform DaYu of the current task)."""
        self._task = name

    # ------------------------------------------------------------------
    # Object context (set by the VOL around each object operation)
    # ------------------------------------------------------------------
    @property
    def current_object(self) -> Optional[str]:
        """Fully qualified name of the innermost data object in scope."""
        return self._objects[-1] if self._objects else None

    def push_object(self, name: str) -> None:
        self._objects.append(name)

    def pop_object(self) -> None:
        if not self._objects:
            raise RuntimeError("VolVfdChannel: object stack underflow")
        self._objects.pop()

    @contextmanager
    def object_scope(self, name: str) -> Iterator[None]:
        """Scope all nested VFD I/O to data object ``name``."""
        self.push_object(name)
        try:
            yield
        finally:
            self.pop_object()

    @property
    def depth(self) -> int:
        """Current object-scope nesting depth (0 outside any object)."""
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VolVfdChannel(task={self._task!r}, object={self.current_object!r})"
        )
