"""Deterministic fault injection for simulated workflow runs.

``repro.faults`` is the chaos plane of the simulator: a declarative,
seedable :class:`FaultSpec` (flaky/dead/slow devices, short I/O, node
deaths at scheduled times) executed by a :class:`FaultInjector` hooked
into the filesystem and cluster layers.  Everything is driven by the
simulated clock and one seeded RNG, so a faulty run replays bit-for-bit —
the property the CI determinism gate checks.

Typical use::

    from repro.faults import DeviceFault, FaultSpec, FaultInjector

    spec = FaultSpec(seed=7, device_faults=(
        DeviceFault("/pfs", "transient", rate=0.05),
    ))
    injector = FaultInjector(spec, cluster, emit=monitor.publish).arm()
    runner = WorkflowRunner(cluster, mapper, retry_policy=RetryPolicy(),
                            faults=injector)
    result = runner.run(workflow)
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import DeviceFault, FaultSpec, NodeFault

__all__ = ["DeviceFault", "NodeFault", "FaultSpec", "FaultInjector"]
