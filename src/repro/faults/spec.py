"""Declarative fault specifications.

A :class:`FaultSpec` is the complete, serializable description of every
fault a run will see — which devices misbehave, how, when, and which nodes
die.  Together with its ``seed`` it makes a faulty run *replayable*: two
runs of the same workflow under the same spec produce bit-identical
results, which is what lets the CI determinism gate compare two chaos runs
byte-for-byte.

Faults come in two families:

- :class:`DeviceFault` — attached to a path prefix (typically a mount
  prefix such as ``/pfs`` or ``/local/n1/nvme``).  ``kind`` selects the
  behavior:

  - ``"transient"`` — each matching I/O fails with
    :class:`~repro.storage.devices.DeviceError` with probability ``rate``
    (seeded; the classic retryable flaky-device fault);
  - ``"permanent"`` — every matching I/O in the window fails (a dead
    controller; retries on the same path keep failing until the window
    closes);
  - ``"short_io"`` — each matching I/O is cut short with probability
    ``rate`` and surfaces as :class:`~repro.posix.simfs.FsError`, the way
    a short ``read(2)``/``write(2)`` bubbles out of the VFD layer;
  - ``"slowdown"`` — the device's cost model is multiplied by ``factor``
    while the window is open (a straggler / sick disk; no errors).

- :class:`NodeFault` — kills the named node at simulated time ``at``;
  its node-local tiers become unreachable and schedulers stop placing
  tasks on it.

Windows are ``[start, end)`` on the simulated clock; ``end=None`` means
"until the end of the run" (serialized as JSON ``null``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["DeviceFault", "NodeFault", "FaultSpec"]

DEVICE_FAULT_KINDS = ("transient", "permanent", "short_io", "slowdown")
_OPS = ("read", "write", "both")


@dataclass(frozen=True)
class DeviceFault:
    """One misbehaving device (see module docstring for the kinds)."""

    path_prefix: str
    kind: str
    #: Per-operation failure probability (transient / short_io).
    rate: float = 0.0
    #: Cost multiplier (slowdown only).
    factor: float = 1.0
    #: Which operations the fault applies to: "read", "write" or "both".
    ops: str = "both"
    start: float = 0.0
    #: Window end on the sim clock; None = open-ended.
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.path_prefix.startswith("/"):
            raise ValueError(
                f"path_prefix must be absolute, got {self.path_prefix!r}")
        if self.kind not in DEVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{DEVICE_FAULT_KINDS}")
        if self.ops not in _OPS:
            raise ValueError(f"ops must be one of {_OPS}, got {self.ops!r}")
        if self.kind in ("transient", "short_io"):
            if not (0.0 < self.rate <= 1.0):
                raise ValueError(
                    f"{self.kind} fault needs 0 < rate <= 1, got {self.rate!r}")
        if self.kind == "slowdown" and not (self.factor >= 1.0):
            raise ValueError(
                f"slowdown fault needs factor >= 1, got {self.factor!r}")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must be after start (or None)")

    def matches_path(self, path: str) -> bool:
        p = self.path_prefix.rstrip("/") or "/"
        return path == p or path.startswith(p + "/" if p != "/" else "/")

    def matches_op(self, op: str) -> bool:
        return self.ops == "both" or self.ops == op

    def active_at(self, now: float) -> bool:
        return self.start <= now and (self.end is None or now < self.end)

    @property
    def window_end(self) -> float:
        return math.inf if self.end is None else self.end

    def to_json_dict(self) -> dict:
        return {
            "path_prefix": self.path_prefix,
            "kind": self.kind,
            "rate": self.rate,
            "factor": self.factor,
            "ops": self.ops,
            "start": self.start,
            "end": self.end,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "DeviceFault":
        return cls(
            path_prefix=d["path_prefix"],
            kind=d["kind"],
            rate=float(d.get("rate", 0.0)),
            factor=float(d.get("factor", 1.0)),
            ops=d.get("ops", "both"),
            start=float(d.get("start", 0.0)),
            end=None if d.get("end") is None else float(d["end"]),
        )


@dataclass(frozen=True)
class NodeFault:
    """Kill ``node`` at simulated time ``at``."""

    node: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("node failure time must be non-negative")

    def to_json_dict(self) -> dict:
        return {"node": self.node, "at": self.at}

    @classmethod
    def from_json_dict(cls, d: dict) -> "NodeFault":
        return cls(node=d["node"], at=float(d["at"]))


@dataclass(frozen=True)
class FaultSpec:
    """Everything the injector needs for one replayable faulty run."""

    seed: int = 0
    device_faults: Tuple[DeviceFault, ...] = field(default_factory=tuple)
    node_faults: Tuple[NodeFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Normalize lists to tuples so specs are hashable / frozen-safe.
        object.__setattr__(self, "device_faults", tuple(self.device_faults))
        object.__setattr__(self, "node_faults", tuple(self.node_faults))
        seen = set()
        for nf in self.node_faults:
            if nf.node in seen:
                raise ValueError(
                    f"node {nf.node!r} appears in node_faults twice")
            seen.add(nf.node)

    @property
    def empty(self) -> bool:
        return not self.device_faults and not self.node_faults

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "device_faults": [f.to_json_dict() for f in self.device_faults],
            "node_faults": [f.to_json_dict() for f in self.node_faults],
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "FaultSpec":
        return cls(
            seed=int(d.get("seed", 0)),
            device_faults=tuple(
                DeviceFault.from_json_dict(x)
                for x in d.get("device_faults", ())),
            node_faults=tuple(
                NodeFault.from_json_dict(x) for x in d.get("node_faults", ())),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2)

    @classmethod
    def loads(cls, text: str) -> "FaultSpec":
        return cls.from_json_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultSpec":
        """Read a spec from a host-filesystem JSON file (the CLI's
        ``--faults`` argument)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))
