"""The fault injector: deterministic execution of a :class:`FaultSpec`.

One :class:`FaultInjector` is armed on a cluster for the duration of a
run.  It hooks two places:

- **Data plane** — :meth:`on_io` is installed as
  ``SimFS.fault_injector`` and is called by ``pread``/``pwrite`` *before*
  any bytes move or costs accrue, so an injected failure is atomic: the
  operation either fully happens or raises with no partial effect on the
  store, the op log, or the clock.
- **Control plane** — :meth:`poll` is called by the workflow runner at
  stage/task/backoff boundaries (and by :meth:`on_io` itself).  It fires
  node faults whose time has come via :meth:`Cluster.fail_node` and keeps
  device slowdown factors in sync with their windows.

Determinism
-----------
All randomness comes from one ``random.Random(spec.seed)``.  A draw is
consumed **only** when a rate-based fault actually matches an operation
(path + op + window), and matching faults are evaluated in spec order —
so the stream of draws is a pure function of the spec and the workload's
operation sequence, and a fixed-seed run replays bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.faults.spec import DeviceFault, FaultSpec
from repro.posix.simfs import FsError
from repro.storage.devices import DeviceError, StorageDevice

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultSpec` against a cluster (see module docs).

    Args:
        spec: The declarative fault plan.
        cluster: The cluster to inject into.
        emit: Optional event sink (``monitor.publish``) for
            :class:`~repro.monitor.events.NodeFailed` events.
    """

    def __init__(
        self,
        spec: FaultSpec,
        cluster: Cluster,
        emit: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.spec = spec
        self.cluster = cluster
        self.emit = emit
        self._rng = random.Random(spec.seed)
        self._pending_nodes = sorted(spec.node_faults, key=lambda f: f.at)
        self._armed = False
        # Resolved lazily: a slowdown fault's prefix → its device.
        self._slow_devices: Dict[int, StorageDevice] = {}
        self._slowdowns = [f for f in spec.device_faults
                           if f.kind == "slowdown"]
        self._io_faults = [f for f in spec.device_faults
                           if f.kind != "slowdown"]
        #: Injected-error counts by fault kind (observability/tests).
        self.injected: Dict[str, int] = {
            "transient": 0, "permanent": 0, "short_io": 0, "node": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Install the data-plane hook on the cluster's filesystem."""
        existing = self.cluster.fs.fault_injector
        if existing is not None and existing is not self:
            raise RuntimeError("another fault injector is already armed")
        self.cluster.fs.fault_injector = self
        self._armed = True
        self.poll()
        return self

    def disarm(self) -> None:
        """Remove the hook and restore every slowed device."""
        if self.cluster.fs.fault_injector is self:
            self.cluster.fs.fault_injector = None
        for device in self._slow_devices.values():
            device.set_slowdown(1.0)
        self._armed = False

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Fire due node faults and refresh slowdown windows."""
        now = self.cluster.clock.now
        while self._pending_nodes and self._pending_nodes[0].at <= now:
            fault = self._pending_nodes.pop(0)
            if not self.cluster.is_alive(fault.node):
                continue
            # A declared fault plan may model total cluster death; the
            # schedulers surface that as NoAliveNodesError and the runner
            # aborts cleanly rather than the injector crashing mid-poll.
            self.cluster.fail_node(fault.node, force=True)
            self.injected["node"] += 1
            if self.emit is not None:
                from repro.monitor.events import NodeFailed

                self.emit(NodeFailed(time=now, task=None, node=fault.node))
        self._refresh_slowdowns(now)

    def _refresh_slowdowns(self, now: float) -> None:
        if not self._slowdowns:
            return
        # Compose all active windows per device multiplicatively.
        factors: Dict[int, float] = {}
        for i, fault in enumerate(self._slowdowns):
            device = self._device_of(i, fault)
            if device is None:
                continue
            key = id(device)
            factors.setdefault(key, 1.0)
            if fault.active_at(now):
                factors[key] *= fault.factor
        for i, fault in enumerate(self._slowdowns):
            device = self._slow_devices.get(i)
            if device is not None:
                device.set_slowdown(factors.get(id(device), 1.0))

    def _device_of(self, index: int, fault: DeviceFault):
        device = self._slow_devices.get(index)
        if device is None:
            try:
                device = self.cluster.fs.mount_for(fault.path_prefix).device
            except FsError:
                return None
            self._slow_devices[index] = device
        return device

    # ------------------------------------------------------------------
    # Data plane (called by SimFS before each pread/pwrite)
    # ------------------------------------------------------------------
    def on_io(self, op: str, path: str, offset: int, nbytes: int) -> None:
        """Evaluate the spec against one I/O; raise to fail it.

        Called before the store is touched, so a raised fault leaves the
        file, the op log, and the clock exactly as they were.
        """
        self.poll()
        # A node fault fired just now may have taken this path's mount
        # down with it.
        self.cluster.fs._check_reachable(path)
        now = self.cluster.clock.now
        for fault in self._io_faults:
            if not (fault.matches_op(op) and fault.active_at(now)
                    and fault.matches_path(path)):
                continue
            if fault.kind == "permanent":
                self.injected["permanent"] += 1
                raise DeviceError(
                    f"injected permanent device error: {op} {path!r} "
                    f"@{offset}+{nbytes}")
            # Rate-based faults consume exactly one draw per match, in
            # spec order — the determinism contract.
            draw = self._rng.random()
            if draw >= fault.rate:
                continue
            if fault.kind == "transient":
                self.injected["transient"] += 1
                raise DeviceError(
                    f"injected transient device error: {op} {path!r} "
                    f"@{offset}+{nbytes}")
            self.injected["short_io"] += 1
            short = max(nbytes // 2, 0)
            raise FsError(
                f"injected short {op}: {path!r} @{offset} transferred "
                f"{short}/{nbytes} bytes")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Injected-fault counts by kind (copy)."""
        return dict(self.injected)

    @property
    def pending_node_faults(self) -> List[str]:
        return [f.node for f in self._pending_nodes]
