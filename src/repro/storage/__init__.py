"""Simulated storage substrate.

The paper evaluates DaYu on two clusters (its Table III) whose nodes expose a
mix of node-local devices (NVMe, SATA SSD, HDD) and shared mounts (NFS,
BeeGFS).  This package provides first-order performance models of those
devices plus the byte-addressable stores and mounts the simulated POSIX
layer is built on.

Public surface:
    - :class:`~repro.storage.devices.DeviceSpec` /
      :class:`~repro.storage.devices.StorageDevice` — per-op cost model.
    - :data:`~repro.storage.devices.DEVICE_CATALOG` — calibrated devices.
    - :class:`~repro.storage.blockstore.BlockStore` — backing bytes.
    - :class:`~repro.storage.mount.Mount` — a named namespace bound to a
      device, either node-local or shared.
"""

from repro.storage.blockstore import BlockStore
from repro.storage.devices import (
    DEVICE_CATALOG,
    DeviceSpec,
    IoCounters,
    StorageDevice,
    make_device,
)
from repro.storage.mount import Mount

__all__ = [
    "BlockStore",
    "DEVICE_CATALOG",
    "DeviceSpec",
    "IoCounters",
    "StorageDevice",
    "Mount",
    "make_device",
]
