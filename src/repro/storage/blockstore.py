"""Byte-addressable backing store for simulated files.

A :class:`BlockStore` holds the actual bytes of one simulated file.  It is a
sparse, growable byte array: writes beyond the current end implicitly extend
the store (zero-filled), matching POSIX file semantics.  The store knows
nothing about cost — timing lives in the device model — but it does track
the file's *extent history* so tests can assert on physical layout
(fragmentation is a first-class subject of the paper).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["BlockStore"]


class BlockStore:
    """Sparse growable byte storage for one simulated file."""

    def __init__(self, initial_size: int = 0) -> None:
        if initial_size < 0:
            raise ValueError("initial_size must be non-negative")
        self._buf = bytearray(initial_size)
        self._write_extents: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Size
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current end-of-file offset in bytes."""
        return len(self._buf)

    def truncate(self, size: int) -> None:
        """Grow (zero-fill) or shrink the store to exactly ``size`` bytes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size < len(self._buf):
            del self._buf[size:]
        else:
            self._buf.extend(b"\x00" * (size - len(self._buf)))

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the store if needed."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        end = offset + len(data)
        if end > len(self._buf):
            self._buf.extend(b"\x00" * (end - len(self._buf)))
        self._buf[offset:end] = data
        if data:
            self._write_extents.append((offset, len(data)))

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read exactly ``nbytes`` starting at ``offset``.

        Reads crossing end-of-file return only the available bytes, like
        POSIX ``read(2)``; a read entirely past EOF returns ``b""``.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        return bytes(self._buf[offset : offset + nbytes])

    # ------------------------------------------------------------------
    # Layout introspection
    # ------------------------------------------------------------------
    @property
    def write_extents(self) -> List[Tuple[int, int]]:
        """Chronological list of (offset, length) for every write."""
        return list(self._write_extents)

    def coalesced_extents(self) -> List[Tuple[int, int]]:
        """Written regions merged into maximal disjoint (offset, length) runs.

        Useful for asserting how fragmented a file's physical layout is.
        """
        if not self._write_extents:
            return []
        spans = sorted((off, off + ln) for off, ln in self._write_extents)
        merged: List[Tuple[int, int]] = []
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                merged.append((cur_start, cur_end - cur_start))
                cur_start, cur_end = start, end
        merged.append((cur_start, cur_end - cur_start))
        return merged

    def __len__(self) -> int:
        return len(self._buf)
