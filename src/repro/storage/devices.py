"""First-order storage device performance models.

Each device charges a cost per I/O operation::

    cost = base_latency
         + nbytes / bandwidth
         + seek_penalty            (when the access is not sequential)
    cost *= contention(n)          (when n requesters share the device)

The parameters below are calibrated once, from publicly documented device
characteristics, and are used unchanged by *every* experiment in the
repository.  Absolute values are therefore a model, but relative behaviour —
many-small-ops vs. few-large-ops, node-local vs. shared parallel/network
filesystems, HDD seek sensitivity — matches the regimes the paper's
evaluation exercises.

Contention model
----------------
Shared mounts (NFS, BeeGFS, Lustre) serialize a fraction of concurrent
request streams; node-local flash sustains more parallelism.  We model this
with a simple scaling factor ``1 + share * (n - 1)`` where ``share`` is the
serialized fraction.  ``share = 1`` means fully serialized (a single HDD
spindle), ``share = 0`` means perfectly parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "DeviceSpec",
    "DeviceError",
    "StorageDevice",
    "IoCounters",
    "DEVICE_CATALOG",
    "make_device",
    "predicted_cost",
]


class DeviceError(OSError):
    """An injected (or modeled) device-level I/O failure.

    Subclasses ``OSError`` like :class:`~repro.posix.simfs.FsError`, so
    callers that already handle filesystem errors handle device faults
    too; kept separate so fault-injection tests can assert the layer."""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance parameters of a storage device.

    Attributes:
        name: Catalog name, e.g. ``"nvme"``.
        read_latency: Fixed per-read-op latency in seconds.
        write_latency: Fixed per-write-op latency in seconds.
        read_bandwidth: Sustained read bandwidth in bytes/second.
        write_bandwidth: Sustained write bandwidth in bytes/second.
        seek_penalty: Extra seconds charged when an access does not start
            where the previous access on the same file ended.  Dominant for
            spinning disks; near-zero for flash; models per-RPC overhead on
            network filesystems.
        contention_share: Fraction of concurrent streams that serialize
            (see module docstring).
        shared: True when the device backs a shared (multi-node) mount.
    """

    name: str
    read_latency: float
    write_latency: float
    read_bandwidth: float
    write_bandwidth: float
    seek_penalty: float = 0.0
    contention_share: float = 0.0
    shared: bool = False

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if min(self.read_latency, self.write_latency, self.seek_penalty) < 0:
            raise ValueError(f"{self.name}: latencies must be non-negative")
        if not (0.0 <= self.contention_share <= 1.0):
            raise ValueError(f"{self.name}: contention_share must be in [0, 1]")


#: Calibrated device catalog.  These are the storage options of the paper's
#: Table III plus a RAM tier used by the Hermes-like buffering middleware.
DEVICE_CATALOG: Dict[str, DeviceSpec] = {
    # Memory tier: ~100 ns access, tens of GB/s.
    "ram": DeviceSpec(
        name="ram",
        read_latency=1.0e-7,
        write_latency=1.0e-7,
        read_bandwidth=20.0 * GIB,
        write_bandwidth=16.0 * GIB,
        seek_penalty=0.0,
        contention_share=0.0,
    ),
    # Node-local NVMe SSD: ~80 us latency, ~3 GB/s read / 2 GB/s write.
    "nvme": DeviceSpec(
        name="nvme",
        read_latency=8.0e-5,
        write_latency=2.0e-5,
        read_bandwidth=3.0 * GIB,
        write_bandwidth=2.0 * GIB,
        seek_penalty=5.0e-6,
        contention_share=0.05,
    ),
    # Node-local SATA SSD: ~150 us latency, ~520/480 MB/s.
    "sata_ssd": DeviceSpec(
        name="sata_ssd",
        read_latency=1.5e-4,
        write_latency=6.0e-5,
        read_bandwidth=520.0 * MIB,
        write_bandwidth=480.0 * MIB,
        seek_penalty=2.0e-5,
        contention_share=0.15,
    ),
    # Node-local 7200 RPM HDD: ~4 ms access, ~160 MB/s, heavy seek cost.
    "hdd": DeviceSpec(
        name="hdd",
        read_latency=4.0e-3,
        write_latency=4.0e-3,
        read_bandwidth=160.0 * MIB,
        write_bandwidth=150.0 * MIB,
        seek_penalty=8.0e-3,
        contention_share=1.0,
    ),
    # Shared NFS over GbE: per-RPC ~400 us, ~110 MB/s, serializes badly.
    "nfs": DeviceSpec(
        name="nfs",
        read_latency=4.0e-4,
        write_latency=5.0e-4,
        read_bandwidth=110.0 * MIB,
        write_bandwidth=100.0 * MIB,
        seek_penalty=2.0e-4,
        contention_share=0.7,
        shared=True,
    ),
    # Shared BeeGFS parallel FS: ~250 us per op, ~1 GB/s aggregate,
    # parallel-friendly but still contended.
    "beegfs": DeviceSpec(
        name="beegfs",
        read_latency=2.5e-4,
        write_latency=3.0e-4,
        read_bandwidth=1.0 * GIB,
        write_bandwidth=900.0 * MIB,
        seek_penalty=1.0e-4,
        contention_share=0.35,
        shared=True,
    ),
    # Shared Lustre PFS: similar regime to BeeGFS, higher aggregate BW.
    "lustre": DeviceSpec(
        name="lustre",
        read_latency=2.0e-4,
        write_latency=2.5e-4,
        read_bandwidth=2.0 * GIB,
        write_bandwidth=1.6 * GIB,
        seek_penalty=1.0e-4,
        contention_share=0.3,
        shared=True,
    ),
}


@dataclass
class IoCounters:
    """Mutable per-device I/O statistics."""

    read_ops: int = 0
    write_ops: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    busy_seconds: float = 0.0
    seeks: int = 0

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def snapshot(self) -> "IoCounters":
        """An independent copy of the current counters."""
        return replace(self)

    def delta(self, earlier: "IoCounters") -> "IoCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return IoCounters(
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
            busy_seconds=self.busy_seconds - earlier.busy_seconds,
            seeks=self.seeks - earlier.seeks,
        )


class StorageDevice:
    """A stateful device instance applying the :class:`DeviceSpec` cost model.

    The device tracks the last byte touched per stream (file) to detect
    sequential access, counts operations and bytes, and applies a concurrency
    multiplier that callers (the workflow runner) may set while several
    processes hammer the device at once.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.counters = IoCounters()
        self._last_end: Dict[object, int] = {}
        self._concurrency: int = 1
        self._slowdown: float = 1.0

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """Number of request streams currently sharing the device."""
        return self._concurrency

    def set_concurrency(self, n: int) -> None:
        """Declare that ``n`` concurrent streams share the device (n >= 1)."""
        if n < 1:
            raise ValueError(f"concurrency must be >= 1, got {n}")
        self._concurrency = n

    def contention_factor(self, n: int | None = None) -> float:
        """Cost multiplier for ``n`` concurrent streams (default: current)."""
        n = self._concurrency if n is None else n
        return 1.0 + self.spec.contention_share * (n - 1)

    # ------------------------------------------------------------------
    # Degradation (fault injection)
    # ------------------------------------------------------------------
    @property
    def slowdown(self) -> float:
        """Extra cost multiplier while the device is degraded (>= 1)."""
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore, with 1.0) the device by a cost multiplier.

        Used by :mod:`repro.faults` to model stragglers and sick devices;
        composes multiplicatively with the contention factor."""
        if not (factor >= 1.0):
            raise ValueError(f"slowdown factor must be >= 1, got {factor!r}")
        self._slowdown = factor

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def read_cost(self, stream: object, offset: int, nbytes: int) -> float:
        """Seconds to read ``nbytes`` at ``offset`` on ``stream``; updates counters."""
        cost = self._op_cost(
            stream, offset, nbytes, self.spec.read_latency, self.spec.read_bandwidth
        )
        self.counters.read_ops += 1
        self.counters.read_bytes += nbytes
        self.counters.busy_seconds += cost
        return cost

    def write_cost(self, stream: object, offset: int, nbytes: int) -> float:
        """Seconds to write ``nbytes`` at ``offset`` on ``stream``; updates counters."""
        cost = self._op_cost(
            stream, offset, nbytes, self.spec.write_latency, self.spec.write_bandwidth
        )
        self.counters.write_ops += 1
        self.counters.write_bytes += nbytes
        self.counters.busy_seconds += cost
        return cost

    def _op_cost(
        self,
        stream: object,
        offset: int,
        nbytes: int,
        latency: float,
        bandwidth: float,
    ) -> float:
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        cost = latency + nbytes / bandwidth
        last = self._last_end.get(stream)
        if last is not None and last != offset:
            cost += self.spec.seek_penalty
            self.counters.seeks += 1
        self._last_end[stream] = offset + nbytes
        return cost * self.contention_factor() * self._slowdown

    def forget_stream(self, stream: object) -> None:
        """Drop sequentiality state for a closed stream."""
        self._last_end.pop(stream, None)

    def reset_counters(self) -> None:
        """Zero all accumulated statistics (sequentiality state is kept)."""
        self.counters = IoCounters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StorageDevice({self.spec.name!r}, ops={self.counters.total_ops})"


def predicted_cost(
    spec: DeviceSpec,
    *,
    read_ops: int = 0,
    read_bytes: int = 0,
    write_ops: int = 0,
    write_bytes: int = 0,
    concurrency: int = 1,
) -> float:
    """Stateless cost-model query: predicted seconds for a batch of I/O.

    The pre-run analogue of :meth:`StorageDevice.read_cost` /
    :meth:`write_cost` — same latency + bandwidth + contention math,
    but querying the :class:`DeviceSpec` directly, with no counters and
    no seek modeling (sequentiality is unknowable before a run; leaving
    it out keeps the model linear, which is what makes the cost laws —
    monotonicity in bytes, additivity over serial batches — provable).

    ``concurrency`` is the number of request streams predicted to share
    the device while this batch runs (the runner's per-stage concurrency
    declaration, applied ahead of time).
    """
    if min(read_ops, read_bytes, write_ops, write_bytes) < 0:
        raise ValueError("operation and byte counts must be non-negative")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    cost = (
        read_ops * spec.read_latency
        + read_bytes / spec.read_bandwidth
        + write_ops * spec.write_latency
        + write_bytes / spec.write_bandwidth
    )
    return cost * (1.0 + spec.contention_share * (concurrency - 1))


def make_device(name: str) -> StorageDevice:
    """Instantiate a catalog device by name.

    Raises:
        KeyError: If ``name`` is not in :data:`DEVICE_CATALOG`.
    """
    try:
        spec = DEVICE_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_CATALOG))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
    return StorageDevice(spec)
