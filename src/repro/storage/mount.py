"""Mount points: a namespace prefix bound to a storage device.

A simulated cluster node sees several mounts — a shared parallel-filesystem
mount visible from every node and node-local mounts (NVMe / SATA / HDD).
The :class:`~repro.posix.simfs.SimFS` routes each path to the mount with the
longest matching prefix, exactly like a real VFS mount table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.devices import StorageDevice

__all__ = ["Mount"]


@dataclass
class Mount:
    """A path prefix served by one device.

    Attributes:
        prefix: Absolute path prefix, normalized without a trailing slash
            (the root mount uses ``"/"``).
        device: The :class:`StorageDevice` whose cost model applies to all
            files under this prefix.
        node: Name of the node the mount is local to, or ``None`` for a
            shared mount reachable from every node.
    """

    prefix: str
    device: StorageDevice
    node: str | None = None

    def __post_init__(self) -> None:
        if not self.prefix.startswith("/"):
            raise ValueError(f"mount prefix must be absolute, got {self.prefix!r}")
        if self.prefix != "/" and self.prefix.endswith("/"):
            self.prefix = self.prefix.rstrip("/")

    @property
    def shared(self) -> bool:
        """True when the mount is visible from every node."""
        return self.node is None

    def matches(self, path: str) -> bool:
        """True when ``path`` lives under this mount."""
        if self.prefix == "/":
            return path.startswith("/")
        return path == self.prefix or path.startswith(self.prefix + "/")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "shared" if self.shared else f"node={self.node}"
        return f"Mount({self.prefix!r}, {self.device.spec.name}, {where})"
