"""File staging between storage tiers.

Staging copies a whole file between mounts — typically from a shared
parallel filesystem to node-local flash (*stage-in*) or back to slower
shared storage to free fast space (*stage-out*).  Costs are honest: the
copy pays the read cost on the source device and the write cost on the
destination device, in chunks of a realistic transfer size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.posix.simfs import SimFS

__all__ = ["stage_in", "stage_out", "rolling_stage_in", "COPY_CHUNK_BYTES"]

#: Transfer granularity of the staging copy loop (a typical cp buffer).
COPY_CHUNK_BYTES = 4 * 1024 * 1024


def _copy(fs: SimFS, src: str, dst: str) -> int:
    """Copy ``src`` to ``dst``; returns bytes copied."""
    src_fd = fs.open(src, "r")
    dst_fd = fs.open(dst, "w")
    total = 0
    try:
        offset = 0
        while True:
            block = fs.pread(src_fd, COPY_CHUNK_BYTES, offset)
            if not block:
                break
            fs.pwrite(dst_fd, block, offset)
            offset += len(block)
            total += len(block)
    finally:
        fs.close(src_fd)
        fs.close(dst_fd)
    return total


def stage_in(fs: SimFS, src: str, dst: str) -> str:
    """Copy ``src`` to the (faster/closer) ``dst``; returns ``dst``."""
    _copy(fs, src, dst)
    return dst


def stage_out(fs: SimFS, src: str, dst: str, remove_src: bool = True) -> str:
    """Copy ``src`` to (slower) ``dst``, freeing the fast tier by default."""
    _copy(fs, src, dst)
    if remove_src:
        fs.unlink(src)
    return dst


def rolling_stage_in(
    fs: SimFS, sources: Iterable[str], dst_dir: str
) -> Iterator[str]:
    """Stage files one at a time, yielding each staged path as it lands.

    The rolling strategy the paper recommends for sequentially-consumed
    inputs: instead of staging the whole input set up-front (peak space =
    everything), each file is staged just before its consumer needs it.
    """
    dst_dir = dst_dir.rstrip("/")
    for src in sources:
        name = src.rsplit("/", 1)[-1]
        yield stage_in(fs, src, f"{dst_dir}/{name}")
