"""Dataset consolidation: many small datasets → one large dataset.

The paper's PyFLEXTRKR fix: files with dozens of sub-500-byte datasets
cause excessive metadata access, so "consolidate these small datasets into
a single, larger one ... keeping track of the original file offsets within
the consolidated dataset".  :func:`consolidate_datasets` performs that
rewrite; :func:`read_consolidated` reads one logical member back through
the offset index with a single partial access.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.hdf5 import Dataset, Group, H5File, Selection
from repro.hdf5.errors import H5LayoutError, H5NameError
from repro.posix.simfs import SimFS

__all__ = ["consolidate_datasets", "read_consolidated", "CONSOLIDATED_NAME"]

#: Name of the merged dataset inside the consolidated file.
CONSOLIDATED_NAME = "consolidated"


def consolidate_datasets(fs: SimFS, src_path: str, dst_path: str) -> Dict[str, Tuple[int, int]]:
    """Rewrite ``src_path`` merging its root datasets into one.

    All root-level fixed-dtype datasets are flattened (as raw bytes) and
    packed back-to-back into a single contiguous ``consolidated`` dataset
    of dtype ``u1``; the offset index is stored as attributes
    (``<name>.offset`` / ``<name>.nbytes`` / ``<name>.dtype`` /
    ``<name>.shape``) plus a ``members`` listing.

    Returns:
        Mapping of member name → (byte offset, byte length).

    Raises:
        H5LayoutError: If the source holds variable-length datasets (their
            heap references cannot be byte-packed meaningfully).
    """
    with H5File(fs, src_path, "r") as src:
        members: List[Tuple[str, Dataset]] = [
            (d.name.lstrip("/"), d) for d in src.root.datasets()
        ]
        blobs: List[Tuple[str, bytes, str, Tuple[int, ...]]] = []
        for name, ds in members:
            if ds.dtype.is_vlen:
                raise H5LayoutError(
                    f"cannot consolidate variable-length dataset {name!r}"
                )
            arr = ds.read()
            blobs.append((name, arr.tobytes(), ds.dtype.code, ds.shape))

    index: Dict[str, Tuple[int, int]] = {}
    payload = bytearray()
    for name, raw, _, _ in blobs:
        index[name] = (len(payload), len(raw))
        payload.extend(raw)

    with H5File(fs, dst_path, "w") as dst:
        big = dst.create_dataset(
            CONSOLIDATED_NAME, shape=(max(len(payload), 1),), dtype="u1"
        )
        if payload:
            big.write(np.frombuffer(bytes(payload), dtype=np.uint8))
        big.attrs["members"] = ",".join(name for name, _, _, _ in blobs)
        for name, _, dtype_code, shape in blobs:
            offset, nbytes = index[name]
            big.attrs[f"{name}.offset"] = offset
            big.attrs[f"{name}.nbytes"] = nbytes
            big.attrs[f"{name}.dtype"] = dtype_code
            big.attrs[f"{name}.shape"] = np.asarray(shape, dtype=np.int64)
    return index


def read_consolidated(consolidated: Dataset, member: str) -> np.ndarray:
    """Read one logical member from a consolidated dataset.

    One partial contiguous access replaces the per-dataset header walk the
    scattered original required.
    """
    attrs = consolidated.attrs
    names = str(attrs.get("members", "")).split(",")
    if member not in names:
        raise H5NameError(f"no consolidated member named {member!r}")
    offset = int(attrs[f"{member}.offset"])
    nbytes = int(attrs[f"{member}.nbytes"])
    dtype_code = str(attrs[f"{member}.dtype"])
    shape = tuple(int(x) for x in np.atleast_1d(attrs[f"{member}.shape"]))
    raw = consolidated.read(Selection.hyperslab(((offset, nbytes),)))
    return np.frombuffer(raw.tobytes(), dtype=np.dtype(dtype_code)).reshape(shape)
