"""Asynchronous data staging.

The paper's DDMD optimization #4: "Finished data is asynchronously staged
from local storage to shared storage during the startup of the next
iteration, maximizing efficiency" — and its future work names asynchronous
I/O support generally.  :class:`AsyncStager` models that overlap on the
simulated clock:

- :meth:`submit` computes the transfer's cost *without* advancing the
  clock and schedules completion on a background timeline (transfers
  queue behind each other, like a single staging daemon);
- foreground work proceeds, advancing the clock normally;
- :meth:`wait` / :meth:`drain` advance the clock only if the transfer has
  not yet finished "in the background" — fully overlapped staging costs
  the critical path nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.middleware.stager import COPY_CHUNK_BYTES
from repro.posix.simfs import SimFS
from repro.simclock import SimClock

__all__ = ["AsyncStager", "AsyncTransfer"]

#: Clock account for time the foreground actually had to wait on staging.
ASYNC_WAIT_ACCOUNT = "async_stage_wait"


@dataclass
class AsyncTransfer:
    """Handle for one submitted background transfer."""

    src: str
    dst: str
    nbytes: int
    submitted_at: float
    completes_at: float
    done: bool = False

    @property
    def duration(self) -> float:
        return self.completes_at - self.submitted_at


class AsyncStager:
    """A single background staging daemon over the simulated filesystem.

    Transfers are byte-identical copies (the destination materializes at
    submit time so failure atomicity is out of scope), but their *cost* is
    charged to a background timeline rather than the caller's clock.
    """

    def __init__(self, fs: SimFS, clock: Optional[SimClock] = None) -> None:
        self.fs = fs
        self.clock = clock or fs.clock
        #: When the staging daemon is next free.
        self._daemon_free_at = 0.0
        self.transfers: List[AsyncTransfer] = []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _transfer_cost(self, src: str, dst: str, nbytes: int) -> float:
        """Modeled copy cost using the same device models as a foreground
        copy, without touching the devices' op counters twice."""
        src_dev = self.fs.mount_for(src).device
        dst_dev = self.fs.mount_for(dst).device
        cost = 0.0
        offset = 0
        while offset < nbytes:
            step = min(COPY_CHUNK_BYTES, nbytes - offset)
            cost += (src_dev.spec.read_latency + step / src_dev.spec.read_bandwidth)
            cost += (dst_dev.spec.write_latency + step / dst_dev.spec.write_bandwidth)
            offset += step
        return cost

    def submit(self, src: str, dst: str) -> AsyncTransfer:
        """Queue an asynchronous copy of ``src`` to ``dst``.

        Returns immediately (no clock advance); the copy completes on the
        background timeline after any transfers queued ahead of it.
        """
        size = self.fs.stat(src).size
        # Materialize the destination bytes now; the *time* is what's async.
        src_fd = self.fs.open(src, "r")
        data = bytearray()
        offset = 0
        while True:
            block = self.fs.store_of(src).read(offset, COPY_CHUNK_BYTES)
            if not block:
                break
            data.extend(block)
            offset += len(block)
        self.fs.close(src_fd)
        dst_fd = self.fs.open(dst, "w")
        self.fs.store_of(dst).write(0, bytes(data))
        self.fs.close(dst_fd)

        start = max(self.clock.now, self._daemon_free_at)
        cost = self._transfer_cost(src, dst, size)
        transfer = AsyncTransfer(
            src=src, dst=dst, nbytes=size,
            submitted_at=self.clock.now,
            completes_at=start + cost,
        )
        self._daemon_free_at = transfer.completes_at
        self.transfers.append(transfer)
        return transfer

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def wait(self, transfer: AsyncTransfer) -> float:
        """Block until ``transfer`` finishes; returns seconds actually
        waited (zero when the background copy already completed)."""
        waited = max(0.0, transfer.completes_at - self.clock.now)
        if waited > 0:
            self.clock.advance(waited, account=ASYNC_WAIT_ACCOUNT)
        transfer.done = True
        return waited

    def drain(self) -> float:
        """Wait for every outstanding transfer; returns total waited time."""
        waited = 0.0
        for transfer in self.transfers:
            if not transfer.done:
                waited += self.wait(transfer)
        return waited

    @property
    def pending(self) -> int:
        return sum(1 for t in self.transfers if not t.done)

    def overlap_savings(self) -> float:
        """Background seconds that never hit the critical path: total
        transfer time minus what callers actually waited."""
        total = sum(t.duration for t in self.transfers)
        waited = self.clock.account(ASYNC_WAIT_ACCOUNT)
        return max(0.0, total - waited)
