"""A Hermes-like tiered buffering middleware.

Hermes places hot data across a hierarchy of buffers — RAM, node-local
NVMe/SSD, then the parallel filesystem.  :class:`TieredCache` reproduces
the placement logic over the simulated filesystem: files are *placed* into
the fastest tier with room (evicting colder files downward when needed),
and consumers *resolve* a path to wherever its hottest replica lives.

Replicas carry a freshness token — the source's ``(size, mtime)`` at copy
time — and :meth:`place`/:meth:`resolve` revalidate against the live
``stat`` before handing a replica out, so a source rewritten after caching
is never served stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.middleware.stager import _copy
from repro.posix.simfs import SimFS

__all__ = ["BufferTier", "TieredCache"]

#: Source freshness token captured at copy time: (size, mtime).
_Token = Tuple[int, float]


@dataclass
class BufferTier:
    """One level of the buffering hierarchy.

    Attributes:
        name: Display name, e.g. ``"ram"``.
        prefix: Mount prefix files placed in this tier are copied under.
        capacity_bytes: Total bytes the tier may hold.
    """

    name: str
    prefix: str
    capacity_bytes: int
    used_bytes: int = 0
    #: original path -> replica path within this tier
    resident: Dict[str, str] = field(default_factory=dict)
    #: original path -> source (size, mtime) captured when the replica
    #: was made; travels with the replica through demotion.
    tokens: Dict[str, _Token] = field(default_factory=dict)

    def has_room(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= self.capacity_bytes


def _encode_path(path: str) -> str:
    """Flatten a path into a single filename, injectively.

    A plain ``"/" -> "_"`` substitution collides (``/pfs/a/b`` and
    ``/pfs/a_b`` map to the same replica, silently cross-wiring files), so
    escape the escape character first: ``_`` -> ``_u``, ``/`` -> ``_s``.
    Every distinct path gets a distinct replica name.
    """
    return path.strip("/").replace("_", "_u").replace("/", "_s")


class TieredCache:
    """Capacity-aware file placement across ordered buffer tiers.

    Args:
        fs: The simulated filesystem (tier prefixes must be mounted).
        tiers: Fastest tier first.
    """

    def __init__(self, fs: SimFS, tiers: List[BufferTier]) -> None:
        if not tiers:
            raise ValueError("at least one tier is required")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.fs = fs
        self.tiers = list(tiers)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _replica_path(self, tier: BufferTier, path: str) -> str:
        return f"{tier.prefix.rstrip('/')}/{_encode_path(path)}"

    def _source_token(self, path: str) -> _Token:
        st = self.fs.stat(path)
        return (st.size, st.mtime)

    def _fresh(self, tier: BufferTier, path: str) -> bool:
        """True when the tier's replica still matches the live source.

        A source deleted after caching leaves the replica as the last
        surviving version — that is not staleness."""
        if not self.fs.exists(path):
            return True
        return tier.tokens.get(path) == self._source_token(path)

    def _drop(self, tier: BufferTier, path: str) -> None:
        """Remove one tier's replica of ``path`` and its accounting."""
        replica = tier.resident.pop(path, None)
        tier.tokens.pop(path, None)
        if replica is not None:
            tier.used_bytes -= self.fs.stat(replica).size
            self.fs.unlink(replica)

    def _copy_in(self, tier: BufferTier, path: str, size: int) -> str:
        """Copy the source into ``tier``; never leaves a partial replica
        (a copy killed mid-transfer unlinks what it wrote)."""
        replica = self._replica_path(tier, path)
        token = self._source_token(path)
        try:
            _copy(self.fs, path, replica)
        except OSError:
            if self.fs.exists(replica):
                self.fs.unlink(replica)
            raise
        tier.resident[path] = replica
        tier.tokens[path] = token
        tier.used_bytes += size
        return replica

    def place(self, path: str, tier_name: Optional[str] = None) -> str:
        """Copy ``path`` into the fastest tier with room (or a named tier).

        Returns the replica path.  A replica that already exists is
        revalidated against the source's live ``stat``: when the source
        was rewritten after caching, the stale replica is replaced (or
        evicted, when the new size no longer fits) instead of returned.
        When a specific tier is requested and lacks room, colder files are
        demoted to make space; if the file cannot fit at all, the original
        path is returned unchanged.
        """
        size = self.fs.stat(path).size
        candidates = (
            [t for t in self.tiers if t.name == tier_name]
            if tier_name
            else self.tiers
        )
        if tier_name and not candidates:
            raise KeyError(f"no tier named {tier_name!r}")
        for tier in candidates:
            if path in tier.resident:
                if self._fresh(tier, path):
                    return tier.resident[path]
                # Stale: the source changed after caching.  Drop the old
                # replica and fall through to normal placement with the
                # current size.
                self._drop(tier, path)
            if not tier.has_room(size) and tier_name:
                self._make_room(tier, size)
            if tier.has_room(size):
                return self._copy_in(tier, path, size)
        return path

    def _make_room(self, tier: BufferTier, nbytes: int) -> None:
        """Demote resident files (FIFO) to the next tier down until
        ``nbytes`` fit."""
        idx = self.tiers.index(tier)
        below = self.tiers[idx + 1] if idx + 1 < len(self.tiers) else None
        while not tier.has_room(nbytes) and tier.resident:
            victim, replica = next(iter(tier.resident.items()))
            size = self.fs.stat(replica).size
            if below is not None and below.has_room(size):
                demoted = self._replica_path(below, victim)
                _copy(self.fs, replica, demoted)
                below.resident[victim] = demoted
                # The freshness token describes the *source*, so it
                # travels with the replica unchanged.
                token = tier.tokens.get(victim)
                if token is not None:
                    below.tokens[victim] = token
                below.used_bytes += size
            self.fs.unlink(replica)
            del tier.resident[victim]
            tier.tokens.pop(victim, None)
            tier.used_bytes -= size

    # ------------------------------------------------------------------
    # Lookup / eviction
    # ------------------------------------------------------------------
    def resolve(self, path: str) -> str:
        """The fastest *fresh* replica of ``path``, or the original path.

        Stale replicas (source rewritten after caching) are evicted on
        sight rather than served.
        """
        for tier in self.tiers:
            replica = tier.resident.get(path)
            if replica is not None:
                if self._fresh(tier, path):
                    return replica
                self._drop(tier, path)
        return path

    def is_cached(self, path: str) -> bool:
        return any(path in t.resident for t in self.tiers)

    def evict(self, path: str) -> None:
        """Drop every replica of ``path`` from all tiers."""
        for tier in self.tiers:
            self._drop(tier, path)

    def utilization(self) -> Dict[str, float]:
        """Per-tier fraction of capacity in use."""
        return {
            t.name: (t.used_bytes / t.capacity_bytes if t.capacity_bytes else 0.0)
            for t in self.tiers
        }
