"""A Hermes-like tiered buffering middleware.

Hermes places hot data across a hierarchy of buffers — RAM, node-local
NVMe/SSD, then the parallel filesystem.  :class:`TieredCache` reproduces
the placement logic over the simulated filesystem: files are *placed* into
the fastest tier with room (evicting colder files downward when needed),
and consumers *resolve* a path to wherever its hottest replica lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.middleware.stager import _copy
from repro.posix.simfs import SimFS

__all__ = ["BufferTier", "TieredCache"]


@dataclass
class BufferTier:
    """One level of the buffering hierarchy.

    Attributes:
        name: Display name, e.g. ``"ram"``.
        prefix: Mount prefix files placed in this tier are copied under.
        capacity_bytes: Total bytes the tier may hold.
    """

    name: str
    prefix: str
    capacity_bytes: int
    used_bytes: int = 0
    #: original path -> replica path within this tier
    resident: Dict[str, str] = field(default_factory=dict)

    def has_room(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= self.capacity_bytes


class TieredCache:
    """Capacity-aware file placement across ordered buffer tiers.

    Args:
        fs: The simulated filesystem (tier prefixes must be mounted).
        tiers: Fastest tier first.
    """

    def __init__(self, fs: SimFS, tiers: List[BufferTier]) -> None:
        if not tiers:
            raise ValueError("at least one tier is required")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.fs = fs
        self.tiers = list(tiers)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _replica_path(self, tier: BufferTier, path: str) -> str:
        safe = path.strip("/").replace("/", "_")
        return f"{tier.prefix.rstrip('/')}/{safe}"

    def place(self, path: str, tier_name: Optional[str] = None) -> str:
        """Copy ``path`` into the fastest tier with room (or a named tier).

        Returns the replica path.  When a specific tier is requested and
        lacks room, colder files are demoted to make space; if the file
        cannot fit at all, the original path is returned unchanged.
        """
        size = self.fs.stat(path).size
        candidates = (
            [t for t in self.tiers if t.name == tier_name]
            if tier_name
            else self.tiers
        )
        if tier_name and not candidates:
            raise KeyError(f"no tier named {tier_name!r}")
        for tier in candidates:
            if path in tier.resident:
                return tier.resident[path]
            if not tier.has_room(size) and tier_name:
                self._make_room(tier, size)
            if tier.has_room(size):
                replica = self._replica_path(tier, path)
                _copy(self.fs, path, replica)
                tier.resident[path] = replica
                tier.used_bytes += size
                return replica
        return path

    def _make_room(self, tier: BufferTier, nbytes: int) -> None:
        """Demote resident files (FIFO) to the next tier down until
        ``nbytes`` fit."""
        idx = self.tiers.index(tier)
        below = self.tiers[idx + 1] if idx + 1 < len(self.tiers) else None
        while not tier.has_room(nbytes) and tier.resident:
            victim, replica = next(iter(tier.resident.items()))
            size = self.fs.stat(replica).size
            if below is not None and below.has_room(size):
                demoted = self._replica_path(below, victim)
                _copy(self.fs, replica, demoted)
                below.resident[victim] = demoted
                below.used_bytes += size
            self.fs.unlink(replica)
            del tier.resident[victim]
            tier.used_bytes -= size

    # ------------------------------------------------------------------
    # Lookup / eviction
    # ------------------------------------------------------------------
    def resolve(self, path: str) -> str:
        """The fastest replica of ``path``, or the original path."""
        for tier in self.tiers:
            replica = tier.resident.get(path)
            if replica is not None:
                return replica
        return path

    def is_cached(self, path: str) -> bool:
        return any(path in t.resident for t in self.tiers)

    def evict(self, path: str) -> None:
        """Drop every replica of ``path`` from all tiers."""
        for tier in self.tiers:
            replica = tier.resident.pop(path, None)
            if replica is not None:
                tier.used_bytes -= self.fs.stat(replica).size
                self.fs.unlink(replica)

    def utilization(self) -> Dict[str, float]:
        """Per-tier fraction of capacity in use."""
        return {
            t.name: (t.used_bytes / t.capacity_bytes if t.capacity_bytes else 0.0)
            for t in self.tiers
        }
