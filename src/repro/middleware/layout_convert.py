"""Storage-layout conversion: rewrite a file's datasets chunked⇄contiguous.

The mechanism behind two of the paper's fixes:

- DDMD: "converts datasets to a contiguous layout, reducing both metadata
  overhead and I/O operations" (its Figure 13b);
- ARLDM: "modified the default contiguous layout to HDF5's chunked layout"
  for variable-length data (its Figure 13c).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.guidelines.layout import AccessPattern, advise_layout
from repro.hdf5 import Group, H5File
from repro.hdf5.errors import H5LayoutError
from repro.posix.simfs import SimFS

__all__ = ["convert_layout"]


def convert_layout(
    fs: SimFS,
    src_path: str,
    dst_path: str,
    layout: str = "auto",
    chunks_for: Optional[dict] = None,
    default_chunk_elements: int = 1024,
) -> int:
    """Rewrite ``src_path`` into ``dst_path`` with a new dataset layout.

    Args:
        fs: The simulated filesystem.
        src_path: Source file.
        dst_path: Destination file (created/truncated).
        layout: ``"contiguous"``, ``"chunked"``, or ``"auto"`` (apply the
            Section III-A.4 layout advisor per dataset).
        chunks_for: Optional per-dataset chunk shapes
            (``{"/name": (n, ...)}``) overriding the default.
        default_chunk_elements: Chunk length (first axis) when chunking
            without an explicit shape.

    Returns:
        Number of datasets rewritten.
    """
    if layout not in ("contiguous", "chunked", "auto"):
        raise H5LayoutError(f"unknown target layout {layout!r}")
    chunks_for = chunks_for or {}
    count = 0
    with H5File(fs, src_path, "r") as src, H5File(fs, dst_path, "w") as dst:
        count = _convert_group(src.root, dst.root, layout, chunks_for,
                               default_chunk_elements)
    return count


def _convert_group(
    src: Group, dst: Group, layout: str, chunks_for: dict, default_chunk: int
) -> int:
    count = 0
    for name in src.keys():
        child = src[name]
        if isinstance(child, Group):
            count += _convert_group(
                child, dst.create_group(name), layout, chunks_for, default_chunk
            )
            continue
        target, chunk_shape = _target_for(child, layout, chunks_for, default_chunk)
        data = child.read()
        new = dst.create_dataset(
            name,
            shape=child.shape,
            dtype=child.dtype,
            layout=target,
            chunks=chunk_shape,
        )
        if child.size:
            new.write(data)
        for attr_name, attr_value in child.attrs.items():
            new.attrs[attr_name] = attr_value
        count += 1
    return count


def _target_for(
    ds, layout: str, chunks_for: dict, default_chunk: int
) -> Tuple[str, Optional[Tuple[int, ...]]]:
    if layout == "auto":
        advice = advise_layout(ds.dtype, ds.size, AccessPattern.SEQUENTIAL)
        target = advice.layout
        if target == "chunked":
            chunk_len = advice.chunk_elements or default_chunk
            return target, _chunk_shape(ds.shape, chunk_len)
        return target, None
    if layout == "chunked":
        explicit = chunks_for.get(ds.name)
        if explicit is not None:
            return "chunked", tuple(explicit)
        return "chunked", _chunk_shape(ds.shape, default_chunk)
    return "contiguous", None


def _chunk_shape(shape: Tuple[int, ...], chunk_len: int) -> Tuple[int, ...]:
    """Chunk along the first axis, full extent on the rest."""
    if not shape:
        return (1,)
    first = max(1, min(chunk_len, shape[0]))
    return (first,) + shape[1:]
