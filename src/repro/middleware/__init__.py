"""I/O middleware: the mechanisms behind DaYu's optimization guidelines.

The paper applies its guidelines through buffering middleware (Hermes) and
format rewrites.  This package provides simulated equivalents:

- :class:`~repro.middleware.cache.TieredCache` — Hermes-like multi-tier
  buffer (RAM → node-local flash → PFS) with capacity-aware placement.
- :mod:`~repro.middleware.stager` — stage-in / stage-out / rolling
  stage-in of whole files between mounts.
- :func:`~repro.middleware.consolidate.consolidate_datasets` — merge many
  small datasets into one large dataset plus an offset index (the paper's
  PyFLEXTRKR stage-9 fix).
- :func:`~repro.middleware.layout_convert.convert_layout` — rewrite a
  file's datasets with a different storage layout (the paper's DDMD and
  ARLDM fixes).
"""

from repro.middleware.async_stager import AsyncStager, AsyncTransfer
from repro.middleware.cache import BufferTier, TieredCache
from repro.middleware.consolidate import consolidate_datasets, read_consolidated
from repro.middleware.layout_convert import convert_layout
from repro.middleware.stager import rolling_stage_in, stage_in, stage_out

__all__ = [
    "AsyncStager",
    "AsyncTransfer",
    "BufferTier",
    "TieredCache",
    "stage_in",
    "stage_out",
    "rolling_stage_in",
    "consolidate_datasets",
    "read_consolidated",
    "convert_layout",
]
