"""Simulated POSIX I/O layer.

The lowest layer DaYu observes is POSIX I/O ("the low level (e.g. POSIX)
I/O behavior" of the paper's Table II).  :class:`~repro.posix.simfs.SimFS`
provides open/pread/pwrite/close semantics over the storage substrate,
charging every operation's cost to the simulated clock through the owning
mount's device model.
"""

from repro.posix.simfs import FileStat, OpRecord, SimFS

__all__ = ["SimFS", "FileStat", "OpRecord"]
