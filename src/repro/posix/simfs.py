"""A simulated POSIX filesystem with device-accurate operation costs.

:class:`SimFS` is the substrate every simulated file driver (VFD) runs on.
It provides a mount table, a flat path namespace per mount, file descriptors
with independent offsets, and positional I/O (``pread``/``pwrite``).  Every
data operation:

1. moves bytes in the file's :class:`~repro.storage.blockstore.BlockStore`;
2. charges the owning device's modeled cost to the shared
   :class:`~repro.simclock.SimClock` (account ``"posix_io"``); and
3. appends an :class:`OpRecord` to the filesystem's operation log.

The operation log is *ground truth* for the experiments: the paper's
Figure 13 reports "I/O times (sum of POSIX operations)", which is exactly
``sum(rec.cost for rec in fs.op_log)`` filtered by file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.simclock import SimClock
from repro.storage.blockstore import BlockStore
from repro.storage.devices import StorageDevice
from repro.storage.mount import Mount

__all__ = ["SimFS", "FileStat", "OpRecord", "FsError"]


class FsError(OSError):
    """Raised for simulated filesystem errors (missing files, bad fds...)."""


@dataclass(frozen=True)
class FileStat:
    """Subset of ``stat(2)`` results relevant to I/O analysis."""

    path: str
    size: int
    device: str
    #: Simulated time of the last content change (creation, write,
    #: truncate).  Lets caching layers revalidate replicas the way real
    #: middleware revalidates against ``st_mtime``.
    mtime: float = 0.0


@dataclass(frozen=True)
class OpRecord:
    """One logged POSIX-level operation.

    Attributes:
        op: ``"read"`` or ``"write"``.
        path: File the operation targeted.
        offset: Starting byte offset.
        nbytes: Bytes transferred.
        start: Simulated start time.
        cost: Modeled duration in seconds.
        device: Name of the serving device.
    """

    op: str
    path: str
    offset: int
    nbytes: int
    start: float
    cost: float
    device: str


@dataclass
class _OpenFile:
    path: str
    store: BlockStore
    device: StorageDevice
    offset: int = 0
    writable: bool = False


class SimFS:
    """Mount-aware simulated filesystem.

    Args:
        clock: Shared simulated clock all I/O costs are charged to.
        mounts: Initial mount table (more can be added with :meth:`add_mount`).
        log_ops: When False, the per-op log is suppressed (counters and
            timing still accrue) — used by overhead experiments that disable
            time-sensitive tracing.
    """

    IO_ACCOUNT = "posix_io"

    def __init__(
        self,
        clock: SimClock,
        mounts: Iterable[Mount] = (),
        log_ops: bool = True,
    ) -> None:
        self.clock = clock
        self.log_ops = log_ops
        self._mounts: List[Mount] = []
        self._files: Dict[str, BlockStore] = {}
        self._mtimes: Dict[str, float] = {}
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # reserve 0-2 like a real process
        self.op_log: List[OpRecord] = []
        #: Mount prefixes whose backing hardware is gone (node failure);
        #: opens and I/O under them raise :class:`FsError`.
        self._failed_prefixes: List[str] = []
        #: Optional :class:`repro.faults.FaultInjector`-shaped hook; when
        #: set, every ``pread``/``pwrite`` consults it *before* any bytes
        #: move, so injected failures never half-apply an operation.
        self.fault_injector = None
        for m in mounts:
            self.add_mount(m)

    # ------------------------------------------------------------------
    # Mount table
    # ------------------------------------------------------------------
    def add_mount(self, mount: Mount) -> None:
        """Register a mount; longest-prefix match wins on lookup."""
        if any(m.prefix == mount.prefix for m in self._mounts):
            raise ValueError(f"mount prefix {mount.prefix!r} already registered")
        self._mounts.append(mount)
        self._mounts.sort(key=lambda m: len(m.prefix), reverse=True)

    def mount_for(self, path: str) -> Mount:
        """The mount serving ``path`` (longest matching prefix)."""
        for m in self._mounts:
            if m.matches(path):
                return m
        raise FsError(f"no mount serves path {path!r}")

    @property
    def mounts(self) -> List[Mount]:
        return list(self._mounts)

    # ------------------------------------------------------------------
    # Mount failure (node loss)
    # ------------------------------------------------------------------
    def fail_mount(self, prefix: str) -> None:
        """Mark every path under ``prefix`` as unreachable.

        Models a node-local tier dying with its node: the namespace keeps
        the entries (so post-mortem ``stat``/``exists`` still answer, like
        a cached inode), but opens and data operations raise
        :class:`FsError`.  Idempotent."""
        if prefix not in self._failed_prefixes:
            self._failed_prefixes.append(prefix)

    def mount_failed(self, path: str) -> bool:
        """True when ``path`` lives under a failed mount prefix."""
        return any(
            path == p or path.startswith(p.rstrip("/") + "/")
            for p in self._failed_prefixes
        )

    def _check_reachable(self, path: str) -> None:
        if self._failed_prefixes and self.mount_failed(path):
            raise FsError(f"I/O error: {path!r} is on a failed mount "
                          "(node down)")

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, prefix: str) -> List[str]:
        """All file paths under ``prefix`` (sorted)."""
        if not prefix.endswith("/"):
            prefix = prefix + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def unlink(self, path: str) -> None:
        """Remove a file; open descriptors keep their store alive."""
        if path not in self._files:
            raise FsError(f"unlink: no such file {path!r}")
        del self._files[path]
        self._mtimes.pop(path, None)

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` to ``dst`` within the namespace."""
        if src not in self._files:
            raise FsError(f"rename: no such file {src!r}")
        self._files[dst] = self._files.pop(src)
        self._mtimes[dst] = self._mtimes.pop(src, 0.0)

    def stat(self, path: str) -> FileStat:
        store = self._files.get(path)
        if store is None:
            raise FsError(f"stat: no such file {path!r}")
        return FileStat(
            path=path,
            size=store.size,
            device=self.mount_for(path).device.spec.name,
            mtime=self._mtimes.get(path, 0.0),
        )

    def store_of(self, path: str) -> BlockStore:
        """Direct access to a file's backing store (for layout assertions)."""
        store = self._files.get(path)
        if store is None:
            raise FsError(f"no such file {path!r}")
        return store

    # ------------------------------------------------------------------
    # Descriptors
    # ------------------------------------------------------------------
    def open(self, path: str, mode: str = "r") -> int:
        """Open ``path`` and return a file descriptor.

        Modes: ``"r"`` read-only (file must exist), ``"r+"`` read/write
        (must exist), ``"w"`` create-or-truncate read/write, ``"x"``
        exclusive-create read/write, ``"a"`` append read/write.
        """
        mount = self.mount_for(path)
        self._check_reachable(path)
        store = self._files.get(path)
        if mode in ("r", "r+"):
            if store is None:
                raise FsError(f"open({mode}): no such file {path!r}")
        elif mode == "w":
            store = BlockStore()
            self._files[path] = store
            self._mtimes[path] = self.clock.now
        elif mode == "x":
            if store is not None:
                raise FsError(f"open(x): file exists {path!r}")
            store = BlockStore()
            self._files[path] = store
            self._mtimes[path] = self.clock.now
        elif mode == "a":
            if store is None:
                store = BlockStore()
                self._files[path] = store
                self._mtimes[path] = self.clock.now
        else:
            raise ValueError(f"unsupported mode {mode!r}")
        fd = self._next_fd
        self._next_fd += 1
        writable = mode != "r"
        offset = store.size if mode == "a" else 0
        self._fds[fd] = _OpenFile(
            path=path, store=store, device=mount.device, offset=offset, writable=writable
        )
        return fd

    def close(self, fd: int) -> None:
        of = self._fd(fd)
        of.device.forget_stream(of.path)
        del self._fds[fd]

    def _fd(self, fd: int) -> _OpenFile:
        of = self._fds.get(fd)
        if of is None:
            raise FsError(f"bad file descriptor {fd}")
        return of

    def fd_path(self, fd: int) -> str:
        return self._fd(fd).path

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def pread(self, fd: int, nbytes: int, offset: int) -> bytes:
        """Positional read; charges device cost and logs the operation."""
        of = self._fd(fd)
        self._check_reachable(of.path)
        if self.fault_injector is not None:
            self.fault_injector.on_io("read", of.path, offset, nbytes)
        data = of.store.read(offset, nbytes)
        self._account("read", of, offset, len(data))
        return data

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """Positional write; charges device cost and logs the operation."""
        of = self._fd(fd)
        if not of.writable:
            raise FsError(f"fd {fd} not opened for writing")
        self._check_reachable(of.path)
        if self.fault_injector is not None:
            self.fault_injector.on_io("write", of.path, offset, len(data))
        of.store.write(offset, data)
        self._account("write", of, offset, len(data))
        self._mtimes[of.path] = self.clock.now
        return len(data)

    def read(self, fd: int, nbytes: int) -> bytes:
        """Sequential read from the descriptor's current offset."""
        of = self._fd(fd)
        data = self.pread(fd, nbytes, of.offset)
        of.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        """Sequential write at the descriptor's current offset."""
        of = self._fd(fd)
        n = self.pwrite(fd, data, of.offset)
        of.offset += n
        return n

    def lseek(self, fd: int, offset: int) -> int:
        of = self._fd(fd)
        if offset < 0:
            raise FsError("cannot seek before start of file")
        of.offset = offset
        return offset

    def truncate(self, fd: int, size: int) -> None:
        of = self._fd(fd)
        if not of.writable:
            raise FsError(f"fd {fd} not opened for writing")
        self._check_reachable(of.path)
        of.store.truncate(size)
        self._mtimes[of.path] = self.clock.now

    def file_size(self, fd: int) -> int:
        return self._fd(fd).store.size

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account(self, op: str, of: _OpenFile, offset: int, nbytes: int) -> None:
        start = self.clock.now
        if op == "read":
            cost = of.device.read_cost(of.path, offset, nbytes)
        else:
            cost = of.device.write_cost(of.path, offset, nbytes)
        self.clock.advance(cost, account=self.IO_ACCOUNT)
        if self.log_ops:
            self.op_log.append(
                OpRecord(
                    op=op,
                    path=of.path,
                    offset=offset,
                    nbytes=nbytes,
                    start=start,
                    cost=cost,
                    device=of.device.spec.name,
                )
            )

    def io_time(self, path: str | None = None) -> float:
        """Sum of logged POSIX operation costs, optionally for one file."""
        return sum(r.cost for r in self.op_log if path is None or r.path == path)

    def op_count(self, path: str | None = None, op: str | None = None) -> int:
        """Number of logged operations, filterable by file and kind."""
        return sum(
            1
            for r in self.op_log
            if (path is None or r.path == path) and (op is None or r.op == op)
        )

    def clear_log(self) -> None:
        self.op_log.clear()
