"""``dayu-serve`` — run the DaYu ingest + query daemon.

Usage::

    dayu-serve RUNS_ROOT [--host H] [--port P] [--tokens tokens.json]
               [--quota-bytes N] [--quota-runs N] [--compact-after N]
               [--port-file PATH]

``--port 0`` (the default) binds an ephemeral port; the chosen port is
printed on the ``listening on`` line and, with ``--port-file``, written
atomically to a file so a supervisor (or the CI smoke job) can find it
without parsing stdout.  ``--tokens`` names a JSON object mapping
bearer token -> tenant; without it the server is single-tenant and
unauthenticated.  On SIGINT/SIGTERM the server stops accepting,
compacts every run, and exits 0 — and because every accepted upload is
already durable, ``kill -9`` loses nothing either.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.service.app import DayuService, ServiceConfig
from repro.service.store import TenantQuota

__all__ = ["serve_main", "build_config"]


def build_config(args: argparse.Namespace) -> ServiceConfig:
    tokens = {}
    if args.tokens:
        try:
            with open(args.tokens, "r", encoding="utf-8") as fh:
                tokens = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"dayu-serve: cannot read token map "
                             f"{args.tokens!r}: {exc}")
        if (not isinstance(tokens, dict)
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in tokens.items())):
            raise SystemExit(f"dayu-serve: token map {args.tokens!r} must "
                             "be a JSON object of token -> tenant strings")
    return ServiceConfig(
        root=args.root,
        tokens=tokens,
        default_tenant=args.default_tenant,
        quota=TenantQuota(max_bytes=args.quota_bytes,
                          max_runs=args.quota_runs),
        compact_after=args.compact_after,
        max_body_bytes=args.max_body_bytes,
    )


async def _serve(config: ServiceConfig, host: str, port: int,
                 port_file: Optional[str]) -> None:
    service = DayuService(config)
    bound_host, bound_port = await service.start(host, port)
    print(f"dayu-serve: listening on http://{bound_host}:{bound_port} "
          f"(root={config.root}, tenants="
          f"{'token-mapped' if config.tokens else config.default_tenant!r})",
          flush=True)
    if port_file:
        from repro.ioutil import atomic_write_text

        atomic_write_text(port_file, f"{bound_port}\n")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    await stop.wait()
    print("dayu-serve: shutting down (compacting runs)", flush=True)
    await service.stop(compact=True)


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dayu-serve",
        description="Serve DaYu trace ingest and analysis over HTTP.")
    parser.add_argument("root", help="directory for the durable run store")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at startup)")
    parser.add_argument("--tokens", default=None, metavar="FILE",
                        help="JSON file mapping bearer token -> tenant")
    parser.add_argument("--default-tenant", default="public",
                        help="tenant used when no token map is configured")
    parser.add_argument("--quota-bytes", type=int, default=None,
                        metavar="N", help="per-tenant stored-byte cap")
    parser.add_argument("--quota-runs", type=int, default=None,
                        metavar="N", help="per-tenant live-run cap")
    parser.add_argument("--compact-after", type=int, default=64, metavar="N",
                        help="auto-compact a run after N incoming uploads "
                             "(0 = only on request/shutdown)")
    parser.add_argument("--max-body-bytes", type=int,
                        default=64 * 1024 * 1024, metavar="N",
                        help="largest accepted upload body")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here (atomic)")
    args = parser.parse_args(argv)

    config = build_config(args)
    try:
        asyncio.run(_serve(config, args.host, args.port, args.port_file))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(serve_main())
