"""Per-run incremental analysis state for the query plane.

One :class:`RunState` per live run: it folds uploaded profiles into the
same incremental :class:`~repro.analyzer.graphs.GraphBuilder` the
offline analyzer and the PR 4 :class:`~repro.monitor.aggregate.LiveAggregator`
use, and memoizes the rendered query payloads (canonical FTG/SDG JSON,
lint findings JSON) between ingests so a hot ``GET`` is a dict lookup,
not a graph rebuild.

**Determinism.**  The offline reference pipeline — ``dayu-compact`` over
a trace directory, then ``dayu-analyze --graph-json --lint`` — orders
profiles by task start time (ties: sorted trace filename, i.e. task
name).  Upload *arrival* order under many concurrent clients is
nondeterministic, so the state orders profiles by the same total key
``(span.start, task)`` regardless of arrival: in-order arrivals extend
the fold incrementally (the common case — tasks finish roughly in start
order), while an out-of-order arrival marks the builders stale and the
next snapshot refolds from the sorted list.  Either way every query
observes the canonical order, which is what makes service-built graphs
and findings byte-identical to the offline pipeline for any seeded
interleaving of uploading clients.

Lint mirrors ``dayu-analyze --lint``: profiles decoded without
per-operation records, default :class:`~repro.lint.rules.LintConfig`,
findings serialized by :meth:`~repro.lint.engine.LintReport.to_json` —
with the tenant baseline applied first when one is installed (the
``dayu-lint --baseline`` semantics).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

from repro.analyzer.graphs import GraphBuilder

__all__ = ["RunState"]


def _key(profile) -> Tuple[float, str]:
    return (profile.span.start, profile.task)


class RunState:
    """Incrementally folded FTG/SDG + memoized query renderings."""

    def __init__(self, profiles: Optional[List] = None) -> None:
        #: Profiles in canonical (start, task) order.
        self.profiles: List = []
        self._keys: List[Tuple[float, str]] = []
        self.tasks: Set[str] = set()
        self._ftg = GraphBuilder("ftg")
        self._sdg = GraphBuilder("sdg")
        #: Leading profiles already folded into the builders.
        self._folded = 0
        #: Bumped on every ingest; keys the render memo.
        self.version = 0
        self._rendered: Dict[object, str] = {}
        if profiles:
            self.add_profiles(profiles)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_profiles(self, profiles) -> int:
        """Fold new profiles in; duplicate tasks are ignored (idempotent
        re-upload).  Returns the number actually added."""
        added = 0
        for profile in profiles:
            if profile.task in self.tasks:
                continue
            key = _key(profile)
            idx = bisect.bisect_left(self._keys, key)
            self._keys.insert(idx, key)
            self.profiles.insert(idx, profile)
            self.tasks.add(profile.task)
            if idx < self._folded:
                # Arrived out of canonical order behind the folded
                # prefix: the incremental fold no longer matches the
                # sorted sequence.  Refold lazily at next snapshot.
                self._ftg = GraphBuilder("ftg")
                self._sdg = GraphBuilder("sdg")
                self._folded = 0
            added += 1
        if added:
            self.version += 1
            self._rendered.clear()
        return added

    def _fold(self) -> None:
        for profile in self.profiles[self._folded:]:
            self._ftg.add_profile(profile)
            self._sdg.add_profile(profile)
        self._folded = len(self.profiles)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot_ftg(self):
        self._fold()
        return self._ftg.build(copy=True)

    def snapshot_sdg(self):
        self._fold()
        return self._sdg.build(copy=True)

    # ------------------------------------------------------------------
    # Rendered query payloads (memoized per version)
    # ------------------------------------------------------------------
    def graph_json(self, kind: str) -> str:
        """Canonical ``ftg``/``sdg`` JSON — byte-identical to
        ``dayu-analyze --graph-json`` over the same profiles."""
        cached = self._rendered.get(kind)
        if cached is None:
            from repro.analyzer.serialize import graph_to_json

            graph = (self.snapshot_ftg() if kind == "ftg"
                     else self.snapshot_sdg())
            cached = self._rendered[kind] = graph_to_json(graph) + "\n"
        return cached

    def findings_json(self, baseline: Optional[Set[str]] = None,
                      baseline_version: int = 0) -> str:
        """Lint report JSON — byte-identical to ``dayu-analyze --lint``'s
        ``lint.json`` (after tenant-baseline suppression, if any)."""
        memo = ("findings", baseline_version)
        cached = self._rendered.get(memo)
        if cached is None:
            from repro.lint import LintConfig, lint_profiles

            report = lint_profiles(self.profiles, LintConfig())
            if baseline:
                report = report.apply_baseline(baseline)
            cached = self._rendered[memo] = report.to_json()
        return cached

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The ``/runs`` row for this run."""
        return {
            "profiles": len(self.profiles),
            "tasks": sorted(self.tasks),
            "version": self.version,
        }
