"""``dayu-client`` — upload traces to and query a running ``dayu-serve``.

The Python surface is :class:`ServiceClient` (synchronous, one
keep-alive connection, stdlib ``http.client``); the CLI wraps it::

    dayu-client URL upload RUN TRACE...      # files or trace directories
    dayu-client URL runs
    dayu-client URL get RUN {ftg|sdg|findings|info} [--out FILE]
    dayu-client URL compact RUN
    dayu-client URL delete RUN
    dayu-client URL baseline [--set FILE]
    dayu-client URL metrics

``--token`` authenticates (sent as ``Authorization: Bearer``);
``--chunked`` streams uploads with chunked transfer-encoding instead of
``Content-Length``.  Errors follow the repo-wide exit-code table: bad
usage or unreadable inputs exit 2 with a one-line diagnosis, a server
rejection exits 1 with the server's typed error code.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceClientError", "client_main"]

_CHUNK = 64 * 1024


class ServiceClientError(Exception):
    """A non-2xx reply; carries the server's typed error."""

    def __init__(self, status: int, code: str, message: str,
                 details: Optional[dict] = None) -> None:
        super().__init__(f"[{status}] {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}


def _chunks(data: bytes) -> Iterator[bytes]:
    for off in range(0, len(data), _CHUNK):
        yield data[off:off + _CHUNK]


class ServiceClient:
    """Synchronous client over one keep-alive HTTP connection."""

    def __init__(self, host: str, port: int,
                 token: Optional[str] = None, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.token = token
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    @classmethod
    def from_url(cls, url: str, token: Optional[str] = None,
                 timeout: float = 30.0) -> "ServiceClient":
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs supported, "
                             f"got {url!r}")
        return cls(parts.hostname or "127.0.0.1", parts.port or 80,
                   token=token, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 chunked: bool = False) -> Tuple[int, bytes]:
        headers: Dict[str, str] = {}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        if chunked and body is not None:
            headers["Transfer-Encoding"] = "chunked"
            self._conn.request(method, path, body=_chunks(body),
                               headers=headers, encode_chunked=True)
        else:
            self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        payload = response.read()
        return response.status, payload

    def _json(self, method: str, path: str, body: Optional[bytes] = None,
              chunked: bool = False) -> dict:
        status, payload = self._request(method, path, body, chunked)
        if status >= 300:
            raise self._error(status, payload)
        return json.loads(payload)

    def _text(self, method: str, path: str) -> str:
        status, payload = self._request(method, path)
        if status >= 300:
            raise self._error(status, payload)
        return payload.decode("utf-8")

    @staticmethod
    def _error(status: int, payload: bytes) -> ServiceClientError:
        try:
            doc = json.loads(payload)
            return ServiceClientError(status, doc.get("error", "unknown"),
                                      doc.get("message", ""),
                                      doc.get("details"))
        except (ValueError, AttributeError):
            return ServiceClientError(status, "unknown",
                                      payload.decode("utf-8", "replace"))

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def upload(self, run: str, payload: bytes,
               chunked: bool = False) -> dict:
        """Upload one serialized trace (json/.dayu/.dayuc bytes)."""
        return self._json("POST", f"/runs/{run}/traces", payload,
                          chunked=chunked)

    def runs(self) -> dict:
        return self._json("GET", "/runs")

    def run_info(self, run: str) -> dict:
        return self._json("GET", f"/runs/{run}")

    def graph(self, run: str, kind: str) -> str:
        """Canonical ``ftg``/``sdg`` JSON text, exactly as served."""
        return self._text("GET", f"/runs/{run}/{kind}")

    def findings(self, run: str) -> str:
        return self._text("GET", f"/runs/{run}/findings")

    def compact(self, run: str) -> dict:
        return self._json("POST", f"/runs/{run}/compact")

    def delete(self, run: str) -> dict:
        return self._json("DELETE", f"/runs/{run}")

    def metrics(self) -> str:
        return self._text("GET", "/metrics")

    def baseline(self) -> str:
        return self._text("GET", "/baseline")

    def set_baseline(self, text: str) -> dict:
        return self._json("PUT", "/baseline", text.encode("utf-8"))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _collect_traces(specs: List[str]) -> List[Path]:
    from repro.mapper.persist import TRACE_SUFFIXES

    out: List[Path] = []
    for spec in specs:
        p = Path(spec)
        if p.is_dir():
            found = sorted(q for q in p.iterdir()
                           if q.suffix in TRACE_SUFFIXES)
            if not found:
                raise FileNotFoundError(
                    f"no saved profiles (*.json/*.dayu/*.dayuc) in {spec!r}")
            out.extend(found)
        elif p.is_file():
            out.append(p)
        else:
            raise FileNotFoundError(f"trace path {spec!r} does not exist")
    return out


def client_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dayu-client",
        description="Upload traces to and query a dayu-serve daemon.")
    parser.add_argument("url", help="service URL, e.g. http://127.0.0.1:8423")
    parser.add_argument("--token", default=None,
                        help="bearer token (selects the tenant)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_upload = sub.add_parser("upload", help="upload trace files or dirs")
    p_upload.add_argument("run")
    p_upload.add_argument("traces", nargs="+",
                          help="trace files or directories of traces")
    p_upload.add_argument("--chunked", action="store_true",
                          help="stream with chunked transfer-encoding")

    sub.add_parser("runs", help="list this tenant's runs")

    p_get = sub.add_parser("get", help="fetch a run artifact")
    p_get.add_argument("run")
    p_get.add_argument("kind", choices=["ftg", "sdg", "findings", "info"])
    p_get.add_argument("--out", default=None,
                       help="write to FILE (atomic) instead of stdout")

    p_compact = sub.add_parser("compact", help="compact a run's store")
    p_compact.add_argument("run")

    p_delete = sub.add_parser("delete", help="delete a run")
    p_delete.add_argument("run")

    p_base = sub.add_parser("baseline", help="get or set the lint baseline")
    p_base.add_argument("--set", dest="set_file", default=None,
                        metavar="FILE", help="install baseline from FILE")

    sub.add_parser("metrics", help="scrape /metrics")

    args = parser.parse_args(argv)

    try:
        client = ServiceClient.from_url(args.url, token=args.token)
    except ValueError as exc:
        print(f"dayu-client: {exc}", file=sys.stderr)
        return 2

    try:
        with client:
            return _run_command(client, args)
    except ServiceClientError as exc:
        print(f"dayu-client: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"dayu-client: cannot reach {args.url}: {exc}",
              file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"dayu-client: {exc}", file=sys.stderr)
        return 2


def _run_command(client: ServiceClient, args: argparse.Namespace) -> int:
    if args.command == "upload":
        paths = _collect_traces(args.traces)
        total = 0
        for path in paths:
            receipt = client.upload(args.run, path.read_bytes(),
                                    chunked=args.chunked)
            total += receipt["bytes"]
            print(f"uploaded {path.name}: seq={receipt['seq']} "
                  f"format={receipt['format']} "
                  f"profiles={len(receipt['profiles'])} "
                  f"added={receipt['added']}")
        print(f"done: {len(paths)} trace(s), {total} bytes")
        return 0
    if args.command == "runs":
        print(json.dumps(client.runs(), indent=2, sort_keys=True))
        return 0
    if args.command == "get":
        if args.kind == "info":
            text = json.dumps(client.run_info(args.run), indent=2,
                              sort_keys=True) + "\n"
        elif args.kind == "findings":
            text = client.findings(args.run)
        else:
            text = client.graph(args.run, args.kind)
        if args.out:
            from repro.ioutil import atomic_write_text

            atomic_write_text(args.out, text)
            print(f"wrote {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    if args.command == "compact":
        print(json.dumps(client.compact(args.run), indent=2, sort_keys=True))
        return 0
    if args.command == "delete":
        print(json.dumps(client.delete(args.run), indent=2, sort_keys=True))
        return 0
    if args.command == "baseline":
        if args.set_file:
            path = Path(args.set_file)
            if not path.is_file():
                raise FileNotFoundError(
                    f"baseline file {args.set_file!r} does not exist")
            result = client.set_baseline(path.read_text(encoding="utf-8"))
            print(f"installed baseline: {result['fingerprints']} "
                  "fingerprint(s)")
        else:
            sys.stdout.write(client.baseline())
        return 0
    if args.command == "metrics":
        sys.stdout.write(client.metrics())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(client_main())
