"""DaYu-as-a-service: streaming trace ingest + multi-tenant query plane.

See :mod:`repro.service.app` for the HTTP surface, and the CLIs:
``dayu-serve`` (:mod:`repro.service.cli`) runs the daemon,
``dayu-client`` (:mod:`repro.service.client`) uploads and queries.
"""

from repro.service.app import DayuService, ServiceConfig
from repro.service.errors import (
    AuthRequired,
    BadName,
    BadRequest,
    MalformedTrace,
    NotFound,
    PayloadTooLarge,
    QuotaExceeded,
    ServiceError,
    TruncatedTrace,
    UnknownRun,
)
from repro.service.state import RunState
from repro.service.store import RunStore, StoredTrace, TenantQuota

__all__ = [
    "DayuService",
    "ServiceConfig",
    "RunState",
    "RunStore",
    "StoredTrace",
    "TenantQuota",
    "ServiceError",
    "BadRequest",
    "TruncatedTrace",
    "MalformedTrace",
    "BadName",
    "AuthRequired",
    "NotFound",
    "UnknownRun",
    "QuotaExceeded",
    "PayloadTooLarge",
]
