"""The durable, multi-tenant run store behind ``dayu-serve``.

Disk layout, rooted at the service's ``--root`` directory::

    <root>/<tenant>/baseline              accepted-finding fingerprints
    <root>/<tenant>/runs/<run>/run.dayuc  compacted run file (atomic)
    <root>/<tenant>/runs/<run>/incoming/  one file per accepted upload
        000001.json / 000002.dayu / ...

Durability contract: an upload is written to ``incoming/`` with
:func:`repro.ioutil.atomic_write_bytes` *before* the HTTP 200 is sent,
so every acknowledged trace survives ``kill -9``.  A writer killed
mid-upload leaves only a ``.tmp-*`` dropping, which the startup scan
garbage-collects.  Compaction folds ``run.dayuc`` + ``incoming/`` into a
fresh ``run.dayuc`` via the same
:func:`~repro.mapper.columnar.compact_profiles` the ``dayu-compact`` CLI
uses (itself atomic), then deletes the absorbed incoming files — a crash
between the two steps only leaves traces that are *also* in the run
file, and :meth:`load_profiles` deduplicates by task on recovery, so a
restarted server rebuilds exactly the state it acknowledged.

Tenancy: every byte is namespaced under one tenant; quotas
(:class:`TenantQuota`) cap stored bytes and live runs per tenant, and
the per-tenant ``baseline`` file suppresses accepted lint findings the
same way ``dayu-lint --baseline`` does.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.ioutil import atomic_write_bytes, atomic_write_text, is_tmp_dropping
from repro.service.errors import BadName, QuotaExceeded, UnknownRun

__all__ = ["TenantQuota", "StoredTrace", "RunStore", "NAME_RE"]

#: Allowed tenant and run identifiers (also safe path components).
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Extension per sniffed wire format.
_EXT = {"json": ".json", "binary": ".dayu", "columnar": ".dayuc"}

#: The compacted run file inside a run directory.
RUN_FILE = "run.dayuc"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource caps (``None`` = unlimited)."""

    max_bytes: Optional[int] = None
    max_runs: Optional[int] = None


@dataclass(frozen=True)
class StoredTrace:
    """Receipt for one durably accepted upload."""

    tenant: str
    run: str
    seq: int
    format: str
    nbytes: int
    path: str


def _validate(name: str, what: str) -> str:
    if not NAME_RE.match(name or ""):
        raise BadName(f"bad {what} {name!r}: must match {NAME_RE.pattern}",
                      **{what: name})
    return name


class RunStore:
    """Filesystem-backed tenant/run trace storage with quotas.

    All methods are synchronous and are called from the service event
    loop between awaits (or from recovery before serving), so per-run
    sequence counters and byte accounting never race.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        default_quota: TenantQuota = TenantQuota(),
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        # tenant -> stored bytes (incoming + run files); kept incremental.
        self._bytes: Dict[str, int] = {}
        # (tenant, run) -> next incoming sequence number.
        self._seq: Dict[tuple, int] = {}
        # tenant -> baseline file version (bumped on set_baseline; lets
        # run states invalidate rendered findings caches).
        self._baseline_version: Dict[str, int] = {}
        self.scan()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def tenant_dir(self, tenant: str) -> Path:
        return self.root / _validate(tenant, "tenant")

    def run_dir(self, tenant: str, run: str) -> Path:
        return self.tenant_dir(tenant) / "runs" / _validate(run, "run")

    def incoming_dir(self, tenant: str, run: str) -> Path:
        return self.run_dir(tenant, run) / "incoming"

    def run_file(self, tenant: str, run: str) -> Path:
        return self.run_dir(tenant, run) / RUN_FILE

    # ------------------------------------------------------------------
    # Startup scan / recovery
    # ------------------------------------------------------------------
    def scan(self) -> None:
        """(Re)build byte and sequence accounting from disk.

        Garbage-collects ``.tmp-*`` droppings left by writers that died
        before their atomic rename; everything else is authoritative.
        """
        self._bytes.clear()
        self._seq.clear()
        for tenant in self.tenants():
            total = 0
            for run in self.runs(tenant):
                rdir = self.run_dir(tenant, run)
                run_file = rdir / RUN_FILE
                if run_file.exists():
                    total += run_file.stat().st_size
                max_seq = 0
                inc = rdir / "incoming"
                if inc.is_dir():
                    for p in sorted(inc.iterdir()):
                        if is_tmp_dropping(p.name):
                            p.unlink(missing_ok=True)
                            continue
                        total += p.stat().st_size
                        try:
                            max_seq = max(max_seq, int(p.stem))
                        except ValueError:
                            continue
                self._seq[(tenant, run)] = max_seq + 1
            self._bytes[tenant] = total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and NAME_RE.match(p.name))

    def runs(self, tenant: str) -> List[str]:
        runs = self.tenant_dir(tenant) / "runs"
        if not runs.is_dir():
            return []
        return sorted(p.name for p in runs.iterdir()
                      if p.is_dir() and NAME_RE.match(p.name))

    def bytes_used(self, tenant: str) -> int:
        return self._bytes.get(tenant, 0)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def incoming(self, tenant: str, run: str) -> List[Path]:
        inc = self.incoming_dir(tenant, run)
        if not inc.is_dir():
            return []
        return sorted(p for p in inc.iterdir()
                      if not is_tmp_dropping(p.name))

    def run_exists(self, tenant: str, run: str) -> bool:
        return self.run_dir(tenant, run).is_dir()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, tenant: str, run: str, payload: bytes,
               fmt: str) -> StoredTrace:
        """Durably accept one upload (already sniffed as ``fmt``).

        Enforces the tenant's quotas *before* touching disk and writes
        the incoming file atomically; when this returns, the trace
        survives any crash.
        """
        quota = self.quota_for(tenant)
        used = self.bytes_used(tenant)
        if quota.max_bytes is not None and used + len(payload) > quota.max_bytes:
            raise QuotaExceeded(
                f"tenant {tenant!r} byte quota exceeded: "
                f"{used} + {len(payload)} > {quota.max_bytes}",
                tenant=tenant, used_bytes=used, upload_bytes=len(payload),
                max_bytes=quota.max_bytes)
        new_run = not self.run_exists(tenant, run)
        if new_run and quota.max_runs is not None:
            n_runs = len(self.runs(tenant))
            if n_runs + 1 > quota.max_runs:
                raise QuotaExceeded(
                    f"tenant {tenant!r} run quota exceeded: "
                    f"{n_runs} + 1 > {quota.max_runs}",
                    tenant=tenant, runs=n_runs, max_runs=quota.max_runs)

        inc = self.incoming_dir(tenant, run)
        inc.mkdir(parents=True, exist_ok=True)
        seq = self._seq.get((tenant, run), 1)
        path = inc / f"{seq:06d}{_EXT[fmt]}"
        atomic_write_bytes(path, payload)
        self._seq[(tenant, run)] = seq + 1
        self._bytes[tenant] = used + len(payload)
        return StoredTrace(tenant=tenant, run=run, seq=seq, format=fmt,
                           nbytes=len(payload), path=str(path))

    # ------------------------------------------------------------------
    # Load / compact
    # ------------------------------------------------------------------
    def load_profiles(self, tenant: str, run: str,
                      with_io_records: bool = False) -> List:
        """Every profile of a run — compacted file plus incoming files —
        in the service's canonical total order: ``(start time, task)``.

        Each task counts once: the compacted copy wins over incoming
        files (covers a crash between compaction's rename and its
        incoming cleanup), and among incoming files the earliest
        sequence number wins (re-uploading a task is idempotent).
        """
        from repro.mapper.persist import load_profiles_path

        if not self.run_exists(tenant, run):
            raise UnknownRun(f"unknown run {run!r} for tenant {tenant!r}",
                             tenant=tenant, run=run)
        profiles: List = []
        seen_tasks: Set[str] = set()
        run_file = self.run_file(tenant, run)
        if run_file.exists():
            profiles = load_profiles_path(str(run_file),
                                          with_io_records=with_io_records)
            seen_tasks = {p.task for p in profiles}
        for path in self.incoming(tenant, run):
            for p in load_profiles_path(str(path),
                                        with_io_records=with_io_records):
                if p.task in seen_tasks:
                    continue
                seen_tasks.add(p.task)
                profiles.append(p)
        profiles.sort(key=lambda p: (p.span.start, p.task))
        return profiles

    def compact(self, tenant: str, run: str) -> int:
        """Fold incoming files into ``run.dayuc``; returns bytes written.

        The new run file is written atomically before any incoming file
        is removed, so a crash at any point loses nothing.  Returns 0 if
        there was nothing new to absorb.
        """
        from repro.mapper.columnar import compact_profiles

        incoming = self.incoming(tenant, run)
        if not incoming:
            return 0
        # Full fidelity: compaction must preserve per-op records for
        # byte-exact lint even though graph queries never read them.
        profiles = self.load_profiles(tenant, run, with_io_records=True)
        run_file = self.run_file(tenant, run)
        old = run_file.stat().st_size if run_file.exists() else 0
        nbytes = compact_profiles(profiles, str(run_file))
        freed = old
        for path in incoming:
            freed += path.stat().st_size
            path.unlink()
        self._bytes[tenant] = self.bytes_used(tenant) - freed + nbytes
        return nbytes

    def delete_run(self, tenant: str, run: str) -> int:
        """Remove a run and free its quota; returns bytes freed."""
        import shutil

        rdir = self.run_dir(tenant, run)
        if not rdir.is_dir():
            raise UnknownRun(f"unknown run {run!r} for tenant {tenant!r}",
                             tenant=tenant, run=run)
        freed = sum(p.stat().st_size for p in rdir.rglob("*") if p.is_file())
        shutil.rmtree(rdir)
        self._bytes[tenant] = max(self.bytes_used(tenant) - freed, 0)
        self._seq.pop((tenant, run), None)
        return freed

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baseline_path(self, tenant: str) -> Path:
        return self.tenant_dir(tenant) / "baseline"

    def baseline(self, tenant: str) -> Set[str]:
        """The tenant's accepted-finding fingerprints (empty when unset)."""
        from repro.lint.engine import parse_baseline

        path = self.baseline_path(tenant)
        if not path.exists():
            return set()
        return parse_baseline(path.read_text(encoding="utf-8"))

    def set_baseline(self, tenant: str, text: str) -> int:
        """Install a tenant baseline (``dayu-lint`` baseline format);
        returns the number of fingerprints accepted."""
        from repro.lint.engine import parse_baseline

        fingerprints = parse_baseline(text)
        self.tenant_dir(tenant).mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.baseline_path(tenant), text)
        self._baseline_version[tenant] = self.baseline_version(tenant) + 1
        return len(fingerprints)

    def baseline_version(self, tenant: str) -> int:
        return self._baseline_version.get(tenant, 0)
