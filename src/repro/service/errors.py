"""Typed service errors, mapped 1:1 onto HTTP responses.

Every failure the ingest/query plane can hand a client is a
:class:`ServiceError` subclass carrying a stable machine-readable
``code`` (the contract clients and tests match on — never the message
text), an HTTP status, and optional JSON-safe ``details``.  The HTTP
layer renders any raised ``ServiceError`` as::

    HTTP/1.1 <status> ...
    Content-Type: application/json

    {"error": "<code>", "message": "<human text>", "details": {...}}

so a truncated upload, a quota breach, and a bad token are all
distinguishable mechanically, not by parsing prose.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "ServiceError",
    "BadRequest",
    "TruncatedTrace",
    "MalformedTrace",
    "BadName",
    "AuthRequired",
    "UnknownRun",
    "NotFound",
    "QuotaExceeded",
    "PayloadTooLarge",
]


class ServiceError(Exception):
    """Base of every typed service failure."""

    status = 500
    code = "internal-error"

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, object] = details

    def to_json_dict(self) -> dict:
        return {"error": self.code, "message": self.message,
                "details": self.details}


class BadRequest(ServiceError):
    status = 400
    code = "bad-request"


class TruncatedTrace(BadRequest):
    """Upload too short to carry the four trace magic bytes.

    The streamed-body counterpart of
    :class:`repro.mapper.persist.UnknownTraceFormat`; ``details`` name
    the byte count so a client can tell an empty POST from a cut-off
    stream.
    """

    code = "unknown-trace-format"


class MalformedTrace(BadRequest):
    """Sniffed fine but failed to decode as the sniffed format."""

    code = "malformed-trace"


class BadName(BadRequest):
    """Run id (or tenant name) outside the allowed character set."""

    code = "bad-name"


class AuthRequired(ServiceError):
    status = 401
    code = "unauthorized"


class NotFound(ServiceError):
    status = 404
    code = "not-found"


class UnknownRun(NotFound):
    code = "unknown-run"


class QuotaExceeded(ServiceError):
    """Tenant byte or run-count quota would be exceeded."""

    status = 413
    code = "quota-exceeded"


class PayloadTooLarge(ServiceError):
    """Single upload larger than the service's body cap."""

    status = 413
    code = "payload-too-large"
