"""Async load generator for ``dayu-serve`` — the hammer behind
``benchmarks/bench_service.py`` and the CI ``service-smoke`` job.

Spawns N concurrent clients, each holding one keep-alive connection and
working through a deterministic share of (run, payload) upload jobs;
after every upload the client issues the configured mix of graph and
findings queries against the run it just touched.  Per-operation
wall-clock latencies are recorded and summarized as nearest-rank
percentiles so the benchmark can gate on sustained ingest throughput
and p99 query latency under real connection concurrency (the server is
single-event-loop, so this measures request pipelining and handler
cost, not GIL folklore).

The generator speaks minimal HTTP/1.1 directly over
``asyncio.open_connection`` — no dependency on the server's own parser,
which keeps it an honest counterparty.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LoadResult", "run_load", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadResult:
    """Aggregate outcome of one hammer session."""

    clients: int
    uploads: int
    queries: int
    errors: int
    duration_s: float
    ingest_bytes: int
    uploads_per_s: float
    ingest_mb_per_s: float
    upload_p50_ms: float
    upload_p99_ms: float
    query_p50_ms: float
    query_p99_ms: float

    def to_json_dict(self) -> dict:
        return {
            "clients": self.clients,
            "uploads": self.uploads,
            "queries": self.queries,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 6),
            "ingest_bytes": self.ingest_bytes,
            "uploads_per_s": round(self.uploads_per_s, 3),
            "ingest_mb_per_s": round(self.ingest_mb_per_s, 3),
            "upload_p50_ms": round(self.upload_p50_ms, 3),
            "upload_p99_ms": round(self.upload_p99_ms, 3),
            "query_p50_ms": round(self.query_p50_ms, 3),
            "query_p99_ms": round(self.query_p99_ms, 3),
        }


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, method: str, path: str,
                   headers: Dict[str, str],
                   body: bytes = b"") -> Tuple[int, bytes]:
    head = [f"{method} {path} HTTP/1.1", "Host: dayu"]
    head.extend(f"{k}: {v}" for k, v in headers.items())
    head.append(f"Content-Length: {len(body)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()

    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


async def _worker(host: str, port: int, jobs: List[Tuple[str, bytes]],
                  query_kinds: Sequence[str], token: Optional[str],
                  upload_lat: List[float], query_lat: List[float],
                  errors: List[int]) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    headers: Dict[str, str] = {}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    try:
        for run, payload in jobs:
            started = time.perf_counter()
            status, _ = await _request(reader, writer, "POST",
                                       f"/runs/{run}/traces", headers,
                                       payload)
            upload_lat.append(time.perf_counter() - started)
            if status != 200:
                errors[0] += 1
                continue
            for kind in query_kinds:
                started = time.perf_counter()
                status, _ = await _request(reader, writer, "GET",
                                           f"/runs/{run}/{kind}", headers)
                query_lat.append(time.perf_counter() - started)
                if status != 200:
                    errors[0] += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def run_load_async(host: str, port: int,
                         jobs: Sequence[Tuple[str, bytes]],
                         clients: int = 8,
                         query_kinds: Sequence[str] = ("ftg", "sdg",
                                                       "findings"),
                         token: Optional[str] = None) -> LoadResult:
    """Hammer the service with ``jobs`` spread round-robin over
    ``clients`` concurrent connections."""
    shares: List[List[Tuple[str, bytes]]] = [[] for _ in range(clients)]
    for i, job in enumerate(jobs):
        shares[i % clients].append(job)
    upload_lat: List[float] = []
    query_lat: List[float] = []
    errors = [0]
    started = time.perf_counter()
    await asyncio.gather(*(
        _worker(host, port, share, query_kinds, token,
                upload_lat, query_lat, errors)
        for share in shares if share))
    duration = time.perf_counter() - started
    ingest_bytes = sum(len(p) for _, p in jobs)
    return LoadResult(
        clients=clients,
        uploads=len(upload_lat),
        queries=len(query_lat),
        errors=errors[0],
        duration_s=duration,
        ingest_bytes=ingest_bytes,
        uploads_per_s=len(upload_lat) / duration if duration else 0.0,
        ingest_mb_per_s=(ingest_bytes / 1e6) / duration if duration else 0.0,
        upload_p50_ms=percentile(upload_lat, 50) * 1e3,
        upload_p99_ms=percentile(upload_lat, 99) * 1e3,
        query_p50_ms=percentile(query_lat, 50) * 1e3,
        query_p99_ms=percentile(query_lat, 99) * 1e3,
    )


def run_load(host: str, port: int, jobs: Sequence[Tuple[str, bytes]],
             clients: int = 8,
             query_kinds: Sequence[str] = ("ftg", "sdg", "findings"),
             token: Optional[str] = None) -> LoadResult:
    """Synchronous wrapper around :func:`run_load_async` for callers
    outside an event loop (benchmarks, CI)."""
    return asyncio.run(run_load_async(host, port, jobs, clients=clients,
                                      query_kinds=query_kinds, token=token))
