"""``repro.service`` — the DaYu ingest + query plane (stdlib-only).

A :class:`DayuService` is a long-running asyncio HTTP/1.1 server that
accepts streamed trace uploads from many concurrent clients, folds them
into per-run incremental :class:`~repro.service.state.RunState`
(the same :class:`~repro.analyzer.graphs.GraphBuilder` machinery the
offline analyzer uses), persists every accepted byte durably
(:class:`~repro.service.store.RunStore`), and serves the analysis back:

====== ============================ =======================================
method path                         meaning
====== ============================ =======================================
GET    ``/healthz``                 liveness (no auth)
GET    ``/metrics``                 Prometheus text exposition (no auth)
GET    ``/runs``                    this tenant's runs
GET    ``/runs/<run>``              one run's summary
POST   ``/runs/<run>/traces``       upload one trace (json/.dayu/.dayuc;
                                    ``Content-Length`` or chunked)
GET    ``/runs/<run>/ftg``          canonical FTG JSON
GET    ``/runs/<run>/sdg``          canonical SDG JSON
GET    ``/runs/<run>/findings``     lint report JSON (baseline-suppressed)
POST   ``/runs/<run>/compact``      fold incoming traces into run.dayuc
DELETE ``/runs/<run>``              drop the run, free its quota
GET    ``/baseline``                this tenant's lint baseline
PUT    ``/baseline``                install a lint baseline
====== ============================ =======================================

The wire format for uploads is exactly the on-disk trace format — JSON
interchange, the PR 1 row codec (``DYU1``), or the PR 6 columnar form
(``DYC1``, single trace or whole compacted run) — classified by
:func:`~repro.mapper.persist.sniff_trace_format` from the first four
bytes; a body too short to carry the magic is rejected with the typed
``unknown-trace-format`` error, a body that sniffs but does not decode
with ``malformed-trace``, and in neither case is quota charged or disk
touched.

Multi-tenancy: a bearer token (``Authorization: Bearer <t>`` or
``X-DaYu-Token: <t>``) maps to a tenant; every run, byte of quota, and
baseline is namespaced per tenant.  With no tokens configured the
service is single-tenant (``default_tenant``) and unauthenticated.

All state mutation happens synchronously between awaits on the single
event loop, so concurrent clients interleave only at request
boundaries; the canonical ``(start, task)`` profile order in
:class:`RunState` then makes every query byte-identical to the offline
``dayu-compact`` + ``dayu-analyze`` pipeline regardless of upload
interleaving.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mapper import columnar
from repro.mapper.persist import (
    UnknownTraceFormat,
    load_profile,
    sniff_trace_format,
)
from repro.monitor.export import MetricsRegistry
from repro.service.errors import (
    AuthRequired,
    BadRequest,
    MalformedTrace,
    NotFound,
    PayloadTooLarge,
    ServiceError,
    TruncatedTrace,
    UnknownRun,
)
from repro.service.state import RunState
from repro.service.store import RunStore, TenantQuota

__all__ = ["ServiceConfig", "DayuService"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Request-latency buckets: 100µs .. ~1.6s, powers of four.
_LATENCY_BUCKETS = (1e-4, 4e-4, 1.6e-3, 6.4e-3, 2.56e-2, 1.024e-1, 4.096e-1,
                    1.6384,)


@dataclass
class ServiceConfig:
    """Everything ``dayu-serve`` can be configured with."""

    root: str
    #: token -> tenant.  Empty = single-tenant, unauthenticated.
    tokens: Dict[str, str] = field(default_factory=dict)
    #: Tenant served when no tokens are configured.
    default_tenant: str = "public"
    #: Default per-tenant quota (None fields = unlimited).
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: Per-tenant quota overrides.
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: Auto-compact a run once this many incoming uploads accumulate
    #: (0 = compact only on explicit POST .../compact or shutdown).
    compact_after: int = 64
    #: Hard cap on one upload body.
    max_body_bytes: int = 64 * 1024 * 1024


class _Request:
    __slots__ = ("method", "path", "headers", "body", "close")

    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 body: bytes, close: bool) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.close = close


class DayuService:
    """The ingest + query plane over one :class:`RunStore` root.

    Use :meth:`start` / :meth:`stop` around an asyncio loop, or the
    ``dayu-serve`` CLI (:mod:`repro.service.cli`) as a daemon.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = RunStore(config.root, default_quota=config.quota,
                              quotas=config.quotas)
        #: (tenant, run) -> state; populated lazily from the store, so a
        #: restarted server recovers every durably accepted run.
        self._states: Dict[Tuple[str, str], RunState] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._build_metrics()
        self._routes = [
            (re.compile(r"^/healthz$"), {"GET": self._h_healthz}, False),
            (re.compile(r"^/metrics$"), {"GET": self._h_metrics}, False),
            (re.compile(r"^/runs$"), {"GET": self._h_runs}, True),
            (re.compile(r"^/runs/(?P<run>[^/]+)/traces$"),
             {"POST": self._h_upload}, True),
            (re.compile(r"^/runs/(?P<run>[^/]+)/(?P<kind>ftg|sdg)$"),
             {"GET": self._h_graph}, True),
            (re.compile(r"^/runs/(?P<run>[^/]+)/findings$"),
             {"GET": self._h_findings}, True),
            (re.compile(r"^/runs/(?P<run>[^/]+)/compact$"),
             {"POST": self._h_compact}, True),
            (re.compile(r"^/runs/(?P<run>[^/]+)$"),
             {"GET": self._h_run_info, "DELETE": self._h_delete}, True),
            (re.compile(r"^/baseline$"),
             {"GET": self._h_get_baseline, "PUT": self._h_put_baseline},
             True),
        ]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _build_metrics(self) -> None:
        m = MetricsRegistry()
        self.metrics = m
        self._m_requests = m.counter(
            "dayu_service_requests_total",
            "HTTP requests served, by route and status.",
            ("method", "route", "status"))
        self._m_latency = m.histogram(
            "dayu_service_request_seconds",
            "Wall-clock request latency by route.",
            ("route",), buckets=_LATENCY_BUCKETS)
        self._m_ingest_bytes = m.counter(
            "dayu_service_ingest_bytes_total",
            "Accepted upload bytes, by tenant.", ("tenant",))
        self._m_ingest_traces = m.counter(
            "dayu_service_ingest_traces_total",
            "Accepted trace uploads, by tenant.", ("tenant",))
        self._m_errors = m.counter(
            "dayu_service_errors_total",
            "Typed service errors, by error code.", ("code",))
        self._m_runs = m.gauge(
            "dayu_service_runs", "Live runs, by tenant.", ("tenant",))
        self._m_profiles = m.gauge(
            "dayu_service_profiles",
            "Profiles held in run states, by tenant.", ("tenant",))

    def _bump_gauges(self, tenant: str) -> None:
        self._m_runs.set(len(self.store.runs(tenant)), tenant=tenant)
        self._m_profiles.set(
            sum(len(s.profiles) for (t, _), s in self._states.items()
                if t == tenant),
            tenant=tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and serve; returns the actual (host, port) — pass
        ``port=0`` for an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_conn, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def stop(self, compact: bool = True) -> None:
        """Stop serving; with ``compact`` (default), fold every run's
        incoming files into its run file first (smallest durable form)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if compact:
            self.compact_all()

    def compact_all(self) -> int:
        """Compact every run of every tenant; returns runs compacted."""
        n = 0
        for tenant in self.store.tenants():
            for run in self.store.runs(tenant):
                if self.store.compact(tenant, run):
                    n += 1
        return n

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client went away mid-request
                except (ValueError, ServiceError) as exc:
                    # Unparseable request or oversized body: answer if we
                    # can, then drop the connection (framing is lost).
                    err = (exc if isinstance(exc, ServiceError)
                           else BadRequest(f"malformed request: {exc}"))
                    await self._respond(writer, err.status,
                                        json.dumps(err.to_json_dict()) + "\n",
                                        close=True)
                    break
                if request is None:
                    break
                status, body = self._dispatch(request)
                await self._respond(writer, status, body,
                                    close=request.close)
                if request.close:
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self,
                            reader: asyncio.StreamReader) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ValueError(f"bad request line {line!r}")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await self._read_body(reader, headers)
        close = headers.get("connection", "").lower() == "close"
        return _Request(method.upper(), target, headers, body, close)

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        cap = self.config.max_body_bytes
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks: List[bytes] = []
            total = 0
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.split(b";")[0].strip() or b"0", 16)
                except ValueError:
                    raise ValueError(f"bad chunk size {size_line!r}")
                if size == 0:
                    # Swallow trailers up to the final blank line.
                    while True:
                        trailer = await reader.readline()
                        if trailer in (b"\r\n", b"\n", b""):
                            break
                    break
                total += size
                if total > cap:
                    raise PayloadTooLarge(
                        f"chunked body exceeds {cap} bytes", max_bytes=cap)
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)  # trailing CRLF
            return b"".join(chunks)
        length = int(headers.get("content-length", "0") or "0")
        if length > cap:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds {cap}",
                max_bytes=cap, content_length=length)
        if length:
            return await reader.readexactly(length)
        return b""

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: str, content_type: str = "application/json",
                       close: bool = False) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, request: _Request) -> Tuple[int, str]:
        started = time.perf_counter()
        route_label = "unmatched"
        try:
            for pattern, methods, needs_auth in self._routes:
                match = pattern.match(request.path)
                if not match:
                    continue
                route_label = pattern.pattern
                handler = methods.get(request.method)
                if handler is None:
                    raise ServiceErrorWithStatus(
                        405, "method-not-allowed",
                        f"{request.method} not allowed on {request.path}")
                kwargs = match.groupdict()
                if needs_auth:
                    kwargs["tenant"] = self._authenticate(request.headers)
                result = handler(request, **kwargs)
                status, body = result if isinstance(result, tuple) \
                    else (200, result)
                if not isinstance(body, str):
                    body = json.dumps(body, indent=2, sort_keys=True) + "\n"
                return self._finish(request, route_label, started,
                                    status, body)
            raise NotFound(f"no such endpoint: "
                           f"{request.method} {request.path}")
        except ServiceError as exc:
            self._m_errors.inc(code=exc.code)
            body = json.dumps(exc.to_json_dict(), sort_keys=True) + "\n"
            return self._finish(request, route_label, started,
                                exc.status, body)
        except Exception as exc:  # pragma: no cover - defensive
            err = ServiceError(f"internal error: {exc!r}")
            self._m_errors.inc(code=err.code)
            body = json.dumps(err.to_json_dict(), sort_keys=True) + "\n"
            return self._finish(request, route_label, started, 500, body)

    def _finish(self, request: _Request, route: str, started: float,
                status: int, body: str) -> Tuple[int, str]:
        self._m_requests.inc(method=request.method, route=route,
                             status=str(status))
        self._m_latency.observe(time.perf_counter() - started, route=route)
        return status, body

    def _authenticate(self, headers: Dict[str, str]) -> str:
        if not self.config.tokens:
            return self.config.default_tenant
        token = headers.get("x-dayu-token", "")
        if not token:
            auth = headers.get("authorization", "")
            if auth.lower().startswith("bearer "):
                token = auth[7:].strip()
        if not token:
            raise AuthRequired("missing bearer token")
        tenant = self.config.tokens.get(token)
        if tenant is None:
            raise AuthRequired("unknown token")
        return tenant

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def _state(self, tenant: str, run: str,
               create: bool = False) -> RunState:
        key = (tenant, run)
        state = self._states.get(key)
        if state is None:
            if self.store.run_exists(tenant, run):
                state = RunState(self.store.load_profiles(tenant, run))
            elif create:
                state = RunState()
            else:
                raise UnknownRun(
                    f"unknown run {run!r} for tenant {tenant!r}",
                    tenant=tenant, run=run)
            self._states[key] = state
        return state

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _h_healthz(self, request: _Request):
        return {"status": "ok"}

    def _h_metrics(self, request: _Request):
        return 200, self.metrics.render_prometheus()

    def _h_runs(self, request: _Request, tenant: str):
        runs = []
        for run in self.store.runs(tenant):
            row = {"run": run, **self._state(tenant, run).summary()}
            runs.append(row)
        quota = self.store.quota_for(tenant)
        return {
            "tenant": tenant,
            "runs": runs,
            "bytes_used": self.store.bytes_used(tenant),
            "quota": {"max_bytes": quota.max_bytes,
                      "max_runs": quota.max_runs},
        }

    def _h_run_info(self, request: _Request, tenant: str, run: str):
        state = self._state(tenant, run)
        return {"run": run, **state.summary()}

    def _h_upload(self, request: _Request, tenant: str, run: str):
        self.store.run_dir(tenant, run)  # validate names before decoding
        payload = request.body
        try:
            fmt = sniff_trace_format(payload, source="<upload>")
        except UnknownTraceFormat:
            raise TruncatedTrace(
                f"{len(payload)} byte(s) is too short to be a DaYu trace "
                "(need at least 4 bytes of magic; empty or truncated "
                "upload?)", size=len(payload))
        try:
            if fmt == "columnar":
                profiles = columnar.decode_run(payload,
                                               with_io_records=False)
            else:
                profiles = [load_profile(payload, with_io_records=False)]
        except Exception as exc:
            raise MalformedTrace(
                f"payload sniffed as {fmt} but failed to decode: {exc}",
                format=fmt) from exc
        # Snapshot (or lazily recover) the state *before* the append
        # lands on disk, else the fold would see its own upload as a
        # pre-existing task and count it as a duplicate.
        key = (tenant, run)
        state = self._states.get(key)
        if state is None and self.store.run_exists(tenant, run):
            state = RunState(self.store.load_profiles(tenant, run))
        receipt = self.store.append(tenant, run, payload, fmt)
        if state is None:
            state = RunState()
        self._states[key] = state
        added = state.add_profiles(profiles)
        self._m_ingest_bytes.inc(len(payload), tenant=tenant)
        self._m_ingest_traces.inc(tenant=tenant)
        self._bump_gauges(tenant)
        if (self.config.compact_after
                and len(self.store.incoming(tenant, run))
                >= self.config.compact_after):
            self.store.compact(tenant, run)
        return {
            "run": run,
            "seq": receipt.seq,
            "format": fmt,
            "bytes": receipt.nbytes,
            "profiles": sorted(p.task for p in profiles),
            "added": added,
        }

    def _h_graph(self, request: _Request, tenant: str, run: str, kind: str):
        return 200, self._state(tenant, run).graph_json(kind)

    def _h_findings(self, request: _Request, tenant: str, run: str):
        state = self._state(tenant, run)
        return 200, state.findings_json(
            baseline=self.store.baseline(tenant),
            baseline_version=self.store.baseline_version(tenant))

    def _h_compact(self, request: _Request, tenant: str, run: str):
        if not self.store.run_exists(tenant, run):
            raise UnknownRun(f"unknown run {run!r} for tenant {tenant!r}",
                             tenant=tenant, run=run)
        nbytes = self.store.compact(tenant, run)
        return {"run": run, "compacted_bytes": nbytes,
                "bytes_used": self.store.bytes_used(tenant)}

    def _h_delete(self, request: _Request, tenant: str, run: str):
        freed = self.store.delete_run(tenant, run)
        self._states.pop((tenant, run), None)
        self._bump_gauges(tenant)
        return {"run": run, "freed_bytes": freed}

    def _h_get_baseline(self, request: _Request, tenant: str):
        path = self.store.baseline_path(tenant)
        text = path.read_text(encoding="utf-8") if path.exists() else ""
        return 200, text

    def _h_put_baseline(self, request: _Request, tenant: str):
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BadRequest(f"baseline must be UTF-8 text: {exc}")
        accepted = self.store.set_baseline(tenant, text)
        return {"fingerprints": accepted}


class ServiceErrorWithStatus(ServiceError):
    """Ad-hoc typed error with an explicit status/code (405 etc.)."""

    def __init__(self, status: int, code: str, message: str,
                 **details: object) -> None:
        super().__init__(message, **details)
        self.status = status
        self.code = code
