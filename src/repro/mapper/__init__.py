"""The Data Semantic Mapper — DaYu core component #1 (paper Section IV).

Connects the "what" (high-level semantics of data interactions, from the
VOL profiler) with the "how" (underlying I/O behaviour, from the VFD
profiler), per task:

- :class:`~repro.mapper.config.DaYuConfig` — the **Input Parser**: user
  configuration (statistics location, page size, ops to skip, I/O tracing
  on/off).
- :class:`~repro.mapper.mapper.DataSemanticMapper` — the per-task
  orchestration of both **Access Trackers** (VOL + VFD) and the
  **Characteristic Mapper** join.
- :class:`~repro.mapper.stats.DatasetIoStats` — the joined per-data-object
  I/O statistics (the numbers shown in the paper's Figure 7 pop-up).
- :class:`~repro.mapper.mapper.TaskProfile` — everything DaYu knows about
  one task, serializable for the offline Workflow Analyzer.
- :mod:`~repro.mapper.overhead` — overhead accounting (Figures 9 and 10).
- :mod:`~repro.mapper.codec` — the compact binary trace format (the
  storage form of Figure 9d; JSON remains the interchange form).
"""

from repro.mapper.codec import (
    BINARY_TRACE_SUFFIX,
    decode_profile,
    encode_profile,
    read_profile,
    write_profile,
)
from repro.mapper.config import DaYuConfig
from repro.mapper.mapper import DataSemanticMapper, TaskContext, TaskProfile
from repro.mapper.overhead import OverheadReport, overhead_report
from repro.mapper.persist import (
    load_profile,
    load_profile_path,
    load_profiles,
    load_profiles_from_dir,
    load_profiles_from_host_dir,
    profile_from_json_dict,
)
from repro.mapper.stats import FILE_METADATA_OBJECT, DatasetIoStats, map_characteristics

__all__ = [
    "DaYuConfig",
    "DataSemanticMapper",
    "TaskContext",
    "TaskProfile",
    "DatasetIoStats",
    "map_characteristics",
    "FILE_METADATA_OBJECT",
    "OverheadReport",
    "overhead_report",
    "profile_from_json_dict",
    "load_profile",
    "load_profile_path",
    "load_profiles",
    "load_profiles_from_dir",
    "load_profiles_from_host_dir",
    "BINARY_TRACE_SUFFIX",
    "encode_profile",
    "decode_profile",
    "write_profile",
    "read_profile",
]
