"""The Data Semantic Mapper — DaYu core component #1 (paper Section IV).

Connects the "what" (high-level semantics of data interactions, from the
VOL profiler) with the "how" (underlying I/O behaviour, from the VFD
profiler), per task:

- :class:`~repro.mapper.config.DaYuConfig` — the **Input Parser**: user
  configuration (statistics location, page size, ops to skip, I/O tracing
  on/off).
- :class:`~repro.mapper.mapper.DataSemanticMapper` — the per-task
  orchestration of both **Access Trackers** (VOL + VFD) and the
  **Characteristic Mapper** join.
- :class:`~repro.mapper.stats.DatasetIoStats` — the joined per-data-object
  I/O statistics (the numbers shown in the paper's Figure 7 pop-up).
- :class:`~repro.mapper.mapper.TaskProfile` — everything DaYu knows about
  one task, serializable for the offline Workflow Analyzer.
- :mod:`~repro.mapper.overhead` — overhead accounting (Figures 9 and 10).
- :mod:`~repro.mapper.codec` — the compact binary trace format (the
  storage form of Figure 9d; JSON remains the interchange form).
- :mod:`~repro.mapper.columnar` — the columnar analytics form (column
  chunks + page statistics behind a footer index; ``dayu-compact`` merges
  per-task traces into one run file).
"""

from repro.mapper.codec import (
    BINARY_TRACE_SUFFIX,
    decode_profile,
    encode_profile,
    read_profile,
    write_profile,
)
from repro.mapper.columnar import (
    COLUMNAR_TRACE_SUFFIX,
    RunReader,
    compact_profiles,
    decode_columnar,
    decode_run,
    encode_columnar,
    encode_run,
)
from repro.mapper.config import DaYuConfig
from repro.mapper.mapper import DataSemanticMapper, TaskContext, TaskProfile
from repro.mapper.overhead import OverheadReport, overhead_report
from repro.mapper.persist import (
    load_profile,
    load_profile_path,
    load_profiles,
    load_profiles_from_dir,
    load_profiles_from_host_dir,
    load_profiles_path,
    profile_from_json_dict,
    sniff_trace_format,
    UnknownTraceFormat,
)
from repro.mapper.stats import FILE_METADATA_OBJECT, DatasetIoStats, map_characteristics

__all__ = [
    "DaYuConfig",
    "DataSemanticMapper",
    "TaskContext",
    "TaskProfile",
    "DatasetIoStats",
    "map_characteristics",
    "FILE_METADATA_OBJECT",
    "OverheadReport",
    "overhead_report",
    "profile_from_json_dict",
    "load_profile",
    "load_profile_path",
    "load_profiles",
    "load_profiles_from_dir",
    "load_profiles_from_host_dir",
    "load_profiles_path",
    "sniff_trace_format",
    "UnknownTraceFormat",
    "BINARY_TRACE_SUFFIX",
    "encode_profile",
    "decode_profile",
    "write_profile",
    "read_profile",
    "COLUMNAR_TRACE_SUFFIX",
    "encode_columnar",
    "decode_columnar",
    "encode_run",
    "decode_run",
    "compact_profiles",
    "RunReader",
]
