"""Columnar trace storage — the ``.dayuc`` analytics form of task profiles.

The row codec (:mod:`repro.mapper.codec`) optimizes for *writing*: one
streaming frame per item, ideal for a tracer that produces records as the
task runs.  This module is the *analytics* form, built for the offline
reader that touches a run once per question: every
:class:`~repro.mapper.mapper.TaskProfile` field family — VFD per-op
records, file sessions, VOL object profiles, joined dataset stats — is
stored as struct-packed per-field **column chunks** behind a footer
index, parquet-style::

    MAGIC "DYC1"
    column chunk bytes ...        -- concatenated, addressed by the footer
    footer                        -- string dictionary + per-group,
                                     per-family, per-column chunk index
                                     with page statistics
    u64 footer length
    MAGIC "DYC1"

A reader parses the footer first, then seeks directly to the columns a
query needs; columns it never touches (the dominant per-operation record
arrays, say) cost nothing — not even the O(1) skip of the row format.
One file may hold many profiles (**groups**): ``dayu-compact`` merges a
run's per-task traces into a single sorted, footer-indexed run file so
opening an entire run is one ``open``/``mmap``.

Column encodings (chosen per chunk, recorded in the footer):

- ``FIXED``: width byte (1/2/4/8) + packed little-endian unsigned ints —
  bulk-decodable via ``numpy.frombuffer``.
- ``VARINT``: LEB128 stream, for chunks holding values ≥ 2**64.
- ``DELTA``: zigzag varint deltas from the previous value — run-friendly
  ids and monotonic offsets collapse to near-zero bytes.
- ``F64`` / ``OPTF64``: packed IEEE doubles (exact round-trip); the
  optional variant prefixes a presence bitmap.
- ``BYTES``: raw ``u8`` payload (operation/class flag columns).

Strings are interned once per *file* in a shared dictionary (id 0 is
``None``), so a compacted run stores each task/file/dataset name exactly
once no matter how many groups mention it.

**Page statistics.**  Every chunk's footer entry carries summary stats —
``min``/``max``/``sum``/``count`` for numeric columns, the distinct id
set for dictionary columns (capped; an overflow marker means "unknown")
— enabling predicate pushdown: :class:`GroupStatsView` /
:class:`RunStatsView` answer "could any row in this chunk satisfy rule
X?" without decoding the chunk, which is how
:meth:`~repro.analyzer.parallel.ParallelAnalyzer.lint_run` skips whole
rule×chunk evaluations (see ``LintRule.pushdown``).

**Bulk aggregation.**  :func:`build_graph_from_groups` feeds
:meth:`~repro.analyzer.graphs.GraphBuilder.add_stats_columns` straight
from the decoded stats columns — no :class:`DatasetIoStats` objects are
materialized — and produces graphs byte-identical to the row path's.
"""

from __future__ import annotations

import mmap
import struct
from dataclasses import dataclass, field
from io import BytesIO
from itertools import accumulate
from typing import (
    BinaryIO,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.mapper import codec
from repro.mapper.stats import DatasetIoStats
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_TRACE_SUFFIX",
    "is_columnar_trace",
    "encode_columnar",
    "decode_columnar",
    "write_run",
    "encode_run",
    "decode_run",
    "compact_profiles",
    "RunReader",
    "GroupReader",
    "StatsColumns",
    "ColumnStats",
    "GroupStatsView",
    "RunStatsView",
    "build_graph_from_groups",
]

COLUMNAR_MAGIC = b"DYC1"
#: File suffix used for columnar task-profile traces and compacted runs.
COLUMNAR_TRACE_SUFFIX = ".dayuc"

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")

# -- column encodings (footer `enc` byte) ------------------------------
_ENC_FIXED = 0
_ENC_VARINT = 1
_ENC_DELTA = 2
_ENC_F64 = 3
_ENC_OPTF64 = 4
_ENC_BYTES = 5

# -- page-stat kinds (footer `stat` byte) ------------------------------
_STAT_NONE = 0
_STAT_INT = 1
_STAT_FLOAT = 2
_STAT_OPTFLOAT = 3
_STAT_DISTINCT = 4
_STAT_DISTINCT_OVERFLOW = 5

#: Distinct-set page stats above this cardinality degrade to "unknown".
_DISTINCT_CAP = 512

_FIXED_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}

#: Column layout per field family.  Order is the wire order; the kind
#: selects extraction, encoding, and page-stat flavor.  ``*_flat``
#: columns hold the concatenation of per-row variable-length lists whose
#: lengths live in the preceding ``*_len`` column.
_COLUMNS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "objprofs": (
        ("task", "strid"),
        ("file", "strid"),
        ("object_name", "strid"),
        ("acquired", "f64"),
        ("released", "optf64"),
        ("open_count", "int"),
        ("shape_len", "int"),
        ("shape", "int_flat"),
        ("dtype", "strid"),
        ("layout", "strid"),
        ("nbytes", "int"),
        ("reads", "int"),
        ("writes", "int"),
        ("elements_read", "int"),
        ("elements_written", "int"),
    ),
    "sessions": (
        ("task", "strid"),
        ("file", "strid"),
        ("open_time", "f64"),
        ("close_time", "optf64"),
        ("read_ops", "int"),
        ("write_ops", "int"),
        ("read_bytes", "int"),
        ("write_bytes", "int"),
        ("sequential_ops", "int"),
        ("sequential_raw_ops", "int"),
        ("metadata_ops", "int"),
        ("raw_ops", "int"),
        ("data_objects_len", "int"),
        ("data_objects", "strid_flat"),
    ),
    "stats": (
        ("task", "strid"),
        ("file", "strid"),
        ("data_object", "strid"),
        ("reads", "int"),
        ("writes", "int"),
        ("bytes_read", "int"),
        ("bytes_written", "int"),
        ("data_ops", "int"),
        ("data_bytes", "int"),
        ("metadata_ops", "int"),
        ("metadata_bytes", "int"),
        ("io_time", "f64"),
        ("first_start", "optf64"),
        ("last_end", "optf64"),
        ("first_raw_op", "byte"),
        ("run_len", "int"),
        ("run_first", "int_delta"),
        ("run_span", "int_flat"),
        ("run_count", "int_flat"),
    ),
    "records": (
        ("task", "strid_delta"),
        ("file", "strid_delta"),
        ("data_object", "strid_delta"),
        ("flags", "byte"),
        ("offset", "int_delta"),
        ("nbytes", "int"),
        ("start", "f64"),
        ("duration", "f64"),
    ),
}

_FAMILY_ORDER = ("objprofs", "sessions", "stats", "records")
_COLUMN_INDEX = {
    family: {name: i for i, (name, _) in enumerate(cols)}
    for family, cols in _COLUMNS.items()
}


def is_columnar_trace(data: bytes) -> bool:
    """True when ``data`` starts with the columnar trace magic."""
    return data[:4] == COLUMNAR_MAGIC


# ----------------------------------------------------------------------
# Primitive encoders
# ----------------------------------------------------------------------
def _vu(out: bytearray, n: int) -> None:
    if n < 0:
        raise ValueError(f"cannot varint-encode negative value {n}")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_vu(buf, pos: int) -> Tuple[int, int]:
    shift = n = 0
    while True:
        b = buf[pos]
        pos += 1
        n |= (b & 0x7F) << shift
        if not b & 0x80:
            return n, pos
        shift += 7


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if not (z & 1) else -((z + 1) >> 1)


def _encode_ints(values: Sequence[int]) -> Tuple[int, bytes]:
    """FIXED when every value fits u64 (width chosen by the max), else
    a VARINT stream — the only encoding with unbounded range."""
    if not values:
        return _ENC_FIXED, b"\x01"
    m = max(values)
    if min(values) < 0:
        raise ValueError("int columns are unsigned")
    if m < 1 << 8:
        w = 1
    elif m < 1 << 16:
        w = 2
    elif m < 1 << 32:
        w = 4
    elif m < 1 << 64:
        w = 8
    else:
        out = bytearray()
        for v in values:
            _vu(out, v)
        return _ENC_VARINT, bytes(out)
    return _ENC_FIXED, bytes([w]) + np.asarray(
        values, dtype=_FIXED_DTYPES[w]).tobytes()


def _encode_delta(values: Sequence[int]) -> bytes:
    out = bytearray()
    prev = 0
    for v in values:
        _vu(out, _zigzag(v - prev))
        prev = v
    return bytes(out)


def _encode_optf64(values: Sequence[Optional[float]]) -> bytes:
    bitmap = bytearray((len(values) + 7) // 8)
    present: List[float] = []
    for i, v in enumerate(values):
        if v is not None:
            bitmap[i >> 3] |= 1 << (i & 7)
            present.append(v)
    return bytes(bitmap) + np.asarray(present, dtype="<f8").tobytes()


def _decode_ints(enc: int, buf: bytes, count: int) -> List[int]:
    if count == 0:
        return []
    if enc == _ENC_FIXED:
        w = buf[0]
        return np.frombuffer(buf, dtype=_FIXED_DTYPES[w], count=count,
                             offset=1).tolist()
    if enc == _ENC_VARINT:
        out, pos = [], 0
        for _ in range(count):
            v, pos = _read_vu(buf, pos)
            out.append(v)
        return out
    if enc == _ENC_DELTA:
        deltas, pos = [], 0
        for _ in range(count):
            z, pos = _read_vu(buf, pos)
            deltas.append(_unzigzag(z))
        return list(accumulate(deltas))
    raise ValueError(f"corrupt columnar trace: int column encoding {enc}")


def _decode_f64(buf: bytes, count: int) -> List[float]:
    return np.frombuffer(buf, dtype="<f8", count=count).tolist()


def _decode_optf64(buf: bytes, count: int) -> List[Optional[float]]:
    nbits = (count + 7) // 8
    bitmap = buf[:nbits]
    values = iter(np.frombuffer(buf, dtype="<f8",
                                offset=nbits,
                                count=(len(buf) - nbits) // 8).tolist())
    return [next(values) if bitmap[i >> 3] & (1 << (i & 7)) else None
            for i in range(count)]


# ----------------------------------------------------------------------
# Page statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnStats:
    """Footer page statistics of one column chunk.

    ``kind`` selects which fields are meaningful; :class:`GroupStatsView`
    wraps the access so predicates never branch on the kind themselves.
    """

    kind: int
    count: int = 0
    imin: int = 0
    imax: int = 0
    isum: int = 0
    fmin: float = 0.0
    fmax: float = 0.0
    fsum: float = 0.0
    n_present: int = 0
    distinct_ids: Optional[Tuple[int, ...]] = None


def _stats_for(kind: str, values) -> ColumnStats:
    n = len(values)
    if kind.startswith("strid"):
        ids = sorted(set(values))
        if len(ids) > _DISTINCT_CAP:
            return ColumnStats(kind=_STAT_DISTINCT_OVERFLOW, count=n)
        return ColumnStats(kind=_STAT_DISTINCT, count=n,
                           distinct_ids=tuple(ids))
    if kind in ("int", "int_flat", "int_delta", "byte"):
        if not n:
            return ColumnStats(kind=_STAT_INT, count=0)
        return ColumnStats(kind=_STAT_INT, count=n, imin=min(values),
                           imax=max(values), isum=sum(values))
    if kind == "f64":
        if not n:
            return ColumnStats(kind=_STAT_FLOAT, count=0)
        return ColumnStats(kind=_STAT_FLOAT, count=n, fmin=min(values),
                           fmax=max(values), fsum=float(sum(values)))
    if kind == "optf64":
        present = [v for v in values if v is not None]
        if not present:
            return ColumnStats(kind=_STAT_OPTFLOAT, count=n, n_present=0)
        return ColumnStats(kind=_STAT_OPTFLOAT, count=n,
                           n_present=len(present), fmin=min(present),
                           fmax=max(present), fsum=float(sum(present)))
    raise ValueError(f"unknown column kind {kind!r}")


def _write_stats(out: bytearray, s: ColumnStats) -> None:
    out.append(s.kind)
    if s.kind == _STAT_INT:
        _vu(out, _zigzag(s.imin))
        _vu(out, _zigzag(s.imax))
        _vu(out, s.isum)
    elif s.kind == _STAT_FLOAT:
        out += _F64.pack(s.fmin) + _F64.pack(s.fmax) + _F64.pack(s.fsum)
    elif s.kind == _STAT_OPTFLOAT:
        _vu(out, s.n_present)
        out += _F64.pack(s.fmin) + _F64.pack(s.fmax) + _F64.pack(s.fsum)
    elif s.kind == _STAT_DISTINCT:
        ids = s.distinct_ids or ()
        _vu(out, len(ids))
        for i in ids:
            _vu(out, i)
    # _STAT_NONE / _STAT_DISTINCT_OVERFLOW carry no payload.


def _read_stats(buf, pos: int, count: int) -> Tuple[ColumnStats, int]:
    kind = buf[pos]
    pos += 1
    if kind == _STAT_INT:
        zmin, pos = _read_vu(buf, pos)
        zmax, pos = _read_vu(buf, pos)
        isum, pos = _read_vu(buf, pos)
        return ColumnStats(kind=kind, count=count, imin=_unzigzag(zmin),
                           imax=_unzigzag(zmax), isum=isum), pos
    if kind in (_STAT_FLOAT, _STAT_OPTFLOAT):
        n_present = count
        if kind == _STAT_OPTFLOAT:
            n_present, pos = _read_vu(buf, pos)
        fmin = _F64.unpack_from(buf, pos)[0]
        fmax = _F64.unpack_from(buf, pos + 8)[0]
        fsum = _F64.unpack_from(buf, pos + 16)[0]
        return ColumnStats(kind=kind, count=count, n_present=n_present,
                           fmin=fmin, fmax=fmax, fsum=fsum), pos + 24
    if kind == _STAT_DISTINCT:
        n, pos = _read_vu(buf, pos)
        ids = []
        for _ in range(n):
            i, pos = _read_vu(buf, pos)
            ids.append(i)
        return ColumnStats(kind=kind, count=count,
                           distinct_ids=tuple(ids)), pos
    return ColumnStats(kind=kind, count=count), pos


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
@dataclass
class _ColumnMeta:
    enc: int
    offset: int
    length: int
    count: int
    stats: ColumnStats


@dataclass
class _GroupMeta:
    task_id: int
    start: float
    end: float
    file_ids: List[int]
    #: family -> (n_rows, per-column metadata in _COLUMNS order)
    families: Dict[str, Tuple[int, List[_ColumnMeta]]]


class _RunWriter:
    """Accumulate profiles into column chunks + footer metadata."""

    def __init__(self) -> None:
        self._payload = BytesIO()
        self._payload_pos = 4  # chunks are addressed past the magic
        self._strings: Dict[str, int] = {}
        self._groups: List[_GroupMeta] = []

    def _sid(self, s: Optional[str]) -> int:
        if s is None:
            return 0
        sid = self._strings.get(s)
        if sid is None:
            sid = len(self._strings) + 1
            self._strings[s] = sid
        return sid

    def _append_chunk(self, kind: str, values) -> _ColumnMeta:
        if kind in ("strid", "strid_flat", "int", "int_flat"):
            enc, payload = _encode_ints(values)
        elif kind in ("strid_delta", "int_delta"):
            enc, payload = _ENC_DELTA, _encode_delta(values)
        elif kind == "f64":
            enc = _ENC_F64
            payload = np.asarray(values, dtype="<f8").tobytes()
        elif kind == "optf64":
            enc, payload = _ENC_OPTF64, _encode_optf64(values)
        elif kind == "byte":
            enc, payload = _ENC_BYTES, bytes(values)
        else:
            raise ValueError(f"unknown column kind {kind!r}")
        meta = _ColumnMeta(enc=enc, offset=self._payload_pos,
                           length=len(payload), count=len(values),
                           stats=_stats_for(kind, values))
        self._payload.write(payload)
        self._payload_pos += len(payload)
        return meta

    # -- per-family column extraction ----------------------------------
    def _objprof_columns(self, items: List[DataObjectProfile]) -> Dict[str, list]:
        sid = self._sid
        return {
            "task": [sid(p.task) for p in items],
            "file": [sid(p.file) for p in items],
            "object_name": [sid(p.object_name) for p in items],
            "acquired": [p.acquired for p in items],
            "released": [p.released for p in items],
            "open_count": [p.open_count for p in items],
            "shape_len": [len(p.shape) for p in items],
            "shape": [d for p in items for d in p.shape],
            "dtype": [sid(p.dtype or None) for p in items],
            "layout": [sid(p.layout or None) for p in items],
            "nbytes": [p.nbytes for p in items],
            "reads": [p.reads for p in items],
            "writes": [p.writes for p in items],
            "elements_read": [p.elements_read for p in items],
            "elements_written": [p.elements_written for p in items],
        }

    def _session_columns(self, items: List[FileSession]) -> Dict[str, list]:
        sid = self._sid
        return {
            "task": [sid(s.task) for s in items],
            "file": [sid(s.file) for s in items],
            "open_time": [s.open_time for s in items],
            "close_time": [s.close_time for s in items],
            "read_ops": [s.read_ops for s in items],
            "write_ops": [s.write_ops for s in items],
            "read_bytes": [s.read_bytes for s in items],
            "write_bytes": [s.write_bytes for s in items],
            "sequential_ops": [s.sequential_ops for s in items],
            "sequential_raw_ops": [s.sequential_raw_ops for s in items],
            "metadata_ops": [s.metadata_ops for s in items],
            "raw_ops": [s.raw_ops for s in items],
            "data_objects_len": [len(s.data_objects) for s in items],
            "data_objects": [sid(o) for s in items for o in s.data_objects],
        }

    def _stats_columns(self, items: List[DatasetIoStats]) -> Dict[str, list]:
        sid = self._sid
        runs_per_row = [s.region_runs() for s in items]
        flat = [run for row in runs_per_row for run in row]
        return {
            "task": [sid(s.task) for s in items],
            "file": [sid(s.file) for s in items],
            "data_object": [sid(s.data_object) for s in items],
            "reads": [s.reads for s in items],
            "writes": [s.writes for s in items],
            "bytes_read": [s.bytes_read for s in items],
            "bytes_written": [s.bytes_written for s in items],
            "data_ops": [s.data_ops for s in items],
            "data_bytes": [s.data_bytes for s in items],
            "metadata_ops": [s.metadata_ops for s in items],
            "metadata_bytes": [s.metadata_bytes for s in items],
            "io_time": [s.io_time for s in items],
            "first_start": [s.first_start for s in items],
            "last_end": [s.last_end for s in items],
            "first_raw_op": [codec._RAW_OP_CODES[s.first_raw_op]
                             for s in items],
            "run_len": [len(row) for row in runs_per_row],
            "run_first": [first for first, _, _ in flat],
            "run_span": [last - first for first, last, _ in flat],
            "run_count": [count for _, _, count in flat],
        }

    def _record_columns(self, items: List[VfdIoRecord]) -> Dict[str, list]:
        sid = self._sid
        return {
            "task": [sid(r.task) for r in items],
            "file": [sid(r.file) for r in items],
            "data_object": [sid(r.data_object) for r in items],
            "flags": [codec._OP_CODES[r.op]
                      | (codec._IOCLASS_CODES[r.access_type] << 1)
                      for r in items],
            "offset": [r.offset for r in items],
            "nbytes": [r.nbytes for r in items],
            "start": [r.start for r in items],
            "duration": [r.duration for r in items],
        }

    def add_profile(self, profile) -> None:
        families: Dict[str, Tuple[int, List[_ColumnMeta]]] = {}
        extracted = {
            "objprofs": (len(profile.object_profiles),
                         self._objprof_columns(profile.object_profiles)),
            "sessions": (len(profile.file_sessions),
                         self._session_columns(profile.file_sessions)),
            "stats": (len(profile.dataset_stats),
                      self._stats_columns(profile.dataset_stats)),
            "records": (len(profile.io_records),
                        self._record_columns(profile.io_records)),
        }
        for family in _FAMILY_ORDER:
            n_rows, cols = extracted[family]
            metas = [self._append_chunk(kind, cols[name])
                     for name, kind in _COLUMNS[family]]
            families[family] = (n_rows, metas)
        self._groups.append(_GroupMeta(
            task_id=self._sid(profile.task),
            start=profile.span.start,
            end=profile.span.end,
            file_ids=[self._sid(f) for f in profile.files],
            families=families,
        ))

    def _footer(self) -> bytes:
        out = bytearray()
        _vu(out, len(self._strings))
        for s in self._strings:  # insertion order == id order
            raw = s.encode("utf-8")
            _vu(out, len(raw))
            out += raw
        _vu(out, len(self._groups))
        for g in self._groups:
            _vu(out, g.task_id)
            out += _F64.pack(g.start) + _F64.pack(g.end)
            _vu(out, len(g.file_ids))
            for fid in g.file_ids:
                _vu(out, fid)
            for family in _FAMILY_ORDER:
                n_rows, metas = g.families[family]
                _vu(out, n_rows)
                _vu(out, len(metas))
                for m in metas:
                    out.append(m.enc)
                    _vu(out, m.offset)
                    _vu(out, m.length)
                    _vu(out, m.count)
                    _write_stats(out, m.stats)
        return bytes(out)

    def write(self, fp: BinaryIO) -> None:
        footer = self._footer()
        fp.write(COLUMNAR_MAGIC)
        fp.write(self._payload.getvalue())
        fp.write(footer)
        fp.write(_U64.pack(len(footer)))
        fp.write(COLUMNAR_MAGIC)


def write_run(fp: BinaryIO, profiles: Iterable) -> None:
    """Stream-encode task profiles into one columnar run file."""
    writer = _RunWriter()
    for p in profiles:
        writer.add_profile(p)
    writer.write(fp)


def encode_run(profiles: Iterable) -> bytes:
    """Encode task profiles to one columnar run file, in memory."""
    buf = BytesIO()
    write_run(buf, profiles)
    return buf.getvalue()


def encode_columnar(profile) -> bytes:
    """Encode one :class:`TaskProfile` as a single-group columnar file."""
    return encode_run([profile])


def compact_profiles(profiles: Sequence, out_path: str) -> int:
    """Merge profiles into one sorted run file; returns bytes written.

    Groups are ordered by task start time with ties keeping the input
    order — the exact sequence :meth:`ParallelAnalyzer.load` produces
    for the same profiles, so row and compacted analyses see identical
    profile sequences (and therefore build identical graphs).
    """
    ordered = sorted(profiles, key=lambda p: p.span.start)
    data = encode_run(ordered)
    from repro.ioutil import atomic_write_bytes

    atomic_write_bytes(out_path, data)
    return len(data)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
@dataclass
class StatsColumns:
    """The joined-stats family of one group, as parallel column lists.

    Exactly the fields :meth:`GraphBuilder.add_stats_columns` consumes;
    ``region_runs`` is decoded only when region wiring asks for it.
    """

    file: List[str]
    data_object: List[str]
    reads: List[int]
    writes: List[int]
    bytes_read: List[int]
    bytes_written: List[int]
    data_ops: List[int]
    data_bytes: List[int]
    metadata_ops: List[int]
    metadata_bytes: List[int]
    io_time: List[float]
    first_start: List[Optional[float]]
    last_end: List[Optional[float]]
    region_runs: Optional[List[List[Tuple[int, int, int]]]] = None

    def __len__(self) -> int:
        return len(self.file)


class GroupReader:
    """Lazy column access to one profile (group) of a columnar file."""

    def __init__(self, reader: "RunReader", meta: _GroupMeta) -> None:
        self._reader = reader
        self._meta = meta
        self._cache: Dict[Tuple[str, str], list] = {}

    # -- identity ------------------------------------------------------
    @property
    def task(self) -> Optional[str]:
        return self._reader.strings[self._meta.task_id]

    @property
    def start(self) -> float:
        return self._meta.start

    @property
    def end(self) -> float:
        return self._meta.end

    @property
    def files(self) -> List[str]:
        strings = self._reader.strings
        return [strings[i] for i in self._meta.file_ids]

    def n_rows(self, family: str) -> int:
        return self._meta.families[family][0]

    # -- columns -------------------------------------------------------
    def column_meta(self, family: str, name: str) -> Optional[_ColumnMeta]:
        idx = _COLUMN_INDEX[family].get(name)
        if idx is None:
            return None
        metas = self._meta.families[family][1]
        return metas[idx] if idx < len(metas) else None

    def column(self, family: str, name: str) -> list:
        """Decode one column chunk (cached)."""
        key = (family, name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        meta = self.column_meta(family, name)
        if meta is None:
            raise KeyError(f"no column {family}.{name}")
        kind = dict(_COLUMNS[family])[name]
        buf = self._reader.slice(meta.offset, meta.length)
        if kind == "f64":
            values = _decode_f64(buf, meta.count)
        elif kind == "optf64":
            values = _decode_optf64(buf, meta.count)
        elif kind == "byte":
            values = list(buf[:meta.count])
        else:
            values = _decode_ints(meta.enc, buf, meta.count)
        self._cache[key] = values
        return values

    def strid_column(self, family: str, name: str) -> list:
        strings = self._reader.strings
        return [strings[i] for i in self.column(family, name)]

    def _split(self, lens: List[int], flat: list) -> List[list]:
        out, pos = [], 0
        for n in lens:
            out.append(flat[pos:pos + n])
            pos += n
        return out

    def region_runs_rows(self) -> List[List[Tuple[int, int, int]]]:
        """Per-stats-row coalesced page runs, rebuilt from the flat
        ``run_*`` columns."""
        lens = self.column("stats", "run_len")
        firsts = self.column("stats", "run_first")
        spans = self.column("stats", "run_span")
        counts = self.column("stats", "run_count")
        flat = [(f, f + s, c) for f, s, c in zip(firsts, spans, counts)]
        return self._split(lens, flat)

    def stats_columns(self, with_region_runs: bool = False) -> StatsColumns:
        """The stats family as parallel lists, strings resolved."""
        col = self.column
        return StatsColumns(
            file=self.strid_column("stats", "file"),
            data_object=self.strid_column("stats", "data_object"),
            reads=col("stats", "reads"),
            writes=col("stats", "writes"),
            bytes_read=col("stats", "bytes_read"),
            bytes_written=col("stats", "bytes_written"),
            data_ops=col("stats", "data_ops"),
            data_bytes=col("stats", "data_bytes"),
            metadata_ops=col("stats", "metadata_ops"),
            metadata_bytes=col("stats", "metadata_bytes"),
            io_time=col("stats", "io_time"),
            first_start=col("stats", "first_start"),
            last_end=col("stats", "last_end"),
            region_runs=self.region_runs_rows() if with_region_runs else None,
        )

    # -- row materialization -------------------------------------------
    def object_profiles(self) -> List[DataObjectProfile]:
        col, scol = self.column, self.strid_column
        shapes = self._split(col("objprofs", "shape_len"),
                             col("objprofs", "shape"))
        return [
            DataObjectProfile(
                task=task, file=file, object_name=obj, acquired=acq,
                released=rel, open_count=oc, shape=tuple(shape),
                dtype=dtype or "", layout=layout or "", nbytes=nb,
                reads=rd, writes=wr, elements_read=er, elements_written=ew,
            )
            for task, file, obj, acq, rel, oc, shape, dtype, layout, nb,
                rd, wr, er, ew in zip(
                scol("objprofs", "task"), scol("objprofs", "file"),
                scol("objprofs", "object_name"), col("objprofs", "acquired"),
                col("objprofs", "released"), col("objprofs", "open_count"),
                shapes, scol("objprofs", "dtype"), scol("objprofs", "layout"),
                col("objprofs", "nbytes"), col("objprofs", "reads"),
                col("objprofs", "writes"), col("objprofs", "elements_read"),
                col("objprofs", "elements_written"))
        ]

    def file_sessions(self) -> List[FileSession]:
        col, scol = self.column, self.strid_column
        strings = self._reader.strings
        objects = self._split(
            col("sessions", "data_objects_len"),
            [strings[i] for i in col("sessions", "data_objects")])
        return [
            FileSession(
                task=task, file=file, open_time=ot, close_time=ct,
                read_ops=ro, write_ops=wo, read_bytes=rb, write_bytes=wb,
                sequential_ops=so, sequential_raw_ops=sro,
                metadata_ops=mo, raw_ops=rawo, data_objects=objs,
            )
            for task, file, ot, ct, ro, wo, rb, wb, so, sro, mo, rawo,
                objs in zip(
                scol("sessions", "task"), scol("sessions", "file"),
                col("sessions", "open_time"), col("sessions", "close_time"),
                col("sessions", "read_ops"), col("sessions", "write_ops"),
                col("sessions", "read_bytes"), col("sessions", "write_bytes"),
                col("sessions", "sequential_ops"),
                col("sessions", "sequential_raw_ops"),
                col("sessions", "metadata_ops"), col("sessions", "raw_ops"),
                objects)
        ]

    def dataset_stats(self) -> List[DatasetIoStats]:
        col, scol = self.column, self.strid_column
        runs = self.region_runs_rows()
        out = []
        for i, (task, file, obj) in enumerate(zip(
                scol("stats", "task"), scol("stats", "file"),
                scol("stats", "data_object"))):
            s = DatasetIoStats(
                task=task, file=file, data_object=obj,
                reads=col("stats", "reads")[i],
                writes=col("stats", "writes")[i],
                bytes_read=col("stats", "bytes_read")[i],
                bytes_written=col("stats", "bytes_written")[i],
                data_ops=col("stats", "data_ops")[i],
                data_bytes=col("stats", "data_bytes")[i],
                metadata_ops=col("stats", "metadata_ops")[i],
                metadata_bytes=col("stats", "metadata_bytes")[i],
                io_time=col("stats", "io_time")[i],
                first_start=col("stats", "first_start")[i],
                last_end=col("stats", "last_end")[i],
                first_raw_op=codec._RAW_OP_NAMES[
                    col("stats", "first_raw_op")[i]],
            )
            s.set_region_runs(runs[i])
            out.append(s)
        return out

    def io_records(self) -> List[VfdIoRecord]:
        from repro.vfd.base import IoClass  # noqa: F401 (docs cross-ref)

        col, scol = self.column, self.strid_column
        return [
            VfdIoRecord(
                task=task, file=file, op=codec._OP_NAMES[flags & 1],
                offset=offset, nbytes=nbytes, start=start, duration=dur,
                access_type=codec._IOCLASS_VALUES[(flags >> 1) & 1],
                data_object=obj,
            )
            for task, file, obj, flags, offset, nbytes, start, dur in zip(
                scol("records", "task"), scol("records", "file"),
                scol("records", "data_object"), col("records", "flags"),
                col("records", "offset"), col("records", "nbytes"),
                col("records", "start"), col("records", "duration"))
        ]

    def to_profile(self, with_io_records: bool = True):
        """Materialize the full row-form :class:`TaskProfile`.

        With ``with_io_records=False`` the per-operation record columns
        are never touched — they cost nothing, not even a skip-seek.
        """
        from repro.mapper.mapper import TaskProfile
        from repro.simclock import TimeSpan

        return TaskProfile(
            task=self.task,
            span=TimeSpan(self.start, self.end),
            files=self.files,
            object_profiles=self.object_profiles(),
            file_sessions=self.file_sessions(),
            io_records=self.io_records() if with_io_records else [],
            dataset_stats=self.dataset_stats(),
        )


class RunReader:
    """Footer-indexed reader over a columnar trace or compacted run.

    Opens in O(footer): the payload is only touched column-by-column as
    queries ask for it.  :meth:`open` maps the file with ``mmap`` so a
    many-GB run costs address space, not resident memory.
    """

    def __init__(self, data, mapped=None, fileobj=None) -> None:
        if data[:4] != COLUMNAR_MAGIC or data[-4:] != COLUMNAR_MAGIC:
            raise ValueError("not a DaYu columnar trace (bad magic)")
        self._data = data
        self._mapped = mapped
        self._fileobj = fileobj
        footer_len = _U64.unpack(bytes(data[-12:-4]))[0]
        footer_end = len(data) - 12
        footer_start = footer_end - footer_len
        if footer_start < 4:
            raise ValueError("corrupt columnar trace: bad footer length")
        self._parse_footer(bytes(data[footer_start:footer_end]))

    @classmethod
    def from_bytes(cls, data: bytes) -> "RunReader":
        return cls(data)

    @classmethod
    def open(cls, path: str) -> "RunReader":
        fp = open(path, "rb")
        try:
            mapped = mmap.mmap(fp.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Zero-length or unmappable file: fall back to a plain read.
            data = fp.read()
            fp.close()
            return cls(data)
        return cls(mapped, mapped=mapped, fileobj=fp)

    def close(self) -> None:
        if self._mapped is not None:
            self._mapped.close()
            self._mapped = None
        if self._fileobj is not None:
            self._fileobj.close()
            self._fileobj = None

    def __enter__(self) -> "RunReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self) -> Iterator[GroupReader]:
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def slice(self, offset: int, length: int) -> bytes:
        return bytes(self._data[offset:offset + length])

    def _parse_footer(self, buf: bytes) -> None:
        try:
            pos = 0
            n_strings, pos = _read_vu(buf, pos)
            strings: List[Optional[str]] = [None]
            for _ in range(n_strings):
                n, pos = _read_vu(buf, pos)
                strings.append(buf[pos:pos + n].decode("utf-8"))
                pos += n
            self.strings = strings
            n_groups, pos = _read_vu(buf, pos)
            self.groups: List[GroupReader] = []
            for _ in range(n_groups):
                task_id, pos = _read_vu(buf, pos)
                start = _F64.unpack_from(buf, pos)[0]
                end = _F64.unpack_from(buf, pos + 8)[0]
                pos += 16
                n_files, pos = _read_vu(buf, pos)
                file_ids = []
                for _ in range(n_files):
                    fid, pos = _read_vu(buf, pos)
                    file_ids.append(fid)
                families: Dict[str, Tuple[int, List[_ColumnMeta]]] = {}
                for family in _FAMILY_ORDER:
                    n_rows, pos = _read_vu(buf, pos)
                    n_cols, pos = _read_vu(buf, pos)
                    metas = []
                    for _ in range(n_cols):
                        enc = buf[pos]
                        pos += 1
                        offset, pos = _read_vu(buf, pos)
                        length, pos = _read_vu(buf, pos)
                        count, pos = _read_vu(buf, pos)
                        stats, pos = _read_stats(buf, pos, count)
                        metas.append(_ColumnMeta(
                            enc=enc, offset=offset, length=length,
                            count=count, stats=stats))
                    families[family] = (n_rows, metas)
                self.groups.append(GroupReader(self, _GroupMeta(
                    task_id=task_id, start=start, end=end,
                    file_ids=file_ids, families=families)))
        except (IndexError, struct.error) as exc:
            raise ValueError(
                "corrupt columnar trace: truncated footer") from exc

    def profiles(self, with_io_records: bool = True) -> List:
        """Materialize every group as a row-form :class:`TaskProfile`."""
        return [g.to_profile(with_io_records=with_io_records)
                for g in self.groups]


def decode_run(data: bytes, with_io_records: bool = True) -> List:
    """Decode every profile of a columnar file (single- or multi-group)."""
    return RunReader.from_bytes(data).profiles(
        with_io_records=with_io_records)


def decode_columnar(data: bytes, with_io_records: bool = True):
    """Decode a single-profile columnar trace (inverse of
    :func:`encode_columnar`)."""
    profiles = decode_run(data, with_io_records=with_io_records)
    if len(profiles) != 1:
        raise ValueError(
            f"expected a single-profile columnar trace, found "
            f"{len(profiles)} groups (use decode_run for run files)")
    return profiles[0]


# ----------------------------------------------------------------------
# Bulk graph construction
# ----------------------------------------------------------------------
def build_graph_from_groups(
    kind: str,
    groups: Sequence[GroupReader],
    with_regions: bool = False,
    region_bytes: int = 65536,
    page_size: int = 4096,
):
    """Build an FTG/SDG straight from column chunks.

    Groups are fed in start-time order (stable, like the loaders sort),
    through :meth:`GraphBuilder.add_stats_columns` — byte-identical
    output to the row path over the same profiles, without materializing
    a single per-record object.
    """
    from repro.analyzer.graphs import GraphBuilder

    builder = GraphBuilder(kind, with_regions=with_regions,
                           region_bytes=region_bytes, page_size=page_size)
    for g in sorted(groups, key=lambda g: g.start):
        builder.add_stats_columns(
            g.task or "", g.start, g.end,
            g.stats_columns(with_region_runs=builder.with_regions))
    return builder.build(copy=False)


# ----------------------------------------------------------------------
# Predicate-pushdown views
# ----------------------------------------------------------------------
class GroupStatsView:
    """Page-stats oracle over one group, for ``LintRule.pushdown``.

    Every accessor answers from the footer alone — no column decode.
    ``None`` always means "unknown" (column absent, stats overflowed),
    which predicates must treat as "might match".
    """

    def __init__(self, group: GroupReader) -> None:
        self._group = group

    @property
    def task(self) -> Optional[str]:
        return self._group.task

    @property
    def start(self) -> float:
        """Group time-span start — footer metadata, no column decode."""
        return self._group.start

    @property
    def end(self) -> float:
        """Group time-span end — footer metadata, no column decode."""
        return self._group.end

    def _stats(self, family: str, column: str) -> Optional[ColumnStats]:
        meta = self._group.column_meta(family, column)
        return meta.stats if meta is not None else None

    def int_max(self, family: str, column: str) -> Optional[int]:
        s = self._stats(family, column)
        return s.imax if s is not None and s.kind == _STAT_INT else None

    def int_sum(self, family: str, column: str) -> Optional[int]:
        s = self._stats(family, column)
        return s.isum if s is not None and s.kind == _STAT_INT else None

    def distinct(self, family: str, column: str) -> Optional[FrozenSet[str]]:
        """Distinct non-null strings of a dictionary column (or None
        when unknown)."""
        s = self._stats(family, column)
        if s is None or s.kind != _STAT_DISTINCT:
            return None
        strings = self._group._reader.strings
        return frozenset(strings[i] for i in s.distinct_ids or () if i)


@dataclass
class RunStatsView:
    """Whole-run pushdown oracle: the per-group views of every chunk."""

    groups: List[GroupStatsView]

    @classmethod
    def over(cls, groups: Sequence[GroupReader]) -> "RunStatsView":
        return cls(groups=[GroupStatsView(g) for g in groups])
