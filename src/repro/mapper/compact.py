"""The ``dayu-compact`` command-line entry point.

Merges many per-task trace files — any mix of ``*.json``, ``*.dayu`` and
``*.dayuc`` — into one sorted, footer-indexed columnar run file, so
opening an entire run for analysis is a single ``open``/``mmap`` instead
of one parse per task.  Groups are ordered by task start time, the same
execution order every loader produces, which keeps graphs and lint
reports built from the compacted run byte-identical to the per-file row
path.

Examples::

    dayu-compact traces/ --out run.dayuc
    dayu-compact traces/ --out run.dayuc --no-records   # stats-only run
"""

from __future__ import annotations

import argparse
import sys
from typing import List

__all__ = ["compact_main"]


def compact_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-compact``."""
    parser = argparse.ArgumentParser(
        prog="dayu-compact",
        description="Merge per-task DaYu traces into one sorted, "
                    "footer-indexed columnar run file (*.dayuc).",
    )
    parser.add_argument("traces",
                        help="directory of saved task profiles "
                             "(*.json, *.dayu and/or *.dayuc)")
    parser.add_argument("--out", required=True, metavar="RUN.dayuc",
                        help="output run file path")
    parser.add_argument("--no-records", action="store_true",
                        help="drop per-operation I/O records (graphs and "
                             "diagnostics never read them; lint loses "
                             "byte-exact extents)")
    args = parser.parse_args(argv)

    import os

    from repro.cli_common import diagnose_traces_dir
    from repro.mapper.columnar import compact_profiles
    from repro.mapper.persist import (
        UnknownTraceFormat,
        load_profiles_path,
        trace_paths,
    )

    paths = trace_paths(args.traces)
    try:
        profiles = [p for path in paths
                    for p in load_profiles_path(
                        path, with_io_records=not args.no_records)]
    except UnknownTraceFormat as exc:
        print(f"dayu-compact: {exc}", file=sys.stderr)
        return 2
    if not profiles:
        print(f"dayu-compact: {diagnose_traces_dir(args.traces)}",
              file=sys.stderr)
        return 2
    bytes_in = sum(os.path.getsize(p) for p in paths)
    bytes_out = compact_profiles(profiles, args.out)
    ratio = bytes_in / bytes_out if bytes_out else 0.0
    print(f"compacted {len(profiles)} profile(s) from {len(paths)} "
          f"file(s) into {args.out}")
    print(f"  {bytes_in} B -> {bytes_out} B ({ratio:.2f}x)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(compact_main())
