"""The Characteristic Mapper: joining VOL semantics with VFD I/O.

This is the step HDF5's abstraction obscures and DaYu's shared-memory
channel makes possible: every VFD record already carries the name of the
data object the VOL announced, so the join groups low-level operations by
``(file, data_object)`` and splits them into metadata vs. raw-data classes.

Low-level operations that happen outside any object scope (superblock,
root-group headers, heap directory flushes at file close) belong to the
file itself; they are grouped under the pseudo-object
:data:`FILE_METADATA_OBJECT` — the "File-Metadata" node the paper's SDG
figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.vfd.base import IoClass
from repro.vfd.tracing import VfdIoRecord

__all__ = ["DatasetIoStats", "map_characteristics", "FILE_METADATA_OBJECT"]

#: Pseudo data-object name for file-level metadata I/O.
FILE_METADATA_OBJECT = "File-Metadata"


def _coalesce_runs(raw: List[Tuple[int, int, int]]) -> List[Tuple[int, int, int]]:
    """Merge raw ``(first_page, last_page, count)`` increments into sorted,
    disjoint, maximal runs of uniform count.

    A boundary sweep over the run endpoints: O(R log R) in the number of
    raw increments, independent of how many pages each increment spans —
    the property that makes recording a 1 GB write O(1) instead of one
    dict update per 4 KiB page.
    """
    if not raw:
        return []
    deltas: Dict[int, int] = {}
    for first, last, count in raw:
        deltas[first] = deltas.get(first, 0) + count
        deltas[last + 1] = deltas.get(last + 1, 0) - count
    out: List[Tuple[int, int, int]] = []
    level = 0
    prev: Optional[int] = None
    for boundary in sorted(deltas):
        if level > 0 and prev is not None and boundary > prev:
            if out and out[-1][2] == level and out[-1][1] + 1 == prev:
                out[-1] = (out[-1][0], boundary - 1, level)
            else:
                out.append((prev, boundary - 1, level))
        level += deltas[boundary]
        prev = boundary
    return out


@dataclass
class DatasetIoStats:
    """Joined I/O statistics for one data object in one file in one task.

    These are the quantities the paper's Figure 7 pop-up reports (access
    volume/count, average sizes split by HDF5 data vs. metadata, operation
    kind, bandwidth), plus the page-region histogram the SDG's address
    nodes are built from.
    """

    task: Optional[str]
    file: str
    data_object: str
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    data_ops: int = 0
    data_bytes: int = 0
    metadata_ops: int = 0
    metadata_bytes: int = 0
    io_time: float = 0.0
    first_start: Optional[float] = None
    last_end: Optional[float] = None
    #: Operation kind ("read"/"write") of the first raw-data access —
    #: distinguishes read-after-write from write-after-read patterns.
    first_raw_op: Optional[str] = None
    #: Page-run increments ``(first_page, last_page, count)``; coalesced
    #: lazily (see :meth:`region_runs`).  Appending one run per record keeps
    #: :meth:`observe` O(1) regardless of how many pages an access spans.
    _region_runs: List[Tuple[int, int, int]] = field(
        default_factory=list, init=False, repr=False, compare=False)
    _runs_coalesced: bool = field(
        default=True, init=False, repr=False, compare=False)
    _regions_cache: Optional[Dict[int, int]] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def access_count(self) -> int:
        return self.reads + self.writes

    @property
    def access_volume(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def average_access_size(self) -> float:
        return self.access_volume / self.access_count if self.access_count else 0.0

    @property
    def average_data_size(self) -> float:
        return self.data_bytes / self.data_ops if self.data_ops else 0.0

    @property
    def average_metadata_size(self) -> float:
        return self.metadata_bytes / self.metadata_ops if self.metadata_ops else 0.0

    @property
    def operation(self) -> str:
        """``"read_only"`` / ``"write_only"`` / ``"read_write"`` / ``"none"``."""
        if self.reads and self.writes:
            return "read_write"
        if self.reads:
            return "read_only"
        if self.writes:
            return "write_only"
        return "none"

    @property
    def bandwidth(self) -> float:
        """Achieved bytes/second over the object's active I/O time."""
        return self.access_volume / self.io_time if self.io_time > 0 else 0.0

    @property
    def metadata_only(self) -> bool:
        """True when the object was touched but its data never moved —
        the tell-tale the paper uses to show DDMD's training task reads
        only the contact_map's metadata."""
        return self.access_count > 0 and self.data_ops == 0

    def observe(self, record: VfdIoRecord, page_size: int) -> None:
        """Fold one VFD record into the statistics."""
        if record.op == "read":
            self.reads += 1
            self.bytes_read += record.nbytes
        else:
            self.writes += 1
            self.bytes_written += record.nbytes
        if record.access_type is IoClass.METADATA:
            self.metadata_ops += 1
            self.metadata_bytes += record.nbytes
        else:
            if self.first_raw_op is None:
                self.first_raw_op = record.op
            self.data_ops += 1
            self.data_bytes += record.nbytes
        self.io_time += record.duration
        if self.first_start is None or record.start < self.first_start:
            self.first_start = record.start
        if self.last_end is None or record.end > self.last_end:
            self.last_end = record.end
        first, last = record.region(page_size)
        self._region_runs.append((first, last, 1))
        self._runs_coalesced = False
        self._regions_cache = None

    # ------------------------------------------------------------------
    # Page-region histogram
    # ------------------------------------------------------------------
    def region_runs(self) -> List[Tuple[int, int, int]]:
        """The page histogram as sorted, disjoint ``(first_page, last_page,
        count)`` runs — the compact form the binary codec stores and the
        SDG region wiring consumes."""
        if not self._runs_coalesced:
            self._region_runs = _coalesce_runs(self._region_runs)
            self._runs_coalesced = True
        return list(self._region_runs)

    def set_region_runs(self, runs: Iterable[Tuple[int, int, int]]) -> None:
        """Replace the histogram with already-coalesced runs (codec decode)."""
        self._region_runs = list(runs)
        self._runs_coalesced = True
        self._regions_cache = None

    @property
    def regions(self) -> Dict[int, int]:
        """Per-page view of the histogram: page index -> op count.

        Materialized lazily from the run representation; prefer
        :meth:`region_runs` in code that can work with intervals.
        """
        if self._regions_cache is None:
            out: Dict[int, int] = {}
            for first, last, count in self.region_runs():
                for page in range(first, last + 1):
                    out[page] = count
            self._regions_cache = out
        return self._regions_cache

    @regions.setter
    def regions(self, mapping: Mapping[int, int]) -> None:
        self._region_runs = [(p, p, c) for p, c in sorted(mapping.items())]
        self._runs_coalesced = False  # sweep merges adjacent equal counts
        self._regions_cache = None

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "file": self.file,
            "data_object": self.data_object,
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "data_ops": self.data_ops,
            "data_bytes": self.data_bytes,
            "metadata_ops": self.metadata_ops,
            "metadata_bytes": self.metadata_bytes,
            "io_time": self.io_time,
            "first_start": self.first_start,
            "last_end": self.last_end,
            "first_raw_op": self.first_raw_op,
            "operation": self.operation,
            "bandwidth": self.bandwidth,
            "regions": {str(k): v for k, v in sorted(self.regions.items())},
        }


def map_characteristics(
    records: Iterable[VfdIoRecord], page_size: int
) -> List[DatasetIoStats]:
    """Group VFD records by (file, data object) into joined statistics.

    Records without an object scope are attributed to
    :data:`FILE_METADATA_OBJECT` of their file.  Results are ordered by
    first touch.
    """
    by_key: Dict[Tuple[str, str], DatasetIoStats] = {}
    for record in records:
        obj = record.data_object or FILE_METADATA_OBJECT
        key = (record.file, obj)
        stats = by_key.get(key)
        if stats is None:
            stats = DatasetIoStats(task=record.task, file=record.file, data_object=obj)
            by_key[key] = stats
        stats.observe(record, page_size)
    return list(by_key.values())
