"""Compact binary trace codec — DaYu's on-disk trace format.

JSON is the *interchange* form of a task profile: self-describing, greppable,
and ~an order of magnitude larger than it needs to be.  This module is the
*storage* form the paper's Figure 9d measures: a struct-packed, string-interned
frame stream that encodes :class:`~repro.vfd.tracing.VfdIoRecord`,
:class:`~repro.vfd.tracing.FileSession`,
:class:`~repro.vol.tracer.DataObjectProfile` and
:class:`~repro.mapper.stats.DatasetIoStats` — and whole
:class:`~repro.mapper.mapper.TaskProfile` files.

Format (one profile per file)::

    MAGIC "DYU1"
    frame*            -- tag byte + payload
    END (0x00)

Frames:

- ``STR``: varint length + UTF-8 bytes.  Assigns the next string id
  (ids start at 1; id 0 means ``None``).  Strings are interned on first
  use, so every task/file/object name is stored once per file.
- ``HEADER``: task id, start/end ``f64``, file-id list.
- ``OBJPROF`` / ``SESSION`` / ``STATS`` / ``RECORD``: one item each, all
  integers as unsigned LEB128 varints, floats as little-endian ``f64``
  (exact round-trip), optional floats behind a presence byte.
- ``RECORDS``: varint byte-length announcing that the next N bytes hold
  only ``RECORD``/``STR`` frames.  Per-operation records dominate a trace
  but the offline Analyzer never reads them (graphs and diagnostics are
  built from the joined stats, sessions, and object profiles), so a
  decoder may skip the whole block in O(1) — the core of the scale-out
  ``dayu-analyze`` load path.

Encoding is streaming: the encoder emits one frame per item as it is
produced; the decoder walks frames incrementally.  Region histograms are
stored as coalesced page runs (``first``, ``length-1``, ``count`` with
delta-coded starts), not per-page entries.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import BinaryIO, Dict, Iterable, List, Optional, Tuple

from repro.vfd.base import IoClass
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile

from repro.mapper.stats import DatasetIoStats

__all__ = [
    "MAGIC",
    "BINARY_TRACE_SUFFIX",
    "is_binary_trace",
    "encode_profile",
    "decode_profile",
    "write_profile",
    "read_profile",
    "encode_vfd_trace",
    "encode_vol_trace",
    "vfd_trace_nbytes",
    "vol_trace_nbytes",
]

MAGIC = b"DYU1"
#: File suffix used for binary task-profile traces.
BINARY_TRACE_SUFFIX = ".dayu"

_T_END = 0x00
_T_STR = 0x01
_T_HEADER = 0x02
_T_OBJPROF = 0x03
_T_SESSION = 0x04
_T_STATS = 0x05
_T_RECORD = 0x06
_T_RECORDS = 0x07

_F64 = struct.Struct("<d")

_OP_CODES = {"read": 0, "write": 1}
_OP_NAMES = {0: "read", 1: "write"}
_IOCLASS_CODES = {IoClass.METADATA: 0, IoClass.RAW: 1}
_IOCLASS_VALUES = {0: IoClass.METADATA, 1: IoClass.RAW}
_RAW_OP_CODES = {None: 0, "read": 1, "write": 2}
_RAW_OP_NAMES = {0: None, 1: "read", 2: "write"}


def is_binary_trace(data: bytes) -> bool:
    """True when ``data`` starts with the binary trace magic."""
    return data[:4] == MAGIC


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------
class _FrameEncoder:
    """Streaming frame writer with an incremental string-intern table."""

    def __init__(self, sink: BinaryIO) -> None:
        self._sink = sink
        self._strings: Dict[str, int] = {}
        sink.write(MAGIC)

    # -- primitives ----------------------------------------------------
    @staticmethod
    def _vu(out: bytearray, n: int) -> None:
        if n < 0:
            raise ValueError(f"cannot varint-encode negative value {n}")
        while True:
            b = n & 0x7F
            n >>= 7
            if n:
                out.append(b | 0x80)
            else:
                out.append(b)
                return

    def _sid(self, out: bytearray, s: Optional[str]) -> None:
        """Append the intern id of ``s``, emitting a STR frame on first use."""
        if s is None:
            out.append(0)
            return
        sid = self._strings.get(s)
        if sid is None:
            sid = len(self._strings) + 1
            self._strings[s] = sid
            raw = s.encode("utf-8")
            frame = bytearray([_T_STR])
            self._vu(frame, len(raw))
            frame += raw
            self._sink.write(frame)
        self._vu(out, sid)

    @staticmethod
    def _f64(out: bytearray, x: float) -> None:
        out += _F64.pack(x)

    @classmethod
    def _opt_f64(cls, out: bytearray, x: Optional[float]) -> None:
        if x is None:
            out.append(0)
        else:
            out.append(1)
            cls._f64(out, x)

    # -- frames --------------------------------------------------------
    def header(self, task: str, start: float, end: float,
               files: Iterable[str]) -> None:
        out = bytearray([_T_HEADER])
        self._sid(out, task)
        self._f64(out, start)
        self._f64(out, end)
        files = list(files)
        self._vu(out, len(files))
        for f in files:
            self._sid(out, f)
        self._sink.write(out)

    def object_profile(self, p: DataObjectProfile) -> None:
        out = bytearray([_T_OBJPROF])
        self._sid(out, p.task)
        self._sid(out, p.file)
        self._sid(out, p.object_name)
        self._f64(out, p.acquired)
        self._opt_f64(out, p.released)
        self._vu(out, p.open_count)
        self._vu(out, len(p.shape))
        for dim in p.shape:
            self._vu(out, dim)
        self._sid(out, p.dtype or None)
        self._sid(out, p.layout or None)
        for n in (p.nbytes, p.reads, p.writes,
                  p.elements_read, p.elements_written):
            self._vu(out, n)
        self._sink.write(out)

    def session(self, s: FileSession) -> None:
        out = bytearray([_T_SESSION])
        self._sid(out, s.task)
        self._sid(out, s.file)
        self._f64(out, s.open_time)
        self._opt_f64(out, s.close_time)
        for n in (s.read_ops, s.write_ops, s.read_bytes, s.write_bytes,
                  s.sequential_ops, s.sequential_raw_ops,
                  s.metadata_ops, s.raw_ops):
            self._vu(out, n)
        self._vu(out, len(s.data_objects))
        for obj in s.data_objects:
            self._sid(out, obj)
        self._sink.write(out)

    def stats(self, s: DatasetIoStats) -> None:
        out = bytearray([_T_STATS])
        self._sid(out, s.task)
        self._sid(out, s.file)
        self._sid(out, s.data_object)
        for n in (s.reads, s.writes, s.bytes_read, s.bytes_written,
                  s.data_ops, s.data_bytes, s.metadata_ops, s.metadata_bytes):
            self._vu(out, n)
        self._f64(out, s.io_time)
        self._opt_f64(out, s.first_start)
        self._opt_f64(out, s.last_end)
        out.append(_RAW_OP_CODES[s.first_raw_op])
        runs = s.region_runs()
        self._vu(out, len(runs))
        prev_end = 0
        for i, (first, last, count) in enumerate(runs):
            self._vu(out, first if i == 0 else first - prev_end)
            self._vu(out, last - first)
            self._vu(out, count)
            prev_end = last + 1
        self._sink.write(out)

    def record(self, r: VfdIoRecord) -> None:
        out = bytearray([_T_RECORD])
        self._sid(out, r.task)
        self._sid(out, r.file)
        self._sid(out, r.data_object)
        out.append(_OP_CODES[r.op] | (_IOCLASS_CODES[r.access_type] << 1))
        self._vu(out, r.offset)
        self._vu(out, r.nbytes)
        self._f64(out, r.start)
        self._f64(out, r.duration)
        self._sink.write(out)

    def records_block(self, records: Iterable[VfdIoRecord]) -> None:
        """Emit all per-op records behind a skippable byte-length prefix."""
        block = BytesIO()
        outer_sink = self._sink
        self._sink = block
        try:
            for r in records:
                self.record(r)
        finally:
            self._sink = outer_sink
        payload = block.getvalue()
        out = bytearray([_T_RECORDS])
        self._vu(out, len(payload))
        self._sink.write(out)
        self._sink.write(payload)

    def end(self) -> None:
        self._sink.write(bytes([_T_END]))


def write_profile(fp: BinaryIO, profile) -> None:
    """Stream-encode one :class:`TaskProfile` into a binary file object."""
    enc = _FrameEncoder(fp)
    enc.header(profile.task, profile.span.start, profile.span.end,
               profile.files)
    for p in profile.object_profiles:
        enc.object_profile(p)
    for s in profile.file_sessions:
        enc.session(s)
    for s in profile.dataset_stats:
        enc.stats(s)
    enc.records_block(profile.io_records)
    enc.end()


def encode_profile(profile) -> bytes:
    """Encode one :class:`TaskProfile` to compact binary bytes."""
    buf = BytesIO()
    write_profile(buf, profile)
    return buf.getvalue()


def encode_vfd_trace(records: Iterable[VfdIoRecord],
                     sessions: Iterable[FileSession] = ()) -> bytes:
    """Encode a standalone VFD trace (sessions + per-op records)."""
    buf = BytesIO()
    enc = _FrameEncoder(buf)
    for s in sessions:
        enc.session(s)
    enc.records_block(records)
    enc.end()
    return buf.getvalue()


def encode_vol_trace(profiles: Iterable[DataObjectProfile]) -> bytes:
    """Encode a standalone VOL trace (per-object semantic profiles)."""
    buf = BytesIO()
    enc = _FrameEncoder(buf)
    for p in profiles:
        enc.object_profile(p)
    enc.end()
    return buf.getvalue()


def vfd_trace_nbytes(records: Iterable[VfdIoRecord],
                     sessions: Iterable[FileSession] = ()) -> int:
    """Real encoded size of a VFD trace — the Figure 9d numerator."""
    return len(encode_vfd_trace(records, sessions))


def vol_trace_nbytes(profiles: Iterable[DataObjectProfile]) -> int:
    """Real encoded size of a VOL trace."""
    return len(encode_vol_trace(profiles))


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
class _FrameDecoder:
    """Incremental frame reader over an in-memory buffer."""

    def __init__(self, buf: bytes) -> None:
        if buf[:4] != MAGIC:
            raise ValueError("not a DaYu binary trace (bad magic)")
        self._buf = buf
        self._pos = 4
        self._strings: List[Optional[str]] = [None]

    def _vu(self) -> int:
        buf, i = self._buf, self._pos
        shift = n = 0
        while True:
            b = buf[i]
            i += 1
            n |= (b & 0x7F) << shift
            if not b & 0x80:
                self._pos = i
                return n
            shift += 7

    def _sid(self) -> Optional[str]:
        return self._strings[self._vu()]

    def _f64(self) -> float:
        x = _F64.unpack_from(self._buf, self._pos)[0]
        self._pos += 8
        return x

    def _opt_f64(self) -> Optional[float]:
        flag = self._buf[self._pos]
        self._pos += 1
        return self._f64() if flag else None

    def _byte(self) -> int:
        b = self._buf[self._pos]
        self._pos += 1
        return b

    def next_tag(self) -> int:
        return self._byte()

    def read_str(self) -> None:
        n = self._vu()
        self._strings.append(self._buf[self._pos:self._pos + n].decode("utf-8"))
        self._pos += n

    def read_header(self) -> Tuple[str, float, float, List[str]]:
        task = self._sid()
        start = self._f64()
        end = self._f64()
        files = [self._sid() for _ in range(self._vu())]
        return task, start, end, files

    def read_object_profile(self) -> DataObjectProfile:
        task = self._sid()
        file = self._sid()
        obj = self._sid()
        acquired = self._f64()
        released = self._opt_f64()
        open_count = self._vu()
        shape = tuple(self._vu() for _ in range(self._vu()))
        dtype = self._sid() or ""
        layout = self._sid() or ""
        nbytes, reads, writes, er, ew = (self._vu() for _ in range(5))
        return DataObjectProfile(
            task=task, file=file, object_name=obj, acquired=acquired,
            released=released, open_count=open_count, shape=shape,
            dtype=dtype, layout=layout, nbytes=nbytes, reads=reads,
            writes=writes, elements_read=er, elements_written=ew,
        )

    def read_session(self) -> FileSession:
        task = self._sid()
        file = self._sid()
        open_time = self._f64()
        close_time = self._opt_f64()
        counters = [self._vu() for _ in range(8)]
        objects = [self._sid() for _ in range(self._vu())]
        return FileSession(
            task=task, file=file, open_time=open_time, close_time=close_time,
            read_ops=counters[0], write_ops=counters[1],
            read_bytes=counters[2], write_bytes=counters[3],
            sequential_ops=counters[4], sequential_raw_ops=counters[5],
            metadata_ops=counters[6], raw_ops=counters[7],
            data_objects=objects,
        )

    def read_stats(self) -> DatasetIoStats:
        task = self._sid()
        file = self._sid()
        obj = self._sid()
        counters = [self._vu() for _ in range(8)]
        stats = DatasetIoStats(
            task=task, file=file, data_object=obj,
            reads=counters[0], writes=counters[1],
            bytes_read=counters[2], bytes_written=counters[3],
            data_ops=counters[4], data_bytes=counters[5],
            metadata_ops=counters[6], metadata_bytes=counters[7],
        )
        stats.io_time = self._f64()
        stats.first_start = self._opt_f64()
        stats.last_end = self._opt_f64()
        stats.first_raw_op = _RAW_OP_NAMES[self._byte()]
        runs: List[Tuple[int, int, int]] = []
        n_runs = self._vu()
        pos = 0
        for i in range(n_runs):
            first = pos + self._vu()
            last = first + self._vu()
            count = self._vu()
            runs.append((first, last, count))
            pos = last + 1
        stats.set_region_runs(runs)
        return stats

    def read_record(self) -> VfdIoRecord:
        task = self._sid()
        file = self._sid()
        obj = self._sid()
        flags = self._byte()
        offset = self._vu()
        nbytes = self._vu()
        start = self._f64()
        duration = self._f64()
        return VfdIoRecord(
            task=task, file=file, op=_OP_NAMES[flags & 1],
            offset=offset, nbytes=nbytes, start=start, duration=duration,
            access_type=_IOCLASS_VALUES[(flags >> 1) & 1], data_object=obj,
        )

    def skip_block(self) -> None:
        n = self._vu()  # consume the length varint before offsetting
        self._pos += n


def decode_profile(data: bytes, with_io_records: bool = True):
    """Decode a binary task profile.

    With ``with_io_records=False`` the (dominant) per-operation record
    block is skipped in O(1) — everything the Analyzer and Diagnostics
    consume (header, object profiles, sessions, joined stats) is still
    fully decoded.
    """
    from repro.mapper.mapper import TaskProfile
    from repro.simclock import TimeSpan

    dec = _FrameDecoder(data)
    task = ""
    start = end = 0.0
    files: List[str] = []
    object_profiles: List[DataObjectProfile] = []
    sessions: List[FileSession] = []
    stats: List[DatasetIoStats] = []
    records: List[VfdIoRecord] = []
    try:
        while True:
            tag = dec.next_tag()
            if tag == _T_END:
                break
            if tag == _T_STR:
                dec.read_str()
            elif tag == _T_HEADER:
                task, start, end, files = dec.read_header()
            elif tag == _T_OBJPROF:
                object_profiles.append(dec.read_object_profile())
            elif tag == _T_SESSION:
                sessions.append(dec.read_session())
            elif tag == _T_STATS:
                stats.append(dec.read_stats())
            elif tag == _T_RECORD:
                records.append(dec.read_record())
            elif tag == _T_RECORDS:
                if with_io_records:
                    dec._vu()  # byte length; frames inside are self-describing
                else:
                    dec.skip_block()
            else:
                raise ValueError(f"corrupt trace: unknown frame tag {tag:#x}")
    except (IndexError, struct.error) as exc:
        raise ValueError("corrupt trace: truncated payload") from exc
    return TaskProfile(
        task=task, span=TimeSpan(start, end), files=files,
        object_profiles=object_profiles, file_sessions=sessions,
        io_records=records, dataset_stats=stats,
    )


def read_profile(fp: BinaryIO, with_io_records: bool = True):
    """Decode one binary task profile from a file object."""
    return decode_profile(fp.read(), with_io_records=with_io_records)
