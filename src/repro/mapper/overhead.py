"""Overhead accounting: the quantities of the paper's Figures 9 and 10.

DaYu's costs are charged to named accounts on the simulated clock as the
profilers run:

- ``dayu.input_parser``           (configuration parse)
- ``dayu.vol.access_tracker``     (VOL object/access/file events)
- ``dayu.vfd.access_tracker``     (VFD per-op records + sessions)
- ``dayu.characteristic_mapper``  (the VOL↔VFD join)

:func:`overhead_report` folds those into the two views the paper uses:
per-layer (VFD vs. VOL execution overhead %, Figure 9a-c) and per-component
(Input Parser / Access Tracker / Characteristic Mapper shares, Figure 10),
plus the storage overhead ratio (Figure 9d).

Two non-DaYu accounts deliberately stay *out* of every percentage here:
``dayu.monitor.subscriber`` (live-monitor consumers, see
:attr:`OverheadReport.monitor`) and ``retry_backoff`` (time a
:class:`~repro.workflow.runner.RetryPolicy` spends waiting between task
attempts under fault injection).  Both are application/operations time,
not tracing cost — charging them to DaYu would inflate the Figure 9/10
breakdowns on faulty runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mapper.config import INPUT_PARSER_ACCOUNT
from repro.mapper.mapper import CHARACTERISTIC_MAPPER_ACCOUNT
from repro.simclock import SimClock
from repro.vfd.tracing import ACCESS_TRACKER_ACCOUNT as VFD_TRACKER_ACCOUNT
from repro.vol.tracer import VOL_TRACKER_ACCOUNT

__all__ = ["OverheadReport", "overhead_report"]


@dataclass(frozen=True)
class OverheadReport:
    """DaYu overhead relative to a run's total time and data volume."""

    total_runtime: float
    input_parser: float
    vol_tracker: float
    vfd_tracker: float
    characteristic_mapper: float
    trace_storage_bytes: int
    data_volume_bytes: int
    #: Monitor-subscriber time (``dayu.monitor.subscriber``).  Kept out of
    #: :attr:`dayu_time` and every Figure 9/10 percentage so those numbers
    #: still isolate pure tracing overhead; exactly 0.0 when no
    #: ``repro.monitor`` bus was attached to the run.
    monitor: float = 0.0

    # ---------------------- execution overhead -----------------------
    @property
    def dayu_time(self) -> float:
        return (
            self.input_parser
            + self.vol_tracker
            + self.vfd_tracker
            + self.characteristic_mapper
        )

    @property
    def vfd_percent(self) -> float:
        """VFD-layer execution overhead as % of total runtime (Fig. 9a-c)."""
        return 100.0 * self.vfd_tracker / self.total_runtime if self.total_runtime else 0.0

    @property
    def vol_percent(self) -> float:
        """VOL-layer execution overhead as % of total runtime (Fig. 9a-c)."""
        return 100.0 * self.vol_tracker / self.total_runtime if self.total_runtime else 0.0

    @property
    def runtime_percent(self) -> float:
        """*Runtime* execution overhead — the trackers and parser that run
        inline with the application (the paper's <0.25% / <4% claims).
        The Characteristic Mapper join is post-execution analysis and is
        excluded here."""
        inline = self.input_parser + self.vol_tracker + self.vfd_tracker
        return 100.0 * inline / self.total_runtime if self.total_runtime else 0.0

    @property
    def total_percent(self) -> float:
        """All DaYu time (runtime trackers + post-execution mapping)."""
        return 100.0 * self.dayu_time / self.total_runtime if self.total_runtime else 0.0

    @property
    def monitor_percent(self) -> float:
        """Live-monitoring subscriber cost as % of total runtime — reported
        separately so it never contaminates the tracing-overhead claims."""
        return 100.0 * self.monitor / self.total_runtime if self.total_runtime else 0.0

    # --------------------- component breakdown -----------------------
    def component_shares(self) -> Dict[str, float]:
        """Fractions of DaYu's own time per component (Fig. 10 pie)."""
        total = self.dayu_time
        if total <= 0:
            return {"Input_Parser": 0.0, "Access_Tracker": 0.0, "Characteristic_Mapper": 0.0}
        return {
            "Input_Parser": self.input_parser / total,
            "Access_Tracker": (self.vol_tracker + self.vfd_tracker) / total,
            "Characteristic_Mapper": self.characteristic_mapper / total,
        }

    # ----------------------- storage overhead ------------------------
    @property
    def storage_percent(self) -> float:
        """Trace bytes as % of application data volume (Fig. 9d)."""
        if self.data_volume_bytes <= 0:
            return 0.0
        return 100.0 * self.trace_storage_bytes / self.data_volume_bytes


def overhead_report(
    clock: SimClock,
    trace_storage_bytes: int = 0,
    data_volume_bytes: int = 0,
    total_runtime: float | None = None,
) -> OverheadReport:
    """Build an :class:`OverheadReport` from the clock's accounts.

    Args:
        clock: The run's simulated clock.
        trace_storage_bytes: Serialized trace size (numerator of Fig. 9d).
        data_volume_bytes: Application data volume (denominator of Fig. 9d).
        total_runtime: Override for the run's total time; defaults to the
            clock's current time.
    """
    # Imported here: repro.monitor imports back through the analyzer/mapper
    # packages, and this module is loaded at repro.mapper package init.
    from repro.monitor.bus import MONITOR_ACCOUNT

    return OverheadReport(
        total_runtime=clock.now if total_runtime is None else total_runtime,
        input_parser=clock.account(INPUT_PARSER_ACCOUNT),
        vol_tracker=clock.account(VOL_TRACKER_ACCOUNT),
        vfd_tracker=clock.account(VFD_TRACKER_ACCOUNT),
        characteristic_mapper=clock.account(CHARACTERISTIC_MAPPER_ACCOUNT),
        trace_storage_bytes=trace_storage_bytes,
        data_volume_bytes=data_volume_bytes,
        monitor=clock.account(MONITOR_ACCOUNT),
    )
