"""Trace persistence: loading saved task profiles for offline analysis.

DaYu's runtime writes one profile per task
(:meth:`DataSemanticMapper.save`) — compact binary
(:mod:`repro.mapper.codec`, ``*.dayu``) or JSON interchange (``*.json``);
the offline Workflow Analyzer then works from those files — a different
process, usually a different machine.  This module provides the read side:
reconstructing :class:`~repro.mapper.mapper.TaskProfile` objects (and
everything they contain) from either serialized form, so graphs and
diagnostics can be built without re-running the workflow.  Loaders sniff
the format from the payload, so directories may mix both.

``with_io_records=False`` skips materializing the per-operation record
list — the dominant trace section, which graph construction and the
diagnostics never read — for an analysis-only fast path.
"""

from __future__ import annotations

import json
from typing import List

from repro.mapper import codec, columnar
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import DatasetIoStats
from repro.posix.simfs import SimFS
from repro.simclock import TimeSpan
from repro.vfd.base import IoClass
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile

__all__ = [
    "profile_from_json_dict",
    "UnknownTraceFormat",
    "sniff_trace_format",
    "sniff_trace_format_path",
    "load_profile",
    "load_profile_path",
    "load_profiles",
    "load_profiles_path",
    "load_profiles_from_dir",
    "load_profiles_from_host_dir",
]

#: Extensions recognized as saved task profiles.  ``.dayuc`` files may be
#: single-profile traces or multi-profile compacted runs; the
#: ``load_profiles*`` loaders flatten either.
TRACE_SUFFIXES = (".json", codec.BINARY_TRACE_SUFFIX,
                  columnar.COLUMNAR_TRACE_SUFFIX)


def _object_profile_from(d: dict) -> DataObjectProfile:
    return DataObjectProfile(
        task=d.get("task"),
        file=d["file"],
        object_name=d["object"],
        acquired=d["acquired"],
        released=d.get("released"),
        open_count=d.get("open_count", 0),
        shape=tuple(d.get("shape", ())),
        dtype=d.get("dtype", ""),
        layout=d.get("layout", ""),
        nbytes=d.get("nbytes", 0),
        reads=d.get("reads", 0),
        writes=d.get("writes", 0),
        elements_read=d.get("elements_read", 0),
        elements_written=d.get("elements_written", 0),
    )


def _session_from(d: dict) -> FileSession:
    session = FileSession(
        task=d.get("task"),
        file=d["file"],
        open_time=d["open_time"],
        close_time=d.get("close_time"),
        read_ops=d.get("read_ops", 0),
        write_ops=d.get("write_ops", 0),
        read_bytes=d.get("read_bytes", 0),
        write_bytes=d.get("write_bytes", 0),
        sequential_ops=d.get("sequential_ops", 0),
        sequential_raw_ops=d.get("sequential_raw_ops", 0),
        metadata_ops=d.get("metadata_ops", 0),
        raw_ops=d.get("raw_ops", 0),
        data_objects=list(d.get("data_objects", [])),
    )
    return session


def _record_from(d: dict) -> VfdIoRecord:
    return VfdIoRecord(
        task=d.get("task"),
        file=d["file"],
        op=d["op"],
        offset=d["offset"],
        nbytes=d["nbytes"],
        start=d["start"],
        duration=d["duration"],
        access_type=IoClass(d["access_type"]),
        data_object=d.get("data_object"),
    )


def _stats_from(d: dict) -> DatasetIoStats:
    stats = DatasetIoStats(
        task=d.get("task"),
        file=d["file"],
        data_object=d["data_object"],
        reads=d.get("reads", 0),
        writes=d.get("writes", 0),
        bytes_read=d.get("bytes_read", 0),
        bytes_written=d.get("bytes_written", 0),
        data_ops=d.get("data_ops", 0),
        data_bytes=d.get("data_bytes", 0),
        metadata_ops=d.get("metadata_ops", 0),
        metadata_bytes=d.get("metadata_bytes", 0),
        io_time=d.get("io_time", 0.0),
        first_start=d.get("first_start"),
        last_end=d.get("last_end"),
        first_raw_op=d.get("first_raw_op"),
    )
    stats.regions = {int(k): v for k, v in d.get("regions", {}).items()}
    return stats


def profile_from_json_dict(payload: dict,
                           with_io_records: bool = True) -> TaskProfile:
    """Reconstruct a :class:`TaskProfile` from its serialized form.

    Inverse of :meth:`TaskProfile.to_json_dict`; round-trips everything the
    Analyzer and Diagnostics consume.
    """
    records = payload.get("io_records", []) if with_io_records else []
    return TaskProfile(
        task=payload["task"],
        span=TimeSpan(payload["start"], payload["end"]),
        files=list(payload.get("files", [])),
        object_profiles=[
            _object_profile_from(d) for d in payload.get("object_profiles", [])
        ],
        file_sessions=[
            _session_from(d) for d in payload.get("file_sessions", [])
        ],
        io_records=[_record_from(d) for d in records],
        dataset_stats=[_stats_from(d) for d in payload.get("dataset_stats", [])],
    )


def load_profile(data: bytes | str, with_io_records: bool = True) -> TaskProfile:
    """Parse one serialized profile — row binary, columnar, or JSON,
    sniffed from the payload.  A multi-profile columnar run file is an
    error here; use :func:`load_profiles_path` to flatten those."""
    if isinstance(data, bytes) and codec.is_binary_trace(data):
        return codec.decode_profile(data, with_io_records=with_io_records)
    if isinstance(data, bytes) and columnar.is_columnar_trace(data):
        return columnar.decode_columnar(data,
                                        with_io_records=with_io_records)
    if isinstance(data, bytes):
        data = data.decode()
    return profile_from_json_dict(json.loads(data),
                                  with_io_records=with_io_records)


def load_profile_path(path, with_io_records: bool = True) -> TaskProfile:
    """Load one saved profile from a host path (any format).

    Raises :class:`UnknownTraceFormat` on files too short to carry the
    format magic."""
    from pathlib import Path

    data = Path(path).read_bytes()
    if len(data) < 4:
        raise UnknownTraceFormat(str(path), len(data))
    return load_profile(data, with_io_records=with_io_records)


def load_profiles_path(path, with_io_records: bool = True) -> List[TaskProfile]:
    """Load every profile a host trace file holds (any format).

    JSON and row-binary traces hold exactly one; a columnar ``.dayuc``
    file may be a compacted run holding many.  Raises
    :class:`UnknownTraceFormat` on files too short to carry the magic.
    """
    from pathlib import Path

    data = Path(path).read_bytes()
    if len(data) < 4:
        raise UnknownTraceFormat(str(path), len(data))
    if columnar.is_columnar_trace(data):
        return columnar.decode_run(data, with_io_records=with_io_records)
    return [load_profile(data, with_io_records=with_io_records)]


def load_profiles(blobs, with_io_records: bool = True) -> List[TaskProfile]:
    """Parse many serialized profiles, preserving order."""
    return [load_profile(b, with_io_records=with_io_records) for b in blobs]


class UnknownTraceFormat(ValueError):
    """A trace payload too short to classify (no room for magic bytes).

    Carries the offending ``path`` ("<memory>" for in-memory payloads)
    so batch loaders and the CLI can name the file instead of
    misreporting a truncated trace as malformed JSON.
    """

    def __init__(self, path: str, size: int) -> None:
        self.path = path
        self.size = size
        super().__init__(
            f"{path}: {size} byte(s) is too short to be a DaYu trace "
            "(need at least 4 bytes of magic; empty or truncated file?)")


def sniff_trace_format(head: bytes, source: str = "<memory>") -> str:
    """Classify a trace payload by its magic bytes.

    ``"binary"`` for the row codec (``DYU1``), ``"columnar"`` for the
    column-chunk form (``DYC1``), ``"json"`` otherwise.  Four bytes of
    the payload suffice; fewer raise :class:`UnknownTraceFormat` naming
    ``source``.
    """
    if len(head) < 4:
        raise UnknownTraceFormat(source, len(head))
    if codec.is_binary_trace(head):
        return "binary"
    if columnar.is_columnar_trace(head):
        return "columnar"
    return "json"


def sniff_trace_format_path(path) -> str:
    """Classify a saved trace file by reading only its magic bytes.

    Raises :class:`UnknownTraceFormat` (naming the path) on files
    shorter than the four magic bytes — zero-length droppings from an
    interrupted writer in particular."""
    with open(path, "rb") as fh:
        return sniff_trace_format(fh.read(4), source=str(path))


def trace_paths(directory: str, trace_format: str = "auto") -> List[str]:
    """Saved profile paths (any format) under a host directory, sorted.

    ``trace_format`` restricts to one on-disk format, classified by magic
    bytes — not by suffix — so mislabelled files are filtered correctly;
    the default ``"auto"`` accepts everything.  A missing directory
    yields no paths (callers report "no profiles" rather than a
    traceback)."""
    from pathlib import Path

    if trace_format not in ("auto", "json", "binary", "columnar"):
        raise ValueError(f"bad trace_format {trace_format!r}: use 'auto', "
                         "'json', 'binary' or 'columnar'")
    base = Path(directory)
    if not base.is_dir():
        return []
    paths = sorted(
        str(p) for p in base.iterdir() if p.suffix in TRACE_SUFFIXES
    )
    if trace_format == "auto":
        return paths
    return [p for p in paths if sniff_trace_format_path(p) == trace_format]


def load_profiles_from_host_dir(
    directory: str, with_io_records: bool = True
) -> List[TaskProfile]:
    """Load every saved profile (``*.json`` / ``*.dayu`` / ``*.dayuc``)
    from a real (host) directory, ordered by task start time.  This is
    what the ``dayu-analyze`` CLI consumes; compacted run files are
    flattened."""
    profiles = [p for path in trace_paths(directory)
                for p in load_profiles_path(
                    path, with_io_records=with_io_records)]
    profiles.sort(key=lambda p: p.span.start)
    return profiles


def load_profiles_from_dir(fs: SimFS, directory: str,
                           with_io_records: bool = True) -> List[TaskProfile]:
    """Load every saved profile under ``directory`` of a simulated FS,
    ordered by task start time (execution order)."""
    profiles = []
    for path in fs.listdir(directory):
        if not path.endswith(TRACE_SUFFIXES):
            continue
        fd = fs.open(path, "r")
        raw = fs.read(fd, fs.file_size(fd))
        fs.close(fd)
        if isinstance(raw, bytes) and columnar.is_columnar_trace(raw):
            profiles.extend(
                columnar.decode_run(raw, with_io_records=with_io_records))
        else:
            profiles.append(
                load_profile(raw, with_io_records=with_io_records))
    profiles.sort(key=lambda p: p.span.start)
    return profiles
