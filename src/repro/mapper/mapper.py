"""Per-task orchestration of DaYu's profiling stack.

:class:`DataSemanticMapper` is what a workflow runner (or a user script)
interacts with: it scopes tasks, hands out instrumented file handles, and
at each task's end runs the Characteristic Mapper join to produce a
:class:`TaskProfile` — the self-contained unit of trace data the offline
Workflow Analyzer consumes.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.mapper import codec
from repro.mapper.config import DaYuConfig
from repro.mapper.stats import DatasetIoStats, map_characteristics
from repro.posix.simfs import SimFS
from repro.simclock import SimClock, TimeSpan
from repro.vfd.channel import VolVfdChannel
from repro.vfd.tracing import FileSession, VfdIoRecord, VfdTracer
from repro.vol.objects import VolFile
from repro.vol.tracer import DataObjectProfile, VolTracer

__all__ = ["DataSemanticMapper", "TaskContext", "TaskProfile"]

CHARACTERISTIC_MAPPER_ACCOUNT = "dayu.characteristic_mapper"


@dataclass
class TaskProfile:
    """Everything DaYu recorded about one task's data interactions."""

    task: str
    span: TimeSpan
    files: List[str]
    object_profiles: List[DataObjectProfile]
    file_sessions: List[FileSession]
    io_records: List[VfdIoRecord]
    dataset_stats: List[DatasetIoStats]

    @property
    def duration(self) -> float:
        return self.span.duration

    def stats_for(self, data_object: str) -> List[DatasetIoStats]:
        """All joined stats rows for a given data object name (O(1) via a
        lazily built index over the Characteristic Mapper output)."""
        index = self.__dict__.get("_stats_index")
        if index is None:
            index = {}
            for s in self.dataset_stats:
                index.setdefault(s.data_object, []).append(s)
            self.__dict__["_stats_index"] = index
        return list(index.get(data_object, ()))

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "start": self.span.start,
            "end": self.span.end,
            "files": self.files,
            "object_profiles": [p.to_json_dict() for p in self.object_profiles],
            "file_sessions": [s.to_json_dict() for s in self.file_sessions],
            "io_records": [r.to_json_dict() for r in self.io_records],
            "dataset_stats": [s.to_json_dict() for s in self.dataset_stats],
        }

    def serialize(self) -> bytes:
        """The JSON interchange form of the profile."""
        return json.dumps(self.to_json_dict()).encode()

    def serialize_binary(self) -> bytes:
        """The compact binary storage form (:mod:`repro.mapper.codec`)."""
        return codec.encode_profile(self)

    def serialize_columnar(self) -> bytes:
        """The columnar analytics form (:mod:`repro.mapper.columnar`)."""
        from repro.mapper import columnar

        return columnar.encode_columnar(self)

    @property
    def storage_bytes(self) -> int:
        """Size of the persisted JSON trace."""
        return len(self.serialize())

    @property
    def vfd_binary_bytes(self) -> int:
        """Real encoded size of the compact VFD trace (per-op records +
        sessions) — the paper's Figure 9d numerator."""
        return codec.vfd_trace_nbytes(self.io_records, self.file_sessions)

    @property
    def vol_binary_bytes(self) -> int:
        """Real encoded size of the compact VOL trace (per-object profiles)."""
        return codec.vol_trace_nbytes(self.object_profiles)


class TaskContext:
    """The live profiling context of one executing task.

    Obtained from :meth:`DataSemanticMapper.task`; provides :meth:`open`
    to create instrumented file handles.
    """

    def __init__(self, mapper: "DataSemanticMapper", task: str) -> None:
        self.mapper = mapper
        self.task = task
        self.channel = VolVfdChannel()
        self.channel.set_task(task)
        config = mapper.config
        emit = mapper.monitor.publish if mapper.monitor is not None else None
        self.vol = VolTracer(mapper.clock, self.channel,
                             costs=config.vol_costs, emit=emit)
        self.vfd = VfdTracer(
            mapper.clock,
            self.channel,
            trace_io=config.trace_io,
            skip_ops=config.skip_ops,
            costs=config.vfd_costs,
            emit=emit,
        )
        self._open_files: List[VolFile] = []

    def open(self, fs: SimFS, path: str, mode: str = "r", **h5_kwargs) -> VolFile:
        """Open an instrumented HDF5-like file within this task."""
        f = VolFile(fs, path, mode, vol=self.vol, vfd_tracer=self.vfd, **h5_kwargs)
        self._open_files.append(f)
        return f

    def open_netcdf(self, fs: SimFS, path: str, mode: str = "r"):
        """Open an instrumented netCDF-like file within this task.

        Both formats feed the same trackers, so a task may freely mix them
        and the joined profile covers both.
        """
        from repro.netcdf.vol import NcVolFile

        f = NcVolFile(fs, path, mode, vol=self.vol, vfd_tracer=self.vfd)
        self._open_files.append(f)
        return f

    def close_all(self) -> None:
        """Close any files the task left open (tasks should close their own).

        Every file gets a close attempt even when an earlier one fails
        (a dead device must not leak the remaining handles); the first
        error is re-raised afterwards."""
        first_error: Optional[BaseException] = None
        for f in self._open_files:
            try:
                f.close()
            except OSError as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error


class DataSemanticMapper:
    """DaYu's runtime component: scopes tasks and produces their profiles.

    Example::

        mapper = DataSemanticMapper(clock, DaYuConfig(page_size=4096))
        with mapper.task("stage1") as ctx:
            f = ctx.open(fs, "/pfs/out.h5", "w")
            f.create_dataset("d", shape=(100,), data=np.zeros(100))
            f.close()
        profile = mapper.profiles["stage1"]
    """

    def __init__(self, clock: SimClock, config: DaYuConfig | None = None,
                 monitor=None) -> None:
        self.clock = clock
        self.config = config or DaYuConfig()
        self.profiles: Dict[str, TaskProfile] = {}
        #: Optional :class:`repro.monitor.monitor.WorkflowMonitor`; when
        #: attached, the mapper and its tracers publish live events to it.
        self.monitor = monitor

    @contextmanager
    def task(self, name: str) -> Iterator[TaskContext]:
        """Scope a task: the launcher informing DaYu of the current task.

        A task body that raises produces *no* profile: the partial trace
        of the failed attempt is discarded (and no ``TaskFinished`` event
        is published), so FTG/SDG builds — live and post-hoc — only ever
        see completed attempts and a retried task contributes exactly one
        profile.  The runner publishes the matching ``TaskFailed`` event.
        """
        if name in self.profiles:
            raise ValueError(f"task {name!r} already profiled by this mapper")
        ctx = TaskContext(self, name)
        start = self.clock.now
        if self.monitor is not None:
            from repro.monitor.events import TaskStarted

            self.monitor.publish(TaskStarted(time=start, task=name))
        try:
            yield ctx
        except BaseException:
            try:
                ctx.close_all()
            except OSError:
                # Closing may flush to the very device that just failed;
                # never let that mask the task's own failure.
                pass
            raise
        else:
            ctx.close_all()
            profile = self._finish(ctx, start)
            self.profiles[name] = profile
            if self.monitor is not None:
                from repro.monitor.events import TaskFinished

                self.monitor.publish(TaskFinished(
                    time=self.clock.now, task=name, profile=profile))

    def discard(self, name: str) -> bool:
        """Drop a stored profile (rarely needed; failed attempts already
        never store one).  Returns True when a profile was removed."""
        return self.profiles.pop(name, None) is not None

    def _finish(self, ctx: TaskContext, start: float) -> TaskProfile:
        # Characteristic Mapper join: group VFD records by data object.
        records = ctx.vfd.records
        stats = map_characteristics(records, self.config.page_size)
        # The join walks every record once; charge its modeled cost.
        self.clock.charge(
            CHARACTERISTIC_MAPPER_ACCOUNT,
            self.config.mapper_cost_per_record * max(len(records), 1),
        )
        return TaskProfile(
            task=ctx.task,
            span=TimeSpan(start, self.clock.now),
            files=list(ctx.vol.files_touched),
            object_profiles=ctx.vol.all_profiles(),
            file_sessions=list(ctx.vfd.sessions),
            io_records=list(records),
            dataset_stats=stats,
        )

    # ------------------------------------------------------------------
    # Persistence / accounting
    # ------------------------------------------------------------------
    def _serialized(self, profile: TaskProfile, trace_format: str | None):
        fmt = trace_format or self.config.trace_format
        if fmt == "binary":
            return codec.BINARY_TRACE_SUFFIX, profile.serialize_binary()
        if fmt == "columnar":
            from repro.mapper import columnar

            return (columnar.COLUMNAR_TRACE_SUFFIX,
                    profile.serialize_columnar())
        return ".json", profile.serialize()

    def save(self, fs: SimFS, trace_format: str | None = None) -> List[str]:
        """Write each task profile into ``config.output_dir``.

        Returns the written paths.  This is the "recorded statistics"
        storage whose footprint the paper's Figure 9d measures.  The
        format defaults to ``config.trace_format`` (``"json"`` interchange
        or the compact ``"binary"`` codec).
        """
        written = []
        for name, profile in self.profiles.items():
            suffix, payload = self._serialized(profile, trace_format)
            path = f"{self.config.output_dir.rstrip('/')}/{name}{suffix}"
            fd = fs.open(path, "w")
            fs.write(fd, payload)
            fs.close(fd)
            written.append(path)
        return written

    def save_to_host_dir(self, directory: str,
                         trace_format: str | None = None) -> List[str]:
        """Write each task profile into a real (host) directory — the
        hand-off format the ``dayu-analyze`` CLI consumes.  Format as in
        :meth:`save`."""
        from pathlib import Path

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        written = []
        for name, profile in self.profiles.items():
            suffix, payload = self._serialized(profile, trace_format)
            path = out / f"{name}{suffix}"
            path.write_bytes(payload)
            written.append(str(path))
        return written

    @property
    def storage_bytes(self) -> int:
        """Total serialized trace bytes across all finished tasks."""
        return sum(p.storage_bytes for p in self.profiles.values())

    def data_volume(self) -> int:
        """Total application data bytes moved (for overhead denominators)."""
        return sum(
            s.access_volume for p in self.profiles.values() for s in p.dataset_stats
        )
