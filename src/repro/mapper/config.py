"""The Input Parser: DaYu's user-provided configuration.

The paper's Input Parser "reads the user-provided configuration and
parameters for initialization — for example, the location to store the
recorded statistics, the page size to record, the number of I/O operations
to skip, and whether to turn on/off I/O tracing", letting users trade
collection granularity against storage overhead.

Parsing is cheap but not free; its modeled cost is charged to the
``dayu.input_parser`` clock account so the component breakdown of the
paper's Figure 10 has all three slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.simclock import SimClock
from repro.vfd.tracing import TracerCosts
from repro.vol.tracer import VolCosts

__all__ = ["DaYuConfig", "INPUT_PARSER_ACCOUNT"]

INPUT_PARSER_ACCOUNT = "dayu.input_parser"

#: Modeled one-time cost of reading and validating the configuration.
_PARSE_COST = 5.0e-5


@dataclass(frozen=True)
class DaYuConfig:
    """Validated DaYu configuration.

    Attributes:
        output_dir: Directory (in the simulated FS) where task profiles are
            stored by :meth:`DataSemanticMapper.save`.
        page_size: Address-region granularity, in bytes, used when mapping
            I/O to file regions (the SDG's ``addr[lo-hi)`` nodes).
        skip_ops: Per-file count of initial I/O operations not recorded.
        trace_io: Record time-sensitive per-operation I/O traces.  When
            False only aggregate session statistics are kept — constant
            storage overhead, as the paper describes.
        trace_format: On-disk profile format written by
            :meth:`DataSemanticMapper.save` — ``"binary"`` for the compact
            struct-packed codec (:mod:`repro.mapper.codec`),
            ``"columnar"`` for the footer-indexed analytics form
            (:mod:`repro.mapper.columnar`), ``"json"`` for the verbose
            interchange form.
        vfd_costs: Modeled VFD profiler costs.
        vol_costs: Modeled VOL profiler costs.
        mapper_cost_per_record: Modeled Characteristic Mapper join cost per
            VFD record.
    """

    output_dir: str = "/dayu"
    page_size: int = 4096
    skip_ops: int = 0
    trace_io: bool = True
    trace_format: str = "json"
    vfd_costs: TracerCosts = field(default_factory=TracerCosts)
    vol_costs: VolCosts = field(default_factory=VolCosts)
    mapper_cost_per_record: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.skip_ops < 0:
            raise ValueError(f"skip_ops must be non-negative, got {self.skip_ops}")
        if not self.output_dir.startswith("/"):
            raise ValueError(f"output_dir must be absolute, got {self.output_dir!r}")
        if self.trace_format not in ("json", "binary", "columnar"):
            raise ValueError(
                f"trace_format must be 'json', 'binary' or 'columnar', "
                f"got {self.trace_format!r}")

    @classmethod
    def parse(cls, raw: Mapping[str, object], clock: SimClock | None = None) -> "DaYuConfig":
        """Build a config from a raw user mapping, charging the parse cost.

        Unknown keys are rejected — silent typos in an analysis config are
        worse than a crash.
        """
        known = {
            "output_dir", "page_size", "skip_ops", "trace_io", "trace_format",
            "vfd_costs", "vol_costs", "mapper_cost_per_record",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        if clock is not None:
            clock.advance(_PARSE_COST, INPUT_PARSER_ACCOUNT)
        return cls(**raw)  # type: ignore[arg-type]
